//! The sans-io iSCSI initiator (the compute host's Open-iSCSI equivalent).

use std::collections::HashMap;

use bytes::{Bytes, BytesMut};

use crate::cdb::{Cdb, ScsiStatus};
use crate::iqn::Iqn;
use crate::params::{decode_text, encode_text, SessionParams};
use crate::pdu::{DataOut, LoginRequest, LogoutRequest, NopOut, Pdu, ScsiCommand};
use crate::stream::{PduStream, WireBuf};

/// Identifies an outstanding I/O issued through [`Initiator`].
///
/// The tag becomes the initiator task tag (ITT) of the SCSI command PDU,
/// so it is visible to every hop that parses the wire — middle-box relays
/// and targets alike. Telemetry leans on this: a request token is the
/// initiator's TCP source port combined with this tag, which lets the
/// guest, the middle-box, and the target stamp trace spans for the same
/// request without any side channel (`storm_sim::req_token`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IoTag(pub u32);

/// Initiator configuration.
#[derive(Debug, Clone)]
pub struct InitiatorConfig {
    /// This initiator's name.
    pub initiator_iqn: Iqn,
    /// The target to log in to.
    pub target_iqn: Iqn,
    /// Offered session parameters.
    pub params: SessionParams,
    /// Initiator session id.
    pub isid: [u8; 6],
}

impl InitiatorConfig {
    /// A ready-to-use example configuration (for docs and tests).
    pub fn example() -> Self {
        InitiatorConfig {
            initiator_iqn: Iqn::for_host("example"),
            target_iqn: Iqn::for_volume(1),
            params: SessionParams::default(),
            isid: [0x80, 0, 0, 0x01, 0, 1],
        }
    }
}

/// Events surfaced to the initiator's driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitiatorEvent {
    /// The session reached full-feature phase.
    LoginComplete,
    /// The target rejected the login.
    LoginFailed {
        /// Status class from the login response.
        class: u8,
        /// Status detail.
        detail: u8,
    },
    /// A read finished.
    ReadComplete {
        /// The I/O's tag.
        tag: IoTag,
        /// SCSI status.
        status: ScsiStatus,
        /// The data (empty on error).
        data: Bytes,
    },
    /// A write finished.
    WriteComplete {
        /// The I/O's tag.
        tag: IoTag,
        /// SCSI status.
        status: ScsiStatus,
    },
    /// A flush finished.
    FlushComplete {
        /// The I/O's tag.
        tag: IoTag,
        /// SCSI status.
        status: ScsiStatus,
    },
    /// The session logged out.
    LoggedOut,
    /// The peer violated the protocol; drop the connection.
    ProtocolError(String),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    LoginSent,
    FullFeature,
    LogoutSent,
}

#[derive(Debug)]
enum Pending {
    Read { buf: BytesMut, expected: usize },
    Write { data: Bytes },
    Flush,
}

/// The initiator state machine: bytes in ([`Initiator::feed`]), bytes out
/// ([`Initiator::take_output`]), events out.
#[derive(Debug)]
pub struct Initiator {
    cfg: InitiatorConfig,
    params: SessionParams,
    state: State,
    stream: PduStream,
    out: WireBuf,
    next_itt: u32,
    cmd_sn: u32,
    exp_stat_sn: u32,
    pending: HashMap<u32, Pending>,
}

impl Initiator {
    /// Creates an initiator in the idle state.
    pub fn new(cfg: InitiatorConfig) -> Self {
        let params = cfg.params.clone();
        Initiator {
            cfg,
            params,
            state: State::Idle,
            stream: PduStream::new(),
            out: WireBuf::new(),
            next_itt: 1,
            cmd_sn: 1,
            exp_stat_sn: 0,
            pending: HashMap::new(),
        }
    }

    /// The negotiated session parameters (valid after login).
    pub fn params(&self) -> &SessionParams {
        &self.params
    }

    /// Whether the session is in full-feature phase.
    pub fn is_logged_in(&self) -> bool {
        self.state == State::FullFeature
    }

    /// Number of outstanding I/Os.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Drains the bytes this machine wants to put on the wire (flat copy;
    /// see [`Initiator::take_wire`] for the zero-copy chunk form).
    pub fn take_output(&mut self) -> Vec<u8> {
        self.out.take_output()
    }

    /// Drains the queued wire bytes as refcounted chunks: large data
    /// segments are views of the caller's write buffers, so replica
    /// fan-out and the simulated TCP stack share one allocation.
    pub fn take_wire(&mut self) -> Vec<bytes::Bytes> {
        self.out.take_chunks()
    }

    /// Whether any output bytes are queued.
    pub fn has_output(&self) -> bool {
        !self.out.is_empty()
    }

    /// Data-segment bytes memcpy'd on the encode path (small segments
    /// batched into scratch allocations).
    pub fn bytes_copied(&self) -> u64 {
        self.out.bytes_copied()
    }

    /// Queues the login request.
    ///
    /// # Panics
    ///
    /// Panics if called in any state but idle.
    pub fn start_login(&mut self) {
        assert_eq!(self.state, State::Idle, "login from non-idle state");
        let mut keys = self.cfg.params.to_keys();
        keys.insert("InitiatorName".into(), self.cfg.initiator_iqn.to_string());
        keys.insert("TargetName".into(), self.cfg.target_iqn.to_string());
        keys.insert("SessionType".into(), "Normal".into());
        let pdu = Pdu::LoginRequest(LoginRequest {
            transit: true,
            csg: 1,
            nsg: 3,
            isid: self.cfg.isid,
            tsih: 0,
            itt: self.alloc_itt(),
            cid: 0,
            cmd_sn: self.cmd_sn,
            exp_stat_sn: self.exp_stat_sn,
            data: encode_text(&keys).into(),
        });
        self.out.push_pdu(&pdu);
        self.state = State::LoginSent;
    }

    fn alloc_itt(&mut self) -> u32 {
        let itt = self.next_itt;
        self.next_itt = self.next_itt.wrapping_add(1);
        itt
    }

    /// Issues a read of `sectors` sectors at `lba`.
    ///
    /// # Panics
    ///
    /// Panics if the session is not logged in or `sectors` is zero.
    pub fn read(&mut self, lba: u64, sectors: u32) -> IoTag {
        assert_eq!(self.state, State::FullFeature, "read before login");
        assert!(sectors > 0, "zero-length read");
        let itt = self.alloc_itt();
        let expected = sectors as usize * 512;
        self.pending.insert(
            itt,
            Pending::Read {
                buf: BytesMut::zeroed(expected),
                expected,
            },
        );
        let pdu = Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: true,
            write: false,
            lun: 0,
            itt,
            edtl: expected as u32,
            cmd_sn: self.bump_cmd_sn(),
            exp_stat_sn: self.exp_stat_sn,
            cdb: Cdb::Read { lba, sectors }.to_bytes(),
            data: Bytes::new(),
        });
        self.out.push_pdu(&pdu);
        IoTag(itt)
    }

    /// Issues a write of `data` (a whole number of sectors) at `lba`.
    ///
    /// Data up to the negotiated immediate/first-burst limit rides with the
    /// command PDU; the target solicits the remainder with R2Ts.
    ///
    /// # Panics
    ///
    /// Panics if not logged in, `data` is empty or not sector-aligned.
    pub fn write(&mut self, lba: u64, data: Bytes) -> IoTag {
        assert_eq!(self.state, State::FullFeature, "write before login");
        assert!(
            !data.is_empty() && data.len().is_multiple_of(512),
            "unaligned write"
        );
        let itt = self.alloc_itt();
        let sectors = (data.len() / 512) as u32;
        let mrdsl = self.params.max_recv_data_segment_length as usize;
        let first_burst = self.params.first_burst_length as usize;
        // Immediate data rides in the command PDU (ImmediateData=Yes).
        let immediate_limit = if self.params.immediate_data {
            first_burst.min(mrdsl)
        } else {
            0
        };
        let imm = data.len().min(immediate_limit);
        let pdu = Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: true,
            lun: 0,
            itt,
            edtl: data.len() as u32,
            cmd_sn: self.bump_cmd_sn(),
            exp_stat_sn: self.exp_stat_sn,
            cdb: Cdb::Write { lba, sectors }.to_bytes(),
            data: data.slice(..imm),
        });
        self.out.push_pdu(&pdu);
        // InitialR2T=No: the rest of the first burst flows as unsolicited
        // Data-Out (ttt = 0xffffffff) without waiting for an R2T.
        if !self.params.initial_r2t {
            let unsolicited_end = data.len().min(first_burst);
            let mut off = imm;
            let mut data_sn = 0;
            while off < unsolicited_end {
                let end = (off + mrdsl).min(unsolicited_end);
                let out = Pdu::DataOut(DataOut {
                    final_pdu: end == unsolicited_end,
                    lun: 0,
                    itt,
                    ttt: 0xFFFF_FFFF,
                    exp_stat_sn: self.exp_stat_sn,
                    data_sn,
                    buffer_offset: off as u32,
                    data: data.slice(off..end),
                });
                self.out.push_pdu(&out);
                data_sn += 1;
                off = end;
            }
        }
        self.pending.insert(itt, Pending::Write { data });
        IoTag(itt)
    }

    /// Issues a cache flush.
    ///
    /// # Panics
    ///
    /// Panics if the session is not logged in.
    pub fn flush(&mut self) -> IoTag {
        assert_eq!(self.state, State::FullFeature, "flush before login");
        let itt = self.alloc_itt();
        self.pending.insert(itt, Pending::Flush);
        let pdu = Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: false,
            lun: 0,
            itt,
            edtl: 0,
            cmd_sn: self.bump_cmd_sn(),
            exp_stat_sn: self.exp_stat_sn,
            cdb: Cdb::SynchronizeCache.to_bytes(),
            data: Bytes::new(),
        });
        self.out.push_pdu(&pdu);
        IoTag(itt)
    }

    /// Requests a session logout.
    pub fn logout(&mut self) {
        if self.state != State::FullFeature {
            return;
        }
        let itt = self.alloc_itt();
        let pdu = Pdu::LogoutRequest(LogoutRequest {
            reason: 0,
            itt,
            cid: 0,
            cmd_sn: self.bump_cmd_sn(),
            exp_stat_sn: self.exp_stat_sn,
        });
        self.out.push_pdu(&pdu);
        self.state = State::LogoutSent;
    }

    fn bump_cmd_sn(&mut self) -> u32 {
        let sn = self.cmd_sn;
        self.cmd_sn = self.cmd_sn.wrapping_add(1);
        sn
    }

    /// Feeds received bytes; returns completed events.
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<InitiatorEvent> {
        self.feed_bytes(Bytes::copy_from_slice(bytes))
    }

    /// Feeds a received chunk by reference (no copy into the
    /// reassembler); returns completed events.
    pub fn feed_bytes(&mut self, bytes: Bytes) -> Vec<InitiatorEvent> {
        let pdus = match self.stream.feed_bytes(bytes) {
            Ok(p) => p,
            Err(e) => return vec![InitiatorEvent::ProtocolError(e.to_string())],
        };
        let mut events = Vec::new();
        for pw in pdus {
            self.handle(pw.pdu, &mut events);
        }
        events
    }

    fn handle(&mut self, pdu: Pdu, events: &mut Vec<InitiatorEvent>) {
        match pdu {
            Pdu::LoginResponse(r) => {
                self.exp_stat_sn = r.stat_sn.wrapping_add(1);
                if self.state != State::LoginSent {
                    events.push(InitiatorEvent::ProtocolError(
                        "unexpected login response".into(),
                    ));
                    return;
                }
                if r.status_class != 0 {
                    self.state = State::Idle;
                    events.push(InitiatorEvent::LoginFailed {
                        class: r.status_class,
                        detail: r.status_detail,
                    });
                    return;
                }
                let peer = decode_text(&r.data);
                self.params = self.cfg.params.negotiate(&peer);
                if r.transit && r.nsg == 3 {
                    self.state = State::FullFeature;
                    events.push(InitiatorEvent::LoginComplete);
                }
            }
            Pdu::DataIn(d) => {
                self.exp_stat_sn = d.stat_sn.wrapping_add(1);
                let complete = match self.pending.get_mut(&d.itt) {
                    Some(Pending::Read { buf, expected }) => {
                        let off = d.buffer_offset as usize;
                        let end = off + d.data.len();
                        if end > *expected {
                            events.push(InitiatorEvent::ProtocolError(format!(
                                "data-in overruns buffer: {end} > {expected}"
                            )));
                            return;
                        }
                        buf[off..end].copy_from_slice(&d.data);
                        d.final_pdu && d.status_present
                    }
                    _ => {
                        events.push(InitiatorEvent::ProtocolError(format!(
                            "data-in for unknown itt {}",
                            d.itt
                        )));
                        return;
                    }
                };
                if complete {
                    if let Some(Pending::Read { buf, .. }) = self.pending.remove(&d.itt) {
                        events.push(InitiatorEvent::ReadComplete {
                            tag: IoTag(d.itt),
                            status: d.status,
                            data: buf.freeze(),
                        });
                    }
                }
            }
            Pdu::R2t(r) => {
                let Some(Pending::Write { data }) = self.pending.get(&r.itt) else {
                    events.push(InitiatorEvent::ProtocolError(format!(
                        "r2t for unknown itt {}",
                        r.itt
                    )));
                    return;
                };
                let data = data.clone();
                let start = r.buffer_offset as usize;
                let end = (start + r.desired_length as usize).min(data.len());
                let mrdsl = self.params.max_recv_data_segment_length as usize;
                let mut off = start;
                let mut data_sn = 0;
                while off < end {
                    let chunk_end = (off + mrdsl).min(end);
                    let pdu = Pdu::DataOut(DataOut {
                        final_pdu: chunk_end == end,
                        lun: 0,
                        itt: r.itt,
                        ttt: r.ttt,
                        exp_stat_sn: self.exp_stat_sn,
                        data_sn,
                        buffer_offset: off as u32,
                        data: data.slice(off..chunk_end),
                    });
                    self.out.push_pdu(&pdu);
                    data_sn += 1;
                    off = chunk_end;
                }
            }
            Pdu::ScsiResponse(r) => {
                self.exp_stat_sn = r.stat_sn.wrapping_add(1);
                match self.pending.remove(&r.itt) {
                    Some(Pending::Write { .. }) => events.push(InitiatorEvent::WriteComplete {
                        tag: IoTag(r.itt),
                        status: r.status,
                    }),
                    Some(Pending::Flush) => events.push(InitiatorEvent::FlushComplete {
                        tag: IoTag(r.itt),
                        status: r.status,
                    }),
                    Some(Pending::Read { .. }) => events.push(InitiatorEvent::ReadComplete {
                        tag: IoTag(r.itt),
                        status: r.status,
                        data: Bytes::new(),
                    }),
                    None => events.push(InitiatorEvent::ProtocolError(format!(
                        "response for unknown itt {}",
                        r.itt
                    ))),
                }
            }
            Pdu::NopIn(n) => {
                // Target ping: echo it back.
                if n.itt == 0xFFFF_FFFF {
                    let pong = Pdu::NopOut(NopOut {
                        itt: 0xFFFF_FFFF,
                        ttt: n.ttt,
                        cmd_sn: self.cmd_sn,
                        exp_stat_sn: self.exp_stat_sn,
                        data: n.data,
                    });
                    self.out.push_pdu(&pong);
                }
            }
            Pdu::LogoutResponse(_) => {
                self.state = State::Idle;
                events.push(InitiatorEvent::LoggedOut);
            }
            other => events.push(InitiatorEvent::ProtocolError(format!(
                "unexpected pdu at initiator: {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{TargetConfig, TargetConn, TargetEvent};

    fn logged_in_pair() -> (Initiator, TargetConn) {
        let mut ini = Initiator::new(InitiatorConfig::example());
        let mut tgt = TargetConn::new(TargetConfig::example(1 << 20));
        ini.start_login();
        let mut ok = false;
        for _ in 0..4 {
            let _ = tgt.feed(&ini.take_output());
            for ev in ini.feed(&tgt.take_output()) {
                if ev == InitiatorEvent::LoginComplete {
                    ok = true;
                }
            }
        }
        assert!(ok, "login did not complete");
        (ini, tgt)
    }

    type TestDisk = std::collections::HashMap<u64, [u8; 512]>;

    /// Drives both machines until quiescent, auto-serving target I/O from
    /// `disk`, and returns initiator events.
    fn drive_with(
        ini: &mut Initiator,
        tgt: &mut TargetConn,
        disk: &mut TestDisk,
    ) -> Vec<InitiatorEvent> {
        let mut events = Vec::new();
        for _ in 0..64 {
            let out = ini.take_output();
            let tevs = tgt.feed(&out);
            for tev in tevs {
                match tev {
                    TargetEvent::WriteReady { itt, lba, data } => {
                        for (i, sector) in data.chunks(512).enumerate() {
                            disk.insert(lba + i as u64, sector.try_into().unwrap());
                        }
                        tgt.complete_write(itt, ScsiStatus::Good);
                    }
                    TargetEvent::ReadReady { itt, lba, sectors } => {
                        let mut buf = Vec::new();
                        for s in 0..sectors as u64 {
                            buf.extend_from_slice(
                                &disk.get(&(lba + s)).copied().unwrap_or([0; 512]),
                            );
                        }
                        tgt.complete_read(itt, Bytes::from(buf), ScsiStatus::Good);
                    }
                    TargetEvent::FlushReady { itt } => tgt.complete_flush(itt, ScsiStatus::Good),
                    _ => {}
                }
            }
            let back = tgt.take_output();
            if out.is_empty() && back.is_empty() {
                break;
            }
            events.extend(ini.feed(&back));
        }
        events
    }

    fn drive(ini: &mut Initiator, tgt: &mut TargetConn) -> Vec<InitiatorEvent> {
        let mut disk = TestDisk::new();
        drive_with(ini, tgt, &mut disk)
    }

    #[test]
    fn small_write_uses_immediate_data_and_completes() {
        let (mut ini, mut tgt) = logged_in_pair();
        let tag = ini.write(10, Bytes::from(vec![0x42u8; 4096]));
        let evs = drive(&mut ini, &mut tgt);
        assert!(evs.contains(&InitiatorEvent::WriteComplete {
            tag,
            status: ScsiStatus::Good
        }));
        assert_eq!(ini.in_flight(), 0);
    }

    #[test]
    fn large_write_flows_through_r2t() {
        let (mut ini, mut tgt) = logged_in_pair();
        let mut disk = TestDisk::new();
        // 256 KiB > 64 KiB first burst: needs R2T rounds.
        let data: Vec<u8> = (0..256 * 1024).map(|i| (i % 251) as u8).collect();
        let tag = ini.write(100, Bytes::from(data.clone()));
        let evs = drive_with(&mut ini, &mut tgt, &mut disk);
        assert!(evs.contains(&InitiatorEvent::WriteComplete {
            tag,
            status: ScsiStatus::Good
        }));
        // Read it back and verify contents survived segmentation/offsets.
        let rtag = ini.read(100, 512);
        let evs = drive_with(&mut ini, &mut tgt, &mut disk);
        let got = evs
            .iter()
            .find_map(|e| match e {
                InitiatorEvent::ReadComplete { tag, data, .. } if *tag == rtag => {
                    Some(data.clone())
                }
                _ => None,
            })
            .expect("read completed");
        assert_eq!(&got[..], &data[..]);
    }

    #[test]
    fn read_spans_multiple_data_in_pdus() {
        let (mut ini, mut tgt) = logged_in_pair();
        let mut disk = TestDisk::new();
        let wtag = ini.write(0, Bytes::from(vec![7u8; 128 * 1024]));
        let evs = drive_with(&mut ini, &mut tgt, &mut disk);
        assert!(evs
            .iter()
            .any(|e| matches!(e, InitiatorEvent::WriteComplete { tag, .. } if *tag == wtag)));
        let rtag = ini.read(0, 256); // 128 KiB > 64 KiB MRDSL -> 2+ Data-In PDUs
        let evs = drive_with(&mut ini, &mut tgt, &mut disk);
        let got = evs
            .iter()
            .find_map(|e| match e {
                InitiatorEvent::ReadComplete { tag, data, status } if *tag == rtag => {
                    assert_eq!(*status, ScsiStatus::Good);
                    Some(data.clone())
                }
                _ => None,
            })
            .expect("read completed");
        assert_eq!(got.len(), 128 * 1024);
        assert!(got.iter().all(|&b| b == 7));
    }

    #[test]
    fn flush_and_logout() {
        let (mut ini, mut tgt) = logged_in_pair();
        let tag = ini.flush();
        let evs = drive(&mut ini, &mut tgt);
        assert!(evs.contains(&InitiatorEvent::FlushComplete {
            tag,
            status: ScsiStatus::Good
        }));
        ini.logout();
        let evs = drive(&mut ini, &mut tgt);
        assert!(evs.contains(&InitiatorEvent::LoggedOut));
        assert!(!ini.is_logged_in());
    }

    #[test]
    #[should_panic(expected = "before login")]
    fn io_before_login_panics() {
        let mut ini = Initiator::new(InitiatorConfig::example());
        let _ = ini.read(0, 1);
    }

    #[test]
    fn garbage_bytes_produce_protocol_error() {
        let (mut ini, _tgt) = logged_in_pair();
        // A full BHS with a reserved opcode and zero data-segment length.
        let mut junk = [0u8; 48];
        junk[0] = 0x3F;
        let evs = ini.feed(&junk);
        assert!(matches!(evs[0], InitiatorEvent::ProtocolError(_)));
    }
}

//! SCSI command descriptor blocks (the subset block storage needs).

use std::fmt;

/// SCSI command completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScsiStatus {
    /// Command completed successfully.
    Good,
    /// Check condition (sense data would describe the error).
    CheckCondition,
    /// Device busy.
    Busy,
}

impl ScsiStatus {
    /// Wire encoding (SAM-5 status codes).
    pub fn to_byte(self) -> u8 {
        match self {
            ScsiStatus::Good => 0x00,
            ScsiStatus::CheckCondition => 0x02,
            ScsiStatus::Busy => 0x08,
        }
    }

    /// Decodes a status byte (unknown codes map to `CheckCondition`).
    pub fn from_byte(b: u8) -> ScsiStatus {
        match b {
            0x00 => ScsiStatus::Good,
            0x08 => ScsiStatus::Busy,
            _ => ScsiStatus::CheckCondition,
        }
    }
}

impl fmt::Display for ScsiStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScsiStatus::Good => write!(f, "GOOD"),
            ScsiStatus::CheckCondition => write!(f, "CHECK CONDITION"),
            ScsiStatus::Busy => write!(f, "BUSY"),
        }
    }
}

/// A parsed SCSI CDB.
///
/// LBAs and transfer lengths are in 512-byte sectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cdb {
    /// TEST UNIT READY (6).
    TestUnitReady,
    /// INQUIRY (6): asks for device identification.
    Inquiry {
        /// Allocation length.
        alloc: u16,
    },
    /// READ CAPACITY (10): returns last LBA + block size.
    ReadCapacity10,
    /// READ (10) / READ (16).
    Read {
        /// First sector.
        lba: u64,
        /// Sector count.
        sectors: u32,
    },
    /// WRITE (10) / WRITE (16).
    Write {
        /// First sector.
        lba: u64,
        /// Sector count.
        sectors: u32,
    },
    /// SYNCHRONIZE CACHE (10): flush.
    SynchronizeCache,
}

impl Cdb {
    /// Serializes into a 16-byte CDB field. Reads/writes use the 16-byte
    /// variants so the full u64 LBA space is addressable.
    pub fn to_bytes(self) -> [u8; 16] {
        let mut b = [0u8; 16];
        match self {
            Cdb::TestUnitReady => {}
            Cdb::Inquiry { alloc } => {
                b[0] = 0x12;
                b[3..5].copy_from_slice(&alloc.to_be_bytes());
            }
            Cdb::ReadCapacity10 => b[0] = 0x25,
            Cdb::Read { lba, sectors } => {
                b[0] = 0x88; // READ(16)
                b[2..10].copy_from_slice(&lba.to_be_bytes());
                b[10..14].copy_from_slice(&sectors.to_be_bytes());
            }
            Cdb::Write { lba, sectors } => {
                b[0] = 0x8A; // WRITE(16)
                b[2..10].copy_from_slice(&lba.to_be_bytes());
                b[10..14].copy_from_slice(&sectors.to_be_bytes());
            }
            Cdb::SynchronizeCache => b[0] = 0x35,
        }
        b
    }

    /// Parses a CDB field; understands both the 10- and 16-byte read/write
    /// opcodes.
    ///
    /// # Errors
    ///
    /// Returns the unknown opcode byte.
    pub fn parse(b: &[u8; 16]) -> Result<Cdb, u8> {
        Ok(match b[0] {
            0x00 => Cdb::TestUnitReady,
            0x12 => Cdb::Inquiry {
                alloc: u16::from_be_bytes([b[3], b[4]]),
            },
            0x25 => Cdb::ReadCapacity10,
            0x28 => Cdb::Read {
                lba: u32::from_be_bytes([b[2], b[3], b[4], b[5]]) as u64,
                sectors: u16::from_be_bytes([b[7], b[8]]) as u32,
            },
            0x2A => Cdb::Write {
                lba: u32::from_be_bytes([b[2], b[3], b[4], b[5]]) as u64,
                sectors: u16::from_be_bytes([b[7], b[8]]) as u32,
            },
            0x88 => Cdb::Read {
                lba: u64::from_be_bytes(b[2..10].try_into().expect("8 bytes")),
                sectors: u32::from_be_bytes(b[10..14].try_into().expect("4 bytes")),
            },
            0x8A => Cdb::Write {
                lba: u64::from_be_bytes(b[2..10].try_into().expect("8 bytes")),
                sectors: u32::from_be_bytes(b[10..14].try_into().expect("4 bytes")),
            },
            0x35 => Cdb::SynchronizeCache,
            op => return Err(op),
        })
    }

    /// Whether this command transfers data from target to initiator.
    pub fn is_read(&self) -> bool {
        matches!(
            self,
            Cdb::Read { .. } | Cdb::Inquiry { .. } | Cdb::ReadCapacity10
        )
    }

    /// Whether this command transfers data from initiator to target.
    pub fn is_write(&self) -> bool {
        matches!(self, Cdb::Write { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_commands() {
        let cases = [
            Cdb::TestUnitReady,
            Cdb::Inquiry { alloc: 96 },
            Cdb::ReadCapacity10,
            Cdb::Read {
                lba: 1 << 40,
                sectors: 2048,
            },
            Cdb::Write { lba: 7, sectors: 8 },
            Cdb::SynchronizeCache,
        ];
        for c in cases {
            assert_eq!(Cdb::parse(&c.to_bytes()), Ok(c));
        }
    }

    #[test]
    fn parses_ten_byte_variants() {
        let mut b = [0u8; 16];
        b[0] = 0x28; // READ(10)
        b[2..6].copy_from_slice(&1234u32.to_be_bytes());
        b[7..9].copy_from_slice(&16u16.to_be_bytes());
        assert_eq!(
            Cdb::parse(&b),
            Ok(Cdb::Read {
                lba: 1234,
                sectors: 16
            })
        );
        b[0] = 0x2A; // WRITE(10)
        assert_eq!(
            Cdb::parse(&b),
            Ok(Cdb::Write {
                lba: 1234,
                sectors: 16
            })
        );
    }

    #[test]
    fn unknown_opcode_is_error() {
        let mut b = [0u8; 16];
        b[0] = 0xEE;
        assert_eq!(Cdb::parse(&b), Err(0xEE));
    }

    #[test]
    fn direction_predicates() {
        assert!(Cdb::Read { lba: 0, sectors: 1 }.is_read());
        assert!(!Cdb::Read { lba: 0, sectors: 1 }.is_write());
        assert!(Cdb::Write { lba: 0, sectors: 1 }.is_write());
        assert!(Cdb::ReadCapacity10.is_read());
        assert!(!Cdb::SynchronizeCache.is_read());
    }

    #[test]
    fn status_round_trip() {
        for s in [
            ScsiStatus::Good,
            ScsiStatus::CheckCondition,
            ScsiStatus::Busy,
        ] {
            assert_eq!(ScsiStatus::from_byte(s.to_byte()), s);
        }
        assert_eq!(ScsiStatus::from_byte(0x42), ScsiStatus::CheckCondition);
        assert_eq!(ScsiStatus::Good.to_string(), "GOOD");
    }
}

//! The sans-io iSCSI target connection (the Cinder/LIO equivalent).
//!
//! Storage timing stays with the caller: the machine emits
//! [`TargetEvent::ReadReady`]/[`TargetEvent::WriteReady`] and the hosting
//! application completes them (after its simulated disk latency) with
//! [`TargetConn::complete_read`]/[`TargetConn::complete_write`].

use std::collections::HashMap;

use bytes::{Bytes, BytesMut};

use crate::cdb::{Cdb, ScsiStatus};
use crate::iqn::Iqn;
use crate::params::{decode_text, encode_text, SessionParams};
use crate::pdu::{DataIn, LoginResponse, LogoutResponse, NopIn, Pdu, R2t, ScsiResponse};
use crate::stream::{PduStream, WireBuf};

/// Target-side configuration.
#[derive(Debug, Clone)]
pub struct TargetConfig {
    /// This target's name.
    pub target_iqn: Iqn,
    /// Offered session parameters.
    pub params: SessionParams,
    /// Exported LUN capacity in 512-byte sectors.
    pub num_sectors: u64,
    /// Session handle to assign at login.
    pub tsih: u16,
}

impl TargetConfig {
    /// A ready-to-use example configuration exporting `num_sectors`.
    pub fn example(num_sectors: u64) -> Self {
        TargetConfig {
            target_iqn: Iqn::for_volume(1),
            params: SessionParams::default(),
            num_sectors,
            tsih: 1,
        }
    }
}

/// Events surfaced to the application hosting the target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TargetEvent {
    /// Login completed; the connection is in full-feature phase.
    LoggedIn {
        /// The initiator's IQN (connection attribution reads this).
        initiator_name: String,
    },
    /// A read command wants `sectors` sectors at `lba`; answer with
    /// [`TargetConn::complete_read`].
    ReadReady {
        /// Task tag to echo back.
        itt: u32,
        /// First sector.
        lba: u64,
        /// Sector count.
        sectors: u32,
    },
    /// A write command's data is fully assembled; answer with
    /// [`TargetConn::complete_write`].
    WriteReady {
        /// Task tag to echo back.
        itt: u32,
        /// First sector.
        lba: u64,
        /// The complete write payload.
        data: Bytes,
    },
    /// A flush command arrived; answer with [`TargetConn::complete_flush`].
    FlushReady {
        /// Task tag to echo back.
        itt: u32,
    },
    /// The initiator logged out.
    LoggedOut,
    /// Protocol violation; drop the connection.
    ProtocolError(String),
}

#[derive(Debug)]
struct WriteXfer {
    lba: u64,
    buf: BytesMut,
    received: usize,
    expected: usize,
    /// Bytes the initiator will push unsolicited (immediate + first
    /// burst); only beyond this does the target solicit with R2Ts.
    unsolicited: usize,
    next_ttt: u32,
}

/// One target-side connection state machine.
#[derive(Debug)]
pub struct TargetConn {
    cfg: TargetConfig,
    params: SessionParams,
    stream: PduStream,
    out: WireBuf,
    stat_sn: u32,
    exp_cmd_sn: u32,
    logged_in: bool,
    writes: HashMap<u32, WriteXfer>,
    reads: HashMap<u32, ()>,
    next_ttt: u32,
    outstanding: usize,
    peak: usize,
}

impl TargetConn {
    /// Creates a connection awaiting login.
    pub fn new(cfg: TargetConfig) -> Self {
        let params = cfg.params.clone();
        TargetConn {
            cfg,
            params,
            stream: PduStream::new(),
            out: WireBuf::new(),
            stat_sn: 1,
            exp_cmd_sn: 1,
            logged_in: false,
            writes: HashMap::new(),
            reads: HashMap::new(),
            next_ttt: 1,
            outstanding: 0,
            peak: 0,
        }
    }

    /// Commands surfaced to the hosting app but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.outstanding
    }

    /// High-water mark of [`TargetConn::in_flight`] (queue occupancy).
    pub fn occupancy_peak(&self) -> usize {
        self.peak
    }

    fn note_ready(&mut self) {
        self.outstanding += 1;
        self.peak = self.peak.max(self.outstanding);
    }

    /// The negotiated session parameters.
    pub fn params(&self) -> &SessionParams {
        &self.params
    }

    /// Whether login completed.
    pub fn is_logged_in(&self) -> bool {
        self.logged_in
    }

    /// Drains bytes to put on the wire (flat copy; see
    /// [`TargetConn::take_wire`] for the zero-copy chunk form).
    pub fn take_output(&mut self) -> Vec<u8> {
        self.out.take_output()
    }

    /// Drains the queued wire bytes as refcounted chunks: Data-In
    /// payloads are views of the disk read buffer, not copies.
    pub fn take_wire(&mut self) -> Vec<bytes::Bytes> {
        self.out.take_chunks()
    }

    /// Whether any output bytes are queued.
    pub fn has_output(&self) -> bool {
        !self.out.is_empty()
    }

    /// Data-segment bytes memcpy'd on the encode path (small segments
    /// batched into scratch allocations).
    pub fn bytes_copied(&self) -> u64 {
        self.out.bytes_copied()
    }

    fn bump_stat_sn(&mut self) -> u32 {
        let sn = self.stat_sn;
        self.stat_sn = self.stat_sn.wrapping_add(1);
        sn
    }

    /// Feeds received bytes; returns events for the hosting app.
    pub fn feed(&mut self, bytes: &[u8]) -> Vec<TargetEvent> {
        self.feed_bytes(Bytes::copy_from_slice(bytes))
    }

    /// Feeds a received chunk by reference (no copy into the
    /// reassembler); returns events for the hosting app.
    pub fn feed_bytes(&mut self, bytes: Bytes) -> Vec<TargetEvent> {
        let pdus = match self.stream.feed_bytes(bytes) {
            Ok(p) => p,
            Err(e) => return vec![TargetEvent::ProtocolError(e.to_string())],
        };
        let mut events = Vec::new();
        for pw in pdus {
            self.handle(pw.pdu, &mut events);
        }
        events
    }

    fn handle(&mut self, pdu: Pdu, events: &mut Vec<TargetEvent>) {
        match pdu {
            Pdu::LoginRequest(r) => {
                let peer = decode_text(&r.data);
                self.params = self.cfg.params.negotiate(&peer);
                self.exp_cmd_sn = r.cmd_sn.wrapping_add(1);
                let initiator_name = peer.get("InitiatorName").cloned().unwrap_or_default();
                let mut keys = self.cfg.params.to_keys();
                keys.insert("TargetPortalGroupTag".into(), "1".into());
                let resp = Pdu::LoginResponse(LoginResponse {
                    transit: true,
                    csg: 1,
                    nsg: 3,
                    isid: r.isid,
                    tsih: self.cfg.tsih,
                    itt: r.itt,
                    stat_sn: self.bump_stat_sn(),
                    exp_cmd_sn: self.exp_cmd_sn,
                    max_cmd_sn: self.exp_cmd_sn.wrapping_add(64),
                    status_class: 0,
                    status_detail: 0,
                    data: encode_text(&keys).into(),
                });
                self.out.push_pdu(&resp);
                self.logged_in = true;
                events.push(TargetEvent::LoggedIn { initiator_name });
            }
            Pdu::ScsiCommand(c) => {
                self.exp_cmd_sn = c.cmd_sn.wrapping_add(1);
                let cdb = match Cdb::parse(&c.cdb) {
                    Ok(cdb) => cdb,
                    Err(op) => {
                        self.scsi_response(c.itt, ScsiStatus::CheckCondition);
                        events.push(TargetEvent::ProtocolError(format!(
                            "unsupported cdb opcode {op:#04x}"
                        )));
                        return;
                    }
                };
                match cdb {
                    Cdb::TestUnitReady => self.scsi_response(c.itt, ScsiStatus::Good),
                    Cdb::Inquiry { alloc } => {
                        let mut inq = vec![0u8; 36];
                        inq[0] = 0x00; // direct-access block device
                        inq[2] = 0x06; // SPC-4
                        inq[4] = 31; // additional length
                        inq[8..16].copy_from_slice(b"STORM   ");
                        inq[16..32].copy_from_slice(b"VIRTUAL VOLUME  ");
                        inq[32..36].copy_from_slice(b"0001");
                        inq.truncate(alloc as usize);
                        self.data_in_with_status(c.itt, Bytes::from(inq), ScsiStatus::Good);
                    }
                    Cdb::ReadCapacity10 => {
                        let last = self.cfg.num_sectors.saturating_sub(1);
                        let last32 = u32::try_from(last).unwrap_or(u32::MAX);
                        let mut cap = Vec::with_capacity(8);
                        cap.extend_from_slice(&last32.to_be_bytes());
                        cap.extend_from_slice(&512u32.to_be_bytes());
                        self.data_in_with_status(c.itt, Bytes::from(cap), ScsiStatus::Good);
                    }
                    Cdb::Read { lba, sectors } => {
                        if lba + sectors as u64 > self.cfg.num_sectors {
                            self.scsi_response(c.itt, ScsiStatus::CheckCondition);
                            return;
                        }
                        self.reads.insert(c.itt, ());
                        self.note_ready();
                        events.push(TargetEvent::ReadReady {
                            itt: c.itt,
                            lba,
                            sectors,
                        });
                    }
                    Cdb::Write { lba, sectors } => {
                        let expected = sectors as usize * 512;
                        if lba + sectors as u64 > self.cfg.num_sectors
                            || expected != c.edtl as usize
                        {
                            self.scsi_response(c.itt, ScsiStatus::CheckCondition);
                            return;
                        }
                        let unsolicited = if self.params.initial_r2t {
                            c.data.len().min(expected)
                        } else {
                            expected.min(self.params.first_burst_length as usize)
                        };
                        let mut xfer = WriteXfer {
                            lba,
                            buf: BytesMut::zeroed(expected),
                            received: 0,
                            expected,
                            unsolicited,
                            next_ttt: 0,
                        };
                        let imm = c.data.len().min(expected);
                        xfer.buf[..imm].copy_from_slice(&c.data[..imm]);
                        xfer.received = imm;
                        if xfer.received >= xfer.expected {
                            let data = xfer.buf.freeze();
                            self.note_ready();
                            events.push(TargetEvent::WriteReady {
                                itt: c.itt,
                                lba,
                                data,
                            });
                        } else {
                            // Solicit only what the initiator will not
                            // push unsolicited.
                            if xfer.received >= xfer.unsolicited {
                                self.solicit(c.itt, &mut xfer);
                            }
                            self.writes.insert(c.itt, xfer);
                        }
                    }
                    Cdb::SynchronizeCache => {
                        self.note_ready();
                        events.push(TargetEvent::FlushReady { itt: c.itt });
                    }
                }
            }
            Pdu::DataOut(d) => {
                let Some(xfer) = self.writes.get_mut(&d.itt) else {
                    events.push(TargetEvent::ProtocolError(format!(
                        "data-out for unknown itt {}",
                        d.itt
                    )));
                    return;
                };
                let off = d.buffer_offset as usize;
                let end = off + d.data.len();
                if end > xfer.expected {
                    events.push(TargetEvent::ProtocolError(format!(
                        "data-out overruns buffer: {end} > {}",
                        xfer.expected
                    )));
                    return;
                }
                xfer.buf[off..end].copy_from_slice(&d.data);
                xfer.received += d.data.len();
                if !d.final_pdu {
                    return;
                }
                if xfer.received >= xfer.expected {
                    let xfer = self.writes.remove(&d.itt).expect("just updated");
                    self.note_ready();
                    events.push(TargetEvent::WriteReady {
                        itt: d.itt,
                        lba: xfer.lba,
                        data: xfer.buf.freeze(),
                    });
                } else if xfer.received >= xfer.unsolicited {
                    // The unsolicited burst is in; solicit the next one.
                    let mut xfer = self.writes.remove(&d.itt).expect("just updated");
                    self.solicit(d.itt, &mut xfer);
                    self.writes.insert(d.itt, xfer);
                }
            }
            Pdu::NopOut(n) => {
                if n.itt != 0xFFFF_FFFF {
                    let pong = Pdu::NopIn(NopIn {
                        itt: n.itt,
                        ttt: 0xFFFF_FFFF,
                        stat_sn: self.stat_sn,
                        exp_cmd_sn: self.exp_cmd_sn,
                        max_cmd_sn: self.exp_cmd_sn.wrapping_add(64),
                        data: n.data,
                    });
                    self.out.push_pdu(&pong);
                }
            }
            Pdu::LogoutRequest(r) => {
                let resp = Pdu::LogoutResponse(LogoutResponse {
                    response: 0,
                    itt: r.itt,
                    stat_sn: self.bump_stat_sn(),
                    exp_cmd_sn: self.exp_cmd_sn,
                    max_cmd_sn: self.exp_cmd_sn.wrapping_add(64),
                });
                self.out.push_pdu(&resp);
                self.logged_in = false;
                events.push(TargetEvent::LoggedOut);
            }
            other => events.push(TargetEvent::ProtocolError(format!(
                "unexpected pdu at target: {other:?}"
            ))),
        }
    }

    /// Emits an R2T for the next burst of an incomplete write.
    fn solicit(&mut self, itt: u32, xfer: &mut WriteXfer) {
        let remaining = xfer.expected - xfer.received;
        let burst = remaining.min(self.params.max_burst_length as usize);
        let ttt = self.next_ttt;
        self.next_ttt = self.next_ttt.wrapping_add(1);
        let r2t = Pdu::R2t(R2t {
            lun: 0,
            itt,
            ttt,
            stat_sn: self.stat_sn,
            exp_cmd_sn: self.exp_cmd_sn,
            max_cmd_sn: self.exp_cmd_sn.wrapping_add(64),
            r2t_sn: xfer.next_ttt,
            buffer_offset: xfer.received as u32,
            desired_length: burst as u32,
        });
        xfer.next_ttt += 1;
        self.out.push_pdu(&r2t);
    }

    fn scsi_response(&mut self, itt: u32, status: ScsiStatus) {
        let resp = Pdu::ScsiResponse(ScsiResponse {
            itt,
            response: 0,
            status,
            stat_sn: self.bump_stat_sn(),
            exp_cmd_sn: self.exp_cmd_sn,
            max_cmd_sn: self.exp_cmd_sn.wrapping_add(64),
            residual: 0,
            data: Bytes::new(),
        });
        self.out.push_pdu(&resp);
    }

    /// Sends read payload as Data-In PDUs with phase-collapsed status on
    /// the final one.
    fn data_in_with_status(&mut self, itt: u32, data: Bytes, status: ScsiStatus) {
        let mrdsl = self.params.max_recv_data_segment_length as usize;
        let total = data.len();
        let mut off = 0;
        let mut data_sn = 0;
        loop {
            let end = (off + mrdsl).min(total);
            let last = end == total;
            let pdu = Pdu::DataIn(DataIn {
                final_pdu: last,
                status_present: last,
                status,
                lun: 0,
                itt,
                ttt: 0xFFFF_FFFF,
                stat_sn: if last {
                    self.bump_stat_sn()
                } else {
                    self.stat_sn
                },
                exp_cmd_sn: self.exp_cmd_sn,
                max_cmd_sn: self.exp_cmd_sn.wrapping_add(64),
                data_sn,
                buffer_offset: off as u32,
                residual: 0,
                data: data.slice(off..end),
            });
            self.out.push_pdu(&pdu);
            if last {
                break;
            }
            data_sn += 1;
            off = end;
        }
    }

    /// Completes a read surfaced by [`TargetEvent::ReadReady`].
    ///
    /// # Panics
    ///
    /// Panics if `itt` is not an outstanding read.
    pub fn complete_read(&mut self, itt: u32, data: Bytes, status: ScsiStatus) {
        assert!(self.reads.remove(&itt).is_some(), "unknown read itt {itt}");
        self.outstanding = self.outstanding.saturating_sub(1);
        if status == ScsiStatus::Good {
            self.data_in_with_status(itt, data, status);
        } else {
            self.scsi_response(itt, status);
        }
    }

    /// Completes a write surfaced by [`TargetEvent::WriteReady`].
    pub fn complete_write(&mut self, itt: u32, status: ScsiStatus) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.scsi_response(itt, status);
    }

    /// Completes a flush surfaced by [`TargetEvent::FlushReady`].
    pub fn complete_flush(&mut self, itt: u32, status: ScsiStatus) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.scsi_response(itt, status);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initiator::{Initiator, InitiatorConfig, InitiatorEvent};

    #[test]
    fn login_reports_initiator_name_for_attribution() {
        let mut ini = Initiator::new(InitiatorConfig::example());
        let mut tgt = TargetConn::new(TargetConfig::example(1024));
        ini.start_login();
        let evs = tgt.feed(&ini.take_output());
        match &evs[0] {
            TargetEvent::LoggedIn { initiator_name } => {
                assert_eq!(
                    initiator_name,
                    InitiatorConfig::example().initiator_iqn.as_str()
                );
            }
            other => panic!("expected login, got {other:?}"),
        }
        assert!(tgt.is_logged_in());
        let evs = ini.feed(&tgt.take_output());
        assert!(evs.contains(&InitiatorEvent::LoginComplete));
    }

    #[test]
    fn out_of_range_io_returns_check_condition() {
        let mut ini = Initiator::new(InitiatorConfig::example());
        let mut tgt = TargetConn::new(TargetConfig::example(8));
        ini.start_login();
        let _ = tgt.feed(&ini.take_output());
        let _ = ini.feed(&tgt.take_output());
        let tag = ini.read(100, 4);
        let _ = tgt.feed(&ini.take_output());
        let evs = ini.feed(&tgt.take_output());
        assert!(evs.iter().any(|e| matches!(
            e,
            InitiatorEvent::ReadComplete { tag: t, status: ScsiStatus::CheckCondition, .. }
            if *t == tag
        )));
    }

    #[test]
    fn nop_ping_pong() {
        let mut tgt = TargetConn::new(TargetConfig::example(8));
        let ping = Pdu::NopOut(crate::pdu::NopOut {
            itt: 55,
            ttt: 0xFFFF_FFFF,
            cmd_sn: 1,
            exp_stat_sn: 1,
            data: Bytes::from_static(b"hb"),
        });
        let evs = tgt.feed(&ping.encode());
        assert!(evs.is_empty());
        let out = tgt.take_output();
        let mut stream = PduStream::new();
        let pdus = stream.feed(&out).unwrap();
        match &pdus[0] {
            Pdu::NopIn(n) => {
                assert_eq!(n.itt, 55);
                assert_eq!(&n.data[..], b"hb");
            }
            other => panic!("expected nop-in, got {other:?}"),
        }
    }

    #[test]
    fn inquiry_and_read_capacity() {
        let mut ini = Initiator::new(InitiatorConfig::example());
        let mut tgt = TargetConn::new(TargetConfig::example(2048));
        ini.start_login();
        let _ = tgt.feed(&ini.take_output());
        let _ = ini.feed(&tgt.take_output());
        // Drive a raw READ CAPACITY through the target.
        let cmd = Pdu::ScsiCommand(crate::pdu::ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: true,
            write: false,
            lun: 0,
            itt: 99,
            edtl: 8,
            cmd_sn: 50,
            exp_stat_sn: 2,
            cdb: Cdb::ReadCapacity10.to_bytes(),
            data: Bytes::new(),
        });
        let evs = tgt.feed(&cmd.encode());
        assert!(evs.is_empty(), "capacity served internally: {evs:?}");
        let out = tgt.take_output();
        let pdus = PduStream::new().feed(&out).unwrap();
        match &pdus[0] {
            Pdu::DataIn(d) => {
                assert!(d.status_present);
                let last_lba = u32::from_be_bytes(d.data[0..4].try_into().unwrap());
                let block = u32::from_be_bytes(d.data[4..8].try_into().unwrap());
                assert_eq!(last_lba, 2047);
                assert_eq!(block, 512);
            }
            other => panic!("expected data-in, got {other:?}"),
        }
    }
}

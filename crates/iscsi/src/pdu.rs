//! iSCSI PDU wire format: 48-byte basic header segment + data segment.
//!
//! Layouts follow RFC 7143 §11 (no AHS, no header/data digests — the
//! paper's OpenStack deployment runs with digests off). Every field the
//! endpoint state machines need is represented; reserved fields encode as
//! zero.

use bytes::Bytes;

use crate::cdb::ScsiStatus;

/// Errors from PDU decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PduError {
    /// The opcode byte is not one this implementation understands.
    UnknownOpcode(u8),
    /// Header too short (framing bug).
    Truncated,
    /// Stream reassembly accounting desynchronized (buffered-length
    /// bookkeeping disagrees with the chunk list). Connection-fatal, like
    /// the other variants, but reported instead of panicking: a relay
    /// must drop the connection, not abort the process.
    Desync,
}

impl std::fmt::Display for PduError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PduError::UnknownOpcode(op) => write!(f, "unknown iscsi opcode {op:#04x}"),
            PduError::Truncated => write!(f, "truncated pdu header"),
            PduError::Desync => write!(f, "pdu stream accounting desynchronized"),
        }
    }
}

impl std::error::Error for PduError {}

/// BHS length in bytes.
pub const BHS_LEN: usize = 48;

// Opcodes (initiator → target).
const OP_NOP_OUT: u8 = 0x00;
const OP_SCSI_CMD: u8 = 0x01;
const OP_LOGIN_REQ: u8 = 0x03;
const OP_TEXT_REQ: u8 = 0x04;
const OP_DATA_OUT: u8 = 0x05;
const OP_LOGOUT_REQ: u8 = 0x06;
// Opcodes (target → initiator).
const OP_NOP_IN: u8 = 0x20;
const OP_SCSI_RESP: u8 = 0x21;
const OP_LOGIN_RESP: u8 = 0x23;
const OP_TEXT_RESP: u8 = 0x24;
const OP_DATA_IN: u8 = 0x25;
const OP_LOGOUT_RESP: u8 = 0x26;
const OP_R2T: u8 = 0x31;

/// Login Request PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoginRequest {
    /// Transit to the next stage.
    pub transit: bool,
    /// Current stage (1 = operational negotiation).
    pub csg: u8,
    /// Next stage (3 = full feature phase).
    pub nsg: u8,
    /// Initiator session id.
    pub isid: [u8; 6],
    /// Target session identifying handle (0 on first login).
    pub tsih: u16,
    /// Initiator task tag.
    pub itt: u32,
    /// Connection id within the session.
    pub cid: u16,
    /// Command sequence number.
    pub cmd_sn: u32,
    /// Expected status sequence number.
    pub exp_stat_sn: u32,
    /// key=value negotiation text.
    pub data: Bytes,
}

/// Login Response PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoginResponse {
    /// Transit accepted.
    pub transit: bool,
    /// Current stage.
    pub csg: u8,
    /// Next stage.
    pub nsg: u8,
    /// Echoed initiator session id.
    pub isid: [u8; 6],
    /// Assigned session handle.
    pub tsih: u16,
    /// Initiator task tag.
    pub itt: u32,
    /// Status sequence number.
    pub stat_sn: u32,
    /// Expected command sequence number.
    pub exp_cmd_sn: u32,
    /// Highest acceptable command sequence number.
    pub max_cmd_sn: u32,
    /// 0 = success.
    pub status_class: u8,
    /// Detail within the class.
    pub status_detail: u8,
    /// key=value negotiation text.
    pub data: Bytes,
}

/// SCSI Command PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScsiCommand {
    /// Immediate delivery flag.
    pub immediate: bool,
    /// Final PDU of the command (always true here: no linked commands).
    pub final_pdu: bool,
    /// Expects data-in.
    pub read: bool,
    /// Expects data-out.
    pub write: bool,
    /// Logical unit number.
    pub lun: u64,
    /// Initiator task tag.
    pub itt: u32,
    /// Expected data transfer length in bytes.
    pub edtl: u32,
    /// Command sequence number.
    pub cmd_sn: u32,
    /// Expected status sequence number.
    pub exp_stat_sn: u32,
    /// The 16-byte CDB.
    pub cdb: [u8; 16],
    /// Immediate write data (when `ImmediateData=Yes`).
    pub data: Bytes,
}

/// SCSI Response PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScsiResponse {
    /// Initiator task tag.
    pub itt: u32,
    /// iSCSI response code (0 = command completed at target).
    pub response: u8,
    /// SCSI status.
    pub status: ScsiStatus,
    /// Status sequence number.
    pub stat_sn: u32,
    /// Expected command sequence number.
    pub exp_cmd_sn: u32,
    /// Highest acceptable command sequence number.
    pub max_cmd_sn: u32,
    /// Residual byte count (over/underflow).
    pub residual: u32,
    /// Sense data, if any.
    pub data: Bytes,
}

/// SCSI Data-Out PDU (initiator → target write payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataOut {
    /// Last Data-Out of the sequence.
    pub final_pdu: bool,
    /// Logical unit number.
    pub lun: u64,
    /// Initiator task tag.
    pub itt: u32,
    /// Target transfer tag from the soliciting R2T (0xffffffff for
    /// unsolicited data).
    pub ttt: u32,
    /// Expected status sequence number.
    pub exp_stat_sn: u32,
    /// Data sequence number within the transfer.
    pub data_sn: u32,
    /// Byte offset of this payload within the command's buffer.
    pub buffer_offset: u32,
    /// Payload.
    pub data: Bytes,
}

/// SCSI Data-In PDU (target → initiator read payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataIn {
    /// Last Data-In of the command.
    pub final_pdu: bool,
    /// Phase-collapsed status present (S bit).
    pub status_present: bool,
    /// SCSI status (meaningful when `status_present`).
    pub status: ScsiStatus,
    /// Logical unit number.
    pub lun: u64,
    /// Initiator task tag.
    pub itt: u32,
    /// Target transfer tag (0xffffffff unless used for SNACK).
    pub ttt: u32,
    /// Status sequence number (when `status_present`).
    pub stat_sn: u32,
    /// Expected command sequence number.
    pub exp_cmd_sn: u32,
    /// Highest acceptable command sequence number.
    pub max_cmd_sn: u32,
    /// Data sequence number.
    pub data_sn: u32,
    /// Byte offset of this payload within the command's buffer.
    pub buffer_offset: u32,
    /// Residual count (with the S bit).
    pub residual: u32,
    /// Payload.
    pub data: Bytes,
}

/// Ready To Transfer PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct R2t {
    /// Logical unit number.
    pub lun: u64,
    /// Initiator task tag.
    pub itt: u32,
    /// Target transfer tag the Data-Out PDUs must echo.
    pub ttt: u32,
    /// Status sequence number context.
    pub stat_sn: u32,
    /// Expected command sequence number.
    pub exp_cmd_sn: u32,
    /// Highest acceptable command sequence number.
    pub max_cmd_sn: u32,
    /// R2T sequence number.
    pub r2t_sn: u32,
    /// Requested buffer offset.
    pub buffer_offset: u32,
    /// Requested byte count.
    pub desired_length: u32,
}

/// NOP-Out (ping / keepalive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NopOut {
    /// Initiator task tag (0xffffffff = no response wanted).
    pub itt: u32,
    /// Target transfer tag being echoed (0xffffffff if unsolicited).
    pub ttt: u32,
    /// Command sequence number.
    pub cmd_sn: u32,
    /// Expected status sequence number.
    pub exp_stat_sn: u32,
    /// Optional ping payload.
    pub data: Bytes,
}

/// NOP-In (pong / target ping).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NopIn {
    /// Initiator task tag echoed (0xffffffff for target pings).
    pub itt: u32,
    /// Target transfer tag.
    pub ttt: u32,
    /// Status sequence number.
    pub stat_sn: u32,
    /// Expected command sequence number.
    pub exp_cmd_sn: u32,
    /// Highest acceptable command sequence number.
    pub max_cmd_sn: u32,
    /// Echoed payload.
    pub data: Bytes,
}

/// Text Request PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextRequest {
    /// Final text PDU of the exchange.
    pub final_pdu: bool,
    /// Initiator task tag.
    pub itt: u32,
    /// Target transfer tag for continuations.
    pub ttt: u32,
    /// Command sequence number.
    pub cmd_sn: u32,
    /// Expected status sequence number.
    pub exp_stat_sn: u32,
    /// key=value text.
    pub data: Bytes,
}

/// Text Response PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextResponse {
    /// Final text PDU of the exchange.
    pub final_pdu: bool,
    /// Initiator task tag.
    pub itt: u32,
    /// Target transfer tag for continuations.
    pub ttt: u32,
    /// Status sequence number.
    pub stat_sn: u32,
    /// Expected command sequence number.
    pub exp_cmd_sn: u32,
    /// Highest acceptable command sequence number.
    pub max_cmd_sn: u32,
    /// key=value text.
    pub data: Bytes,
}

/// Logout Request PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogoutRequest {
    /// Reason code (0 = close session).
    pub reason: u8,
    /// Initiator task tag.
    pub itt: u32,
    /// Connection id to log out.
    pub cid: u16,
    /// Command sequence number.
    pub cmd_sn: u32,
    /// Expected status sequence number.
    pub exp_stat_sn: u32,
}

/// Logout Response PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogoutResponse {
    /// Response code (0 = closed successfully).
    pub response: u8,
    /// Initiator task tag.
    pub itt: u32,
    /// Status sequence number.
    pub stat_sn: u32,
    /// Expected command sequence number.
    pub exp_cmd_sn: u32,
    /// Highest acceptable command sequence number.
    pub max_cmd_sn: u32,
}

/// Any iSCSI PDU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pdu {
    /// Login Request.
    LoginRequest(LoginRequest),
    /// Login Response.
    LoginResponse(LoginResponse),
    /// SCSI Command.
    ScsiCommand(ScsiCommand),
    /// SCSI Response.
    ScsiResponse(ScsiResponse),
    /// SCSI Data-Out.
    DataOut(DataOut),
    /// SCSI Data-In.
    DataIn(DataIn),
    /// Ready To Transfer.
    R2t(R2t),
    /// NOP-Out.
    NopOut(NopOut),
    /// NOP-In.
    NopIn(NopIn),
    /// Text Request.
    TextRequest(TextRequest),
    /// Text Response.
    TextResponse(TextResponse),
    /// Logout Request.
    LogoutRequest(LogoutRequest),
    /// Logout Response.
    LogoutResponse(LogoutResponse),
}

fn put_u16(b: &mut [u8], off: usize, v: u16) {
    b[off..off + 2].copy_from_slice(&v.to_be_bytes());
}
fn put_u32(b: &mut [u8], off: usize, v: u32) {
    b[off..off + 4].copy_from_slice(&v.to_be_bytes());
}
fn put_u64(b: &mut [u8], off: usize, v: u64) {
    b[off..off + 8].copy_from_slice(&v.to_be_bytes());
}
fn get_u16(b: &[u8], off: usize) -> u16 {
    u16::from_be_bytes(b[off..off + 2].try_into().expect("2 bytes"))
}
fn get_u32(b: &[u8], off: usize) -> u32 {
    u32::from_be_bytes(b[off..off + 4].try_into().expect("4 bytes"))
}
fn get_u64(b: &[u8], off: usize) -> u64 {
    u64::from_be_bytes(b[off..off + 8].try_into().expect("8 bytes"))
}

fn put_dsl(b: &mut [u8], len: usize) {
    let v = len as u32;
    b[5] = (v >> 16) as u8;
    b[6] = (v >> 8) as u8;
    b[7] = v as u8;
}

/// Extracts the data segment length from a BHS.
///
/// # Errors
///
/// [`PduError::Truncated`] when `bhs` is shorter than a full header —
/// a short or garbled reassembly buffer must surface as a protocol error,
/// never as a panic in the relay hot path.
pub fn data_segment_length(bhs: &[u8]) -> Result<usize, PduError> {
    if bhs.len() < BHS_LEN {
        return Err(PduError::Truncated);
    }
    Ok(((bhs[5] as usize) << 16) | ((bhs[6] as usize) << 8) | bhs[7] as usize)
}

/// Pads a length to the 4-byte PDU boundary.
pub fn padded(len: usize) -> usize {
    len.div_ceil(4) * 4
}

/// Zero padding source for [`WireChunks::pad`].
static ZERO_PAD: [u8; 4] = [0; 4];

/// Scatter-gather view of one encoded PDU: the stack-built header, the
/// data segment *shared* with the PDU (refcounted, never copied), and a
/// static zero-pad slice to the 4-byte boundary.
///
/// This is the zero-copy alternative to [`Pdu::encode`]: senders push the
/// three chunks into a chunked send queue and the data segment travels by
/// reference all the way into TCP segments.
#[derive(Debug, Clone)]
pub struct WireChunks {
    /// The 48-byte basic header segment, data-segment length filled in.
    pub header: [u8; BHS_LEN],
    /// The data segment, sharing the PDU's storage.
    pub data: Bytes,
    /// Zero padding to the 4-byte boundary (0–3 bytes).
    pub pad: &'static [u8],
}

impl WireChunks {
    /// Total encoded length (header + data + pad).
    pub fn wire_len(&self) -> usize {
        BHS_LEN + self.data.len() + self.pad.len()
    }

    /// Flattens the view into contiguous wire bytes (copies — for tests
    /// and non-vectored senders).
    pub fn to_vec(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.header);
        out.extend_from_slice(&self.data);
        out.extend_from_slice(self.pad);
        out
    }
}

impl Pdu {
    /// This PDU's data segment.
    pub fn data(&self) -> &Bytes {
        static EMPTY: Bytes = Bytes::new();
        match self {
            Pdu::LoginRequest(p) => &p.data,
            Pdu::LoginResponse(p) => &p.data,
            Pdu::ScsiCommand(p) => &p.data,
            Pdu::ScsiResponse(p) => &p.data,
            Pdu::DataOut(p) => &p.data,
            Pdu::DataIn(p) => &p.data,
            Pdu::NopOut(p) => &p.data,
            Pdu::NopIn(p) => &p.data,
            Pdu::TextRequest(p) => &p.data,
            Pdu::TextResponse(p) => &p.data,
            Pdu::R2t(_) | Pdu::LogoutRequest(_) | Pdu::LogoutResponse(_) => &EMPTY,
        }
    }

    /// The initiator task tag.
    ///
    /// Unique per outstanding command within a session, echoed by every
    /// PDU of the exchange. Combined with the initiator's TCP source port
    /// it forms the request token that correlates trace spans across the
    /// guest, middle-box, and target (`storm_sim::req_token`) — the ITT
    /// survives relaying because active relays forward commands verbatim.
    pub fn itt(&self) -> u32 {
        match self {
            Pdu::LoginRequest(p) => p.itt,
            Pdu::LoginResponse(p) => p.itt,
            Pdu::ScsiCommand(p) => p.itt,
            Pdu::ScsiResponse(p) => p.itt,
            Pdu::DataOut(p) => p.itt,
            Pdu::DataIn(p) => p.itt,
            Pdu::R2t(p) => p.itt,
            Pdu::NopOut(p) => p.itt,
            Pdu::NopIn(p) => p.itt,
            Pdu::TextRequest(p) => p.itt,
            Pdu::TextResponse(p) => p.itt,
            Pdu::LogoutRequest(p) => p.itt,
            Pdu::LogoutResponse(p) => p.itt,
        }
    }

    /// Total encoded length (header + padded data).
    pub fn wire_len(&self) -> usize {
        BHS_LEN + padded(self.data().len())
    }

    /// Serializes to wire bytes (thin wrapper over [`Pdu::encode_into`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = bytes::BytesMut::with_capacity(self.wire_len());
        self.encode_into(&mut out);
        out.to_vec()
    }

    /// Serializes into `out`, appending header, data segment and padding.
    pub fn encode_into(&self, out: &mut bytes::BytesMut) {
        let w = self.wire_chunks();
        out.extend_from_slice(&w.header);
        out.extend_from_slice(&w.data);
        out.extend_from_slice(w.pad);
    }

    /// The zero-copy scatter-gather encoding: header on the stack, data
    /// segment shared by reference, static pad.
    pub fn wire_chunks(&self) -> WireChunks {
        let data = self.data().clone();
        let pad = &ZERO_PAD[..padded(data.len()) - data.len()];
        WireChunks {
            header: self.encode_bhs(),
            data,
            pad,
        }
    }

    /// Builds the 48-byte basic header segment (data-segment length
    /// included) without touching the data segment.
    pub fn encode_bhs(&self) -> [u8; BHS_LEN] {
        let mut b = [0u8; BHS_LEN];
        match self {
            Pdu::LoginRequest(p) => {
                b[0] = OP_LOGIN_REQ | 0x40; // login is always immediate
                b[1] = (if p.transit { 0x80 } else { 0 }) | (p.csg << 2) | p.nsg;
                b[8..14].copy_from_slice(&p.isid);
                put_u16(&mut b, 14, p.tsih);
                put_u32(&mut b, 16, p.itt);
                put_u16(&mut b, 20, p.cid);
                put_u32(&mut b, 24, p.cmd_sn);
                put_u32(&mut b, 28, p.exp_stat_sn);
            }
            Pdu::LoginResponse(p) => {
                b[0] = OP_LOGIN_RESP;
                b[1] = (if p.transit { 0x80 } else { 0 }) | (p.csg << 2) | p.nsg;
                b[8..14].copy_from_slice(&p.isid);
                put_u16(&mut b, 14, p.tsih);
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 24, p.stat_sn);
                put_u32(&mut b, 28, p.exp_cmd_sn);
                put_u32(&mut b, 32, p.max_cmd_sn);
                b[36] = p.status_class;
                b[37] = p.status_detail;
            }
            Pdu::ScsiCommand(p) => {
                b[0] = OP_SCSI_CMD | if p.immediate { 0x40 } else { 0 };
                b[1] = (if p.final_pdu { 0x80 } else { 0 })
                    | (if p.read { 0x40 } else { 0 })
                    | (if p.write { 0x20 } else { 0 })
                    | 0x01; // SIMPLE task attribute
                put_u64(&mut b, 8, p.lun);
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 20, p.edtl);
                put_u32(&mut b, 24, p.cmd_sn);
                put_u32(&mut b, 28, p.exp_stat_sn);
                b[32..48].copy_from_slice(&p.cdb);
            }
            Pdu::ScsiResponse(p) => {
                b[0] = OP_SCSI_RESP;
                b[1] = 0x80;
                b[2] = p.response;
                b[3] = p.status.to_byte();
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 24, p.stat_sn);
                put_u32(&mut b, 28, p.exp_cmd_sn);
                put_u32(&mut b, 32, p.max_cmd_sn);
                put_u32(&mut b, 44, p.residual);
            }
            Pdu::DataOut(p) => {
                b[0] = OP_DATA_OUT;
                b[1] = if p.final_pdu { 0x80 } else { 0 };
                put_u64(&mut b, 8, p.lun);
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 20, p.ttt);
                put_u32(&mut b, 28, p.exp_stat_sn);
                put_u32(&mut b, 36, p.data_sn);
                put_u32(&mut b, 40, p.buffer_offset);
            }
            Pdu::DataIn(p) => {
                b[0] = OP_DATA_IN;
                b[1] = (if p.final_pdu { 0x80 } else { 0 })
                    | (if p.status_present { 0x01 } else { 0 });
                if p.status_present {
                    b[3] = p.status.to_byte();
                }
                put_u64(&mut b, 8, p.lun);
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 20, p.ttt);
                put_u32(&mut b, 24, p.stat_sn);
                put_u32(&mut b, 28, p.exp_cmd_sn);
                put_u32(&mut b, 32, p.max_cmd_sn);
                put_u32(&mut b, 36, p.data_sn);
                put_u32(&mut b, 40, p.buffer_offset);
                put_u32(&mut b, 44, p.residual);
            }
            Pdu::R2t(p) => {
                b[0] = OP_R2T;
                b[1] = 0x80;
                put_u64(&mut b, 8, p.lun);
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 20, p.ttt);
                put_u32(&mut b, 24, p.stat_sn);
                put_u32(&mut b, 28, p.exp_cmd_sn);
                put_u32(&mut b, 32, p.max_cmd_sn);
                put_u32(&mut b, 36, p.r2t_sn);
                put_u32(&mut b, 40, p.buffer_offset);
                put_u32(&mut b, 44, p.desired_length);
            }
            Pdu::NopOut(p) => {
                b[0] = OP_NOP_OUT | 0x40;
                b[1] = 0x80;
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 20, p.ttt);
                put_u32(&mut b, 24, p.cmd_sn);
                put_u32(&mut b, 28, p.exp_stat_sn);
            }
            Pdu::NopIn(p) => {
                b[0] = OP_NOP_IN;
                b[1] = 0x80;
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 20, p.ttt);
                put_u32(&mut b, 24, p.stat_sn);
                put_u32(&mut b, 28, p.exp_cmd_sn);
                put_u32(&mut b, 32, p.max_cmd_sn);
            }
            Pdu::TextRequest(p) => {
                b[0] = OP_TEXT_REQ | 0x40;
                b[1] = if p.final_pdu { 0x80 } else { 0 };
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 20, p.ttt);
                put_u32(&mut b, 24, p.cmd_sn);
                put_u32(&mut b, 28, p.exp_stat_sn);
            }
            Pdu::TextResponse(p) => {
                b[0] = OP_TEXT_RESP;
                b[1] = if p.final_pdu { 0x80 } else { 0 };
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 20, p.ttt);
                put_u32(&mut b, 24, p.stat_sn);
                put_u32(&mut b, 28, p.exp_cmd_sn);
                put_u32(&mut b, 32, p.max_cmd_sn);
            }
            Pdu::LogoutRequest(p) => {
                b[0] = OP_LOGOUT_REQ | 0x40;
                b[1] = 0x80 | (p.reason & 0x7F);
                put_u32(&mut b, 16, p.itt);
                put_u16(&mut b, 20, p.cid);
                put_u32(&mut b, 24, p.cmd_sn);
                put_u32(&mut b, 28, p.exp_stat_sn);
            }
            Pdu::LogoutResponse(p) => {
                b[0] = OP_LOGOUT_RESP;
                b[1] = 0x80;
                b[2] = p.response;
                put_u32(&mut b, 16, p.itt);
                put_u32(&mut b, 24, p.stat_sn);
                put_u32(&mut b, 28, p.exp_cmd_sn);
                put_u32(&mut b, 32, p.max_cmd_sn);
            }
        }
        put_dsl(&mut b, self.data().len());
        b
    }

    /// Decodes a PDU from its header and (unpadded) data segment.
    ///
    /// # Errors
    ///
    /// [`PduError::Truncated`] for short headers, [`PduError::UnknownOpcode`]
    /// for opcodes outside the supported subset.
    pub fn decode(bhs: &[u8], data: Bytes) -> Result<Pdu, PduError> {
        if bhs.len() < BHS_LEN {
            return Err(PduError::Truncated);
        }
        let opcode = bhs[0] & 0x3F;
        let immediate = bhs[0] & 0x40 != 0;
        let f = bhs[1] & 0x80 != 0;
        Ok(match opcode {
            OP_LOGIN_REQ => Pdu::LoginRequest(LoginRequest {
                transit: f,
                csg: (bhs[1] >> 2) & 0x03,
                nsg: bhs[1] & 0x03,
                isid: bhs[8..14].try_into().expect("6 bytes"),
                tsih: get_u16(bhs, 14),
                itt: get_u32(bhs, 16),
                cid: get_u16(bhs, 20),
                cmd_sn: get_u32(bhs, 24),
                exp_stat_sn: get_u32(bhs, 28),
                data,
            }),
            OP_LOGIN_RESP => Pdu::LoginResponse(LoginResponse {
                transit: f,
                csg: (bhs[1] >> 2) & 0x03,
                nsg: bhs[1] & 0x03,
                isid: bhs[8..14].try_into().expect("6 bytes"),
                tsih: get_u16(bhs, 14),
                itt: get_u32(bhs, 16),
                stat_sn: get_u32(bhs, 24),
                exp_cmd_sn: get_u32(bhs, 28),
                max_cmd_sn: get_u32(bhs, 32),
                status_class: bhs[36],
                status_detail: bhs[37],
                data,
            }),
            OP_SCSI_CMD => Pdu::ScsiCommand(ScsiCommand {
                immediate,
                final_pdu: f,
                read: bhs[1] & 0x40 != 0,
                write: bhs[1] & 0x20 != 0,
                lun: get_u64(bhs, 8),
                itt: get_u32(bhs, 16),
                edtl: get_u32(bhs, 20),
                cmd_sn: get_u32(bhs, 24),
                exp_stat_sn: get_u32(bhs, 28),
                cdb: bhs[32..48].try_into().expect("16 bytes"),
                data,
            }),
            OP_SCSI_RESP => Pdu::ScsiResponse(ScsiResponse {
                itt: get_u32(bhs, 16),
                response: bhs[2],
                status: ScsiStatus::from_byte(bhs[3]),
                stat_sn: get_u32(bhs, 24),
                exp_cmd_sn: get_u32(bhs, 28),
                max_cmd_sn: get_u32(bhs, 32),
                residual: get_u32(bhs, 44),
                data,
            }),
            OP_DATA_OUT => Pdu::DataOut(DataOut {
                final_pdu: f,
                lun: get_u64(bhs, 8),
                itt: get_u32(bhs, 16),
                ttt: get_u32(bhs, 20),
                exp_stat_sn: get_u32(bhs, 28),
                data_sn: get_u32(bhs, 36),
                buffer_offset: get_u32(bhs, 40),
                data,
            }),
            OP_DATA_IN => Pdu::DataIn(DataIn {
                final_pdu: f,
                status_present: bhs[1] & 0x01 != 0,
                status: ScsiStatus::from_byte(bhs[3]),
                lun: get_u64(bhs, 8),
                itt: get_u32(bhs, 16),
                ttt: get_u32(bhs, 20),
                stat_sn: get_u32(bhs, 24),
                exp_cmd_sn: get_u32(bhs, 28),
                max_cmd_sn: get_u32(bhs, 32),
                data_sn: get_u32(bhs, 36),
                buffer_offset: get_u32(bhs, 40),
                residual: get_u32(bhs, 44),
                data,
            }),
            OP_R2T => Pdu::R2t(R2t {
                lun: get_u64(bhs, 8),
                itt: get_u32(bhs, 16),
                ttt: get_u32(bhs, 20),
                stat_sn: get_u32(bhs, 24),
                exp_cmd_sn: get_u32(bhs, 28),
                max_cmd_sn: get_u32(bhs, 32),
                r2t_sn: get_u32(bhs, 36),
                buffer_offset: get_u32(bhs, 40),
                desired_length: get_u32(bhs, 44),
            }),
            OP_NOP_OUT => Pdu::NopOut(NopOut {
                itt: get_u32(bhs, 16),
                ttt: get_u32(bhs, 20),
                cmd_sn: get_u32(bhs, 24),
                exp_stat_sn: get_u32(bhs, 28),
                data,
            }),
            OP_NOP_IN => Pdu::NopIn(NopIn {
                itt: get_u32(bhs, 16),
                ttt: get_u32(bhs, 20),
                stat_sn: get_u32(bhs, 24),
                exp_cmd_sn: get_u32(bhs, 28),
                max_cmd_sn: get_u32(bhs, 32),
                data,
            }),
            OP_TEXT_REQ => Pdu::TextRequest(TextRequest {
                final_pdu: f,
                itt: get_u32(bhs, 16),
                ttt: get_u32(bhs, 20),
                cmd_sn: get_u32(bhs, 24),
                exp_stat_sn: get_u32(bhs, 28),
                data,
            }),
            OP_TEXT_RESP => Pdu::TextResponse(TextResponse {
                final_pdu: f,
                itt: get_u32(bhs, 16),
                ttt: get_u32(bhs, 20),
                stat_sn: get_u32(bhs, 24),
                exp_cmd_sn: get_u32(bhs, 28),
                max_cmd_sn: get_u32(bhs, 32),
                data,
            }),
            OP_LOGOUT_REQ => Pdu::LogoutRequest(LogoutRequest {
                reason: bhs[1] & 0x7F,
                itt: get_u32(bhs, 16),
                cid: get_u16(bhs, 20),
                cmd_sn: get_u32(bhs, 24),
                exp_stat_sn: get_u32(bhs, 28),
            }),
            OP_LOGOUT_RESP => Pdu::LogoutResponse(LogoutResponse {
                response: bhs[2],
                itt: get_u32(bhs, 16),
                stat_sn: get_u32(bhs, 24),
                exp_cmd_sn: get_u32(bhs, 28),
                max_cmd_sn: get_u32(bhs, 32),
            }),
            op => return Err(PduError::UnknownOpcode(op)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(pdu: Pdu) {
        let wire = pdu.encode();
        assert_eq!(wire.len(), pdu.wire_len());
        let dsl = data_segment_length(&wire).unwrap();
        assert_eq!(dsl, pdu.data().len());
        let data = Bytes::copy_from_slice(&wire[BHS_LEN..BHS_LEN + dsl]);
        let decoded = Pdu::decode(&wire[..BHS_LEN], data).unwrap();
        assert_eq!(decoded, pdu);
        // The scatter-gather view flattens to the same bytes, and the data
        // chunk shares storage with the PDU (no copy during encode).
        let w = pdu.wire_chunks();
        assert_eq!(w.to_vec(), wire);
        assert_eq!(w.wire_len(), wire.len());
        assert!(w.data.same_storage(pdu.data()));
    }

    #[test]
    fn round_trip_every_variant() {
        round_trip(Pdu::LoginRequest(LoginRequest {
            transit: true,
            csg: 1,
            nsg: 3,
            isid: [0x80, 0, 0, 0x02, 0xAB, 0xCD],
            tsih: 0,
            itt: 1,
            cid: 0,
            cmd_sn: 1,
            exp_stat_sn: 0,
            data: Bytes::from_static(b"InitiatorName=iqn.2016-04.org.storm:host-c1\0"),
        }));
        round_trip(Pdu::LoginResponse(LoginResponse {
            transit: true,
            csg: 1,
            nsg: 3,
            isid: [0x80, 0, 0, 0x02, 0xAB, 0xCD],
            tsih: 0x11,
            itt: 1,
            stat_sn: 1,
            exp_cmd_sn: 2,
            max_cmd_sn: 65,
            status_class: 0,
            status_detail: 0,
            data: Bytes::from_static(b"TargetPortalGroupTag=1\0"),
        }));
        round_trip(Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: true,
            write: false,
            lun: 0,
            itt: 7,
            edtl: 4096,
            cmd_sn: 3,
            exp_stat_sn: 2,
            cdb: crate::cdb::Cdb::Read {
                lba: 100,
                sectors: 8,
            }
            .to_bytes(),
            data: Bytes::new(),
        }));
        round_trip(Pdu::ScsiResponse(ScsiResponse {
            itt: 7,
            response: 0,
            status: ScsiStatus::Good,
            stat_sn: 3,
            exp_cmd_sn: 4,
            max_cmd_sn: 67,
            residual: 0,
            data: Bytes::new(),
        }));
        round_trip(Pdu::DataOut(DataOut {
            final_pdu: true,
            lun: 0,
            itt: 9,
            ttt: 0x1000,
            exp_stat_sn: 5,
            data_sn: 2,
            buffer_offset: 128 * 1024,
            data: Bytes::from(vec![0x5A; 8192]),
        }));
        round_trip(Pdu::DataIn(DataIn {
            final_pdu: true,
            status_present: true,
            status: ScsiStatus::Good,
            lun: 0,
            itt: 9,
            ttt: 0xFFFF_FFFF,
            stat_sn: 6,
            exp_cmd_sn: 7,
            max_cmd_sn: 70,
            data_sn: 3,
            buffer_offset: 0,
            residual: 0,
            data: Bytes::from(vec![0xA5; 4096]),
        }));
        round_trip(Pdu::R2t(R2t {
            lun: 0,
            itt: 9,
            ttt: 0x1001,
            stat_sn: 6,
            exp_cmd_sn: 7,
            max_cmd_sn: 70,
            r2t_sn: 0,
            buffer_offset: 65536,
            desired_length: 196608,
        }));
        round_trip(Pdu::NopOut(NopOut {
            itt: 11,
            ttt: 0xFFFF_FFFF,
            cmd_sn: 8,
            exp_stat_sn: 7,
            data: Bytes::from_static(b"ping"),
        }));
        round_trip(Pdu::NopIn(NopIn {
            itt: 11,
            ttt: 0xFFFF_FFFF,
            stat_sn: 8,
            exp_cmd_sn: 9,
            max_cmd_sn: 72,
            data: Bytes::from_static(b"ping"),
        }));
        round_trip(Pdu::TextRequest(TextRequest {
            final_pdu: true,
            itt: 13,
            ttt: 0xFFFF_FFFF,
            cmd_sn: 10,
            exp_stat_sn: 9,
            data: Bytes::from_static(b"SendTargets=All\0"),
        }));
        round_trip(Pdu::TextResponse(TextResponse {
            final_pdu: true,
            itt: 13,
            ttt: 0xFFFF_FFFF,
            stat_sn: 10,
            exp_cmd_sn: 11,
            max_cmd_sn: 74,
            data: Bytes::from_static(b"TargetName=iqn.2016-04.org.storm:volume-1\0"),
        }));
        round_trip(Pdu::LogoutRequest(LogoutRequest {
            reason: 0,
            itt: 15,
            cid: 0,
            cmd_sn: 12,
            exp_stat_sn: 11,
        }));
        round_trip(Pdu::LogoutResponse(LogoutResponse {
            response: 0,
            itt: 15,
            stat_sn: 12,
            exp_cmd_sn: 13,
            max_cmd_sn: 76,
        }));
    }

    #[test]
    fn data_is_padded_to_four_bytes() {
        let pdu = Pdu::NopOut(NopOut {
            itt: 1,
            ttt: 0xFFFF_FFFF,
            cmd_sn: 1,
            exp_stat_sn: 1,
            data: Bytes::from_static(b"abcde"), // 5 bytes -> pad to 8
        });
        let wire = pdu.encode();
        assert_eq!(wire.len(), BHS_LEN + 8);
        assert_eq!(&wire[BHS_LEN..BHS_LEN + 5], b"abcde");
        assert_eq!(&wire[BHS_LEN + 5..], &[0, 0, 0]);
        assert_eq!(padded(0), 0);
        assert_eq!(padded(4), 4);
        assert_eq!(padded(5), 8);
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut bhs = [0u8; BHS_LEN];
        bhs[0] = 0x3B;
        assert_eq!(
            Pdu::decode(&bhs, Bytes::new()),
            Err(PduError::UnknownOpcode(0x3B))
        );
        assert_eq!(
            Pdu::decode(&bhs[..10], Bytes::new()),
            Err(PduError::Truncated)
        );
        // Short header slices surface as Truncated, never a panic.
        for cut in [0, 1, 7, 8, 47] {
            assert_eq!(data_segment_length(&bhs[..cut]), Err(PduError::Truncated));
        }
        assert_eq!(data_segment_length(&bhs), Ok(0));
    }

    #[test]
    fn immediate_flag_survives() {
        let pdu = Pdu::ScsiCommand(ScsiCommand {
            immediate: true,
            final_pdu: true,
            read: false,
            write: true,
            lun: 2,
            itt: 3,
            edtl: 512,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: crate::cdb::Cdb::Write { lba: 0, sectors: 1 }.to_bytes(),
            data: Bytes::from(vec![0u8; 512]),
        });
        let wire = pdu.encode();
        assert_eq!(wire[0] & 0x40, 0x40);
        round_trip(pdu);
    }
}

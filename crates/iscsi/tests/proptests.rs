//! Property-based tests for the iSCSI codec and endpoint machines.

use bytes::Bytes;
use proptest::prelude::*;
use storm_iscsi::{
    Cdb, DataOut, Initiator, InitiatorConfig, InitiatorEvent, NopOut, Pdu, PduStream, ScsiStatus,
    TargetConfig, TargetConn, TargetEvent,
};

fn arbitrary_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        (any::<u32>(), prop::collection::vec(any::<u8>(), 0..300)).prop_map(|(itt, data)| {
            Pdu::NopOut(NopOut {
                itt,
                ttt: 0xFFFF_FFFF,
                cmd_sn: 1,
                exp_stat_sn: 1,
                data: Bytes::from(data),
            })
        }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..600)
        )
            .prop_map(|(itt, ttt, off, data)| {
                Pdu::DataOut(DataOut {
                    final_pdu: true,
                    lun: 0,
                    itt,
                    ttt,
                    exp_stat_sn: 1,
                    data_sn: 0,
                    buffer_offset: off,
                    data: Bytes::from(data),
                })
            }),
    ]
}

proptest! {
    /// Encode → stream-parse round-trips any PDU sequence, regardless of
    /// how the byte stream is fragmented.
    #[test]
    fn stream_round_trip_any_fragmentation(
        pdus in prop::collection::vec(arbitrary_pdu(), 1..6),
        chunk in 1usize..200,
    ) {
        let mut wire = Vec::new();
        for p in &pdus {
            wire.extend(p.encode());
        }
        let mut s = PduStream::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            got.extend(s.feed(piece).unwrap());
        }
        prop_assert_eq!(got, pdus);
        prop_assert_eq!(s.pending_bytes(), 0);
    }

    /// CDB round trip for arbitrary LBAs and lengths.
    #[test]
    fn cdb_round_trip(lba in any::<u64>(), sectors in 1u32..1_000_000) {
        for cdb in [Cdb::Read { lba, sectors }, Cdb::Write { lba, sectors }] {
            prop_assert_eq!(Cdb::parse(&cdb.to_bytes()), Ok(cdb));
        }
    }

    /// Full write/read cycles through initiator+target preserve data for
    /// arbitrary sizes (immediate data, unsolicited bursts and R2T paths)
    /// and arbitrary aligned offsets.
    #[test]
    fn write_read_preserves_data(
        sectors in 1u32..600,       // up to 300 KiB: crosses every burst limit
        lba in 0u64..1000,
        seed in any::<u8>(),
    ) {
        let mut ini = Initiator::new(InitiatorConfig::example());
        let mut tgt = TargetConn::new(TargetConfig::example(1 << 20));
        ini.start_login();
        for _ in 0..4 {
            let _ = tgt.feed(&ini.take_output());
            let _ = ini.feed(&tgt.take_output());
        }
        prop_assert!(ini.is_logged_in());
        let data: Vec<u8> =
            (0..sectors as usize * 512).map(|i| (i as u8).wrapping_mul(seed | 1)).collect();
        let tag = ini.write(lba, Bytes::from(data.clone()));
        // Shuttle with an in-memory disk at the target.
        let mut disk: std::collections::HashMap<u64, [u8; 512]> = Default::default();
        let mut done = false;
        let mut read_back: Option<Bytes> = None;
        let mut rtag = None;
        for _ in 0..128 {
            let out = ini.take_output();
            for ev in tgt.feed(&out) {
                match ev {
                    TargetEvent::WriteReady { itt, lba, data } => {
                        for (i, sector) in data.chunks(512).enumerate() {
                            disk.insert(lba + i as u64, sector.try_into().unwrap());
                        }
                        tgt.complete_write(itt, ScsiStatus::Good);
                    }
                    TargetEvent::ReadReady { itt, lba, sectors } => {
                        let mut buf = Vec::new();
                        for s in 0..sectors as u64 {
                            buf.extend_from_slice(&disk.get(&(lba + s)).copied().unwrap_or([0; 512]));
                        }
                        tgt.complete_read(itt, Bytes::from(buf), ScsiStatus::Good);
                    }
                    _ => {}
                }
            }
            let back = tgt.take_output();
            for ev in ini.feed(&back) {
                match ev {
                    InitiatorEvent::WriteComplete { tag: t, status } if t == tag => {
                        prop_assert_eq!(status, ScsiStatus::Good);
                        rtag = Some(ini.read(lba, sectors));
                    }
                    InitiatorEvent::ReadComplete { tag: t, status, data } if Some(t) == rtag => {
                        prop_assert_eq!(status, ScsiStatus::Good);
                        read_back = Some(data);
                        done = true;
                    }
                    InitiatorEvent::ProtocolError(e) => prop_assert!(false, "protocol error: {e}"),
                    _ => {}
                }
            }
            if done {
                break;
            }
        }
        prop_assert!(done, "I/O did not complete");
        prop_assert_eq!(&read_back.unwrap()[..], &data[..]);
        prop_assert_eq!(ini.in_flight(), 0);
    }
}

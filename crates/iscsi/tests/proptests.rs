//! Property-based tests for the iSCSI codec and endpoint machines.

use bytes::Bytes;
use proptest::prelude::*;
use storm_iscsi::{
    data_segment_length, Cdb, DataIn, DataOut, Initiator, InitiatorConfig, InitiatorEvent,
    LoginRequest, LoginResponse, LogoutRequest, LogoutResponse, NopIn, NopOut, Pdu, PduError,
    PduStream, R2t, ScsiCommand, ScsiResponse, ScsiStatus, TargetConfig, TargetConn, TargetEvent,
    TextRequest, TextResponse, BHS_LEN,
};

/// A data segment deliberately biased toward non-4-byte-aligned lengths,
/// so padding paths get exercised on every run.
fn seg() -> impl Strategy<Value = Bytes> {
    prop::collection::vec(any::<u8>(), 0..259).prop_map(Bytes::from)
}

fn isid() -> impl Strategy<Value = [u8; 6]> {
    any::<u64>().prop_map(|v| v.to_be_bytes()[2..8].try_into().expect("6 bytes"))
}

fn cdb16() -> impl Strategy<Value = [u8; 16]> {
    (any::<u64>(), any::<u64>()).prop_map(|(a, b)| {
        let mut c = [0u8; 16];
        c[..8].copy_from_slice(&a.to_be_bytes());
        c[8..].copy_from_slice(&b.to_be_bytes());
        c
    })
}

fn arbitrary_status() -> impl Strategy<Value = ScsiStatus> {
    prop_oneof![
        Just(ScsiStatus::Good),
        Just(ScsiStatus::CheckCondition),
        Just(ScsiStatus::Busy),
    ]
}

/// Every one of the 13 PDU variants, fields fully randomized.
fn any_variant() -> impl Strategy<Value = Pdu> {
    let login_req =
        (any::<u32>(), isid(), any::<u16>(), seg()).prop_map(|(itt, isid, tsih, data)| {
            Pdu::LoginRequest(LoginRequest {
                transit: true,
                csg: 1,
                nsg: 3,
                isid,
                tsih,
                itt,
                cid: 0,
                cmd_sn: 1,
                exp_stat_sn: 1,
                data,
            })
        });
    let login_resp =
        (any::<u32>(), isid(), any::<u8>(), seg()).prop_map(|(itt, isid, detail, data)| {
            Pdu::LoginResponse(LoginResponse {
                transit: true,
                csg: 1,
                nsg: 3,
                isid,
                tsih: 1,
                itt,
                stat_sn: 1,
                exp_cmd_sn: 2,
                max_cmd_sn: 34,
                status_class: 0,
                status_detail: detail,
                data,
            })
        });
    let cmd = (any::<u32>(), any::<u64>(), cdb16(), seg()).prop_map(|(itt, lun, cdb, data)| {
        Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: true,
            lun,
            itt,
            edtl: data.len() as u32,
            cmd_sn: 7,
            exp_stat_sn: 3,
            cdb,
            data,
        })
    });
    let resp = (any::<u32>(), any::<u32>(), arbitrary_status(), seg()).prop_map(
        |(itt, residual, status, data)| {
            Pdu::ScsiResponse(ScsiResponse {
                itt,
                response: 0,
                status,
                stat_sn: 9,
                exp_cmd_sn: 10,
                max_cmd_sn: 42,
                residual,
                data,
            })
        },
    );
    let data_out =
        (any::<u32>(), any::<u32>(), any::<u32>(), seg()).prop_map(|(itt, ttt, off, data)| {
            Pdu::DataOut(DataOut {
                final_pdu: true,
                lun: 1,
                itt,
                ttt,
                exp_stat_sn: 1,
                data_sn: 0,
                buffer_offset: off,
                data,
            })
        });
    let data_in = (any::<u32>(), any::<u32>(), arbitrary_status(), seg()).prop_map(
        |(itt, off, status, data)| {
            Pdu::DataIn(DataIn {
                final_pdu: true,
                status_present: true,
                status,
                lun: 1,
                itt,
                ttt: 0xFFFF_FFFF,
                stat_sn: 4,
                exp_cmd_sn: 5,
                max_cmd_sn: 36,
                data_sn: 2,
                buffer_offset: off,
                residual: 0,
                data,
            })
        },
    );
    let r2t = (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()).prop_map(
        |(itt, ttt, off, want)| {
            Pdu::R2t(R2t {
                lun: 0,
                itt,
                ttt,
                stat_sn: 1,
                exp_cmd_sn: 2,
                max_cmd_sn: 33,
                r2t_sn: 0,
                buffer_offset: off,
                desired_length: want,
            })
        },
    );
    let nop_out = (any::<u32>(), any::<u32>(), seg()).prop_map(|(itt, ttt, data)| {
        Pdu::NopOut(NopOut {
            itt,
            ttt,
            cmd_sn: 1,
            exp_stat_sn: 1,
            data,
        })
    });
    let nop_in = (any::<u32>(), any::<u32>(), seg()).prop_map(|(itt, ttt, data)| {
        Pdu::NopIn(NopIn {
            itt,
            ttt,
            stat_sn: 1,
            exp_cmd_sn: 2,
            max_cmd_sn: 33,
            data,
        })
    });
    let text_req = (any::<u32>(), any::<u32>(), seg()).prop_map(|(itt, ttt, data)| {
        Pdu::TextRequest(TextRequest {
            final_pdu: true,
            itt,
            ttt,
            cmd_sn: 1,
            exp_stat_sn: 1,
            data,
        })
    });
    let text_resp = (any::<u32>(), any::<u32>(), seg()).prop_map(|(itt, ttt, data)| {
        Pdu::TextResponse(TextResponse {
            final_pdu: true,
            itt,
            ttt,
            stat_sn: 1,
            exp_cmd_sn: 2,
            max_cmd_sn: 33,
            data,
        })
    });
    // The wire shares byte 1 between the reason code and the mandatory
    // final bit, so only 7 bits of the reason survive a round trip.
    let logout_req = (any::<u32>(), any::<u16>(), 0u8..0x80).prop_map(|(itt, cid, reason)| {
        Pdu::LogoutRequest(LogoutRequest {
            reason,
            itt,
            cid,
            cmd_sn: 1,
            exp_stat_sn: 1,
        })
    });
    let logout_resp = (any::<u32>(), any::<u8>()).prop_map(|(itt, response)| {
        Pdu::LogoutResponse(LogoutResponse {
            response,
            itt,
            stat_sn: 1,
            exp_cmd_sn: 2,
            max_cmd_sn: 33,
        })
    });
    prop_oneof![
        login_req,
        login_resp,
        cmd,
        resp,
        data_out,
        data_in,
        r2t,
        nop_out,
        nop_in,
        text_req,
        text_resp,
        logout_req,
        logout_resp,
    ]
}

fn arbitrary_pdu() -> impl Strategy<Value = Pdu> {
    prop_oneof![
        (any::<u32>(), prop::collection::vec(any::<u8>(), 0..300)).prop_map(|(itt, data)| {
            Pdu::NopOut(NopOut {
                itt,
                ttt: 0xFFFF_FFFF,
                cmd_sn: 1,
                exp_stat_sn: 1,
                data: Bytes::from(data),
            })
        }),
        (
            any::<u32>(),
            any::<u32>(),
            any::<u32>(),
            prop::collection::vec(any::<u8>(), 0..600)
        )
            .prop_map(|(itt, ttt, off, data)| {
                Pdu::DataOut(DataOut {
                    final_pdu: true,
                    lun: 0,
                    itt,
                    ttt,
                    exp_stat_sn: 1,
                    data_sn: 0,
                    buffer_offset: off,
                    data: Bytes::from(data),
                })
            }),
    ]
}

proptest! {
    /// Encode → stream-parse round-trips any PDU sequence, regardless of
    /// how the byte stream is fragmented.
    #[test]
    fn stream_round_trip_any_fragmentation(
        pdus in prop::collection::vec(arbitrary_pdu(), 1..6),
        chunk in 1usize..200,
    ) {
        let mut wire = Vec::new();
        for p in &pdus {
            wire.extend(p.encode());
        }
        let mut s = PduStream::new();
        let mut got = Vec::new();
        for piece in wire.chunks(chunk) {
            got.extend(s.feed(piece).unwrap());
        }
        prop_assert_eq!(got, pdus);
        prop_assert_eq!(s.pending_bytes(), 0);
    }

    /// CDB round trip for arbitrary LBAs and lengths.
    #[test]
    fn cdb_round_trip(lba in any::<u64>(), sectors in 1u32..1_000_000) {
        for cdb in [Cdb::Read { lba, sectors }, Cdb::Write { lba, sectors }] {
            prop_assert_eq!(Cdb::parse(&cdb.to_bytes()), Ok(cdb));
        }
    }

    /// Full write/read cycles through initiator+target preserve data for
    /// arbitrary sizes (immediate data, unsolicited bursts and R2T paths)
    /// and arbitrary aligned offsets.
    #[test]
    fn write_read_preserves_data(
        sectors in 1u32..600,       // up to 300 KiB: crosses every burst limit
        lba in 0u64..1000,
        seed in any::<u8>(),
    ) {
        let mut ini = Initiator::new(InitiatorConfig::example());
        let mut tgt = TargetConn::new(TargetConfig::example(1 << 20));
        ini.start_login();
        for _ in 0..4 {
            let _ = tgt.feed(&ini.take_output());
            let _ = ini.feed(&tgt.take_output());
        }
        prop_assert!(ini.is_logged_in());
        let data: Vec<u8> =
            (0..sectors as usize * 512).map(|i| (i as u8).wrapping_mul(seed | 1)).collect();
        let tag = ini.write(lba, Bytes::from(data.clone()));
        // Shuttle with an in-memory disk at the target.
        let mut disk: std::collections::HashMap<u64, [u8; 512]> = Default::default();
        let mut done = false;
        let mut read_back: Option<Bytes> = None;
        let mut rtag = None;
        for _ in 0..128 {
            let out = ini.take_output();
            for ev in tgt.feed(&out) {
                match ev {
                    TargetEvent::WriteReady { itt, lba, data } => {
                        for (i, sector) in data.chunks(512).enumerate() {
                            disk.insert(lba + i as u64, sector.try_into().unwrap());
                        }
                        tgt.complete_write(itt, ScsiStatus::Good);
                    }
                    TargetEvent::ReadReady { itt, lba, sectors } => {
                        let mut buf = Vec::new();
                        for s in 0..sectors as u64 {
                            buf.extend_from_slice(&disk.get(&(lba + s)).copied().unwrap_or([0; 512]));
                        }
                        tgt.complete_read(itt, Bytes::from(buf), ScsiStatus::Good);
                    }
                    _ => {}
                }
            }
            let back = tgt.take_output();
            for ev in ini.feed(&back) {
                match ev {
                    InitiatorEvent::WriteComplete { tag: t, status } if t == tag => {
                        prop_assert_eq!(status, ScsiStatus::Good);
                        rtag = Some(ini.read(lba, sectors));
                    }
                    InitiatorEvent::ReadComplete { tag: t, status, data } if Some(t) == rtag => {
                        prop_assert_eq!(status, ScsiStatus::Good);
                        read_back = Some(data);
                        done = true;
                    }
                    InitiatorEvent::ProtocolError(e) => prop_assert!(false, "protocol error: {e}"),
                    _ => {}
                }
            }
            if done {
                break;
            }
        }
        prop_assert!(done, "I/O did not complete");
        prop_assert_eq!(&read_back.unwrap()[..], &data[..]);
        prop_assert_eq!(ini.in_flight(), 0);
    }
}

mod zero_copy {
    use super::*;

    proptest! {
        /// All three encoders — `encode`, `encode_into`, and the zero-copy
        /// `wire_chunks` scatter-gather view — must produce identical wire
        /// bytes for every PDU variant, including non-4-byte-aligned data
        /// segments, and the chunked view must share (not copy) the data.
        #[test]
        fn zero_copy_encoders_match_legacy(pdu in any_variant()) {
            let legacy = pdu.encode();
            prop_assert_eq!(legacy.len() % 4, 0, "wire image must be padded");
            prop_assert_eq!(legacy.len(), pdu.wire_len());

            let mut buf = bytes::BytesMut::new();
            pdu.encode_into(&mut buf);
            prop_assert_eq!(&buf.to_vec(), &legacy);

            let w = pdu.wire_chunks();
            prop_assert_eq!(w.wire_len(), legacy.len());
            prop_assert_eq!(&w.to_vec(), &legacy);
            prop_assert_eq!(&w.header[..], &legacy[..BHS_LEN]);
            prop_assert!(w.pad.len() < 4);
            prop_assert!(w.pad.iter().all(|&b| b == 0));
            if !pdu.data().is_empty() {
                prop_assert!(
                    w.data.same_storage(pdu.data()),
                    "data chunk must share the PDU's storage, not copy it"
                );
            }
            // The header carries the real (unpadded) data-segment length.
            prop_assert_eq!(data_segment_length(&w.header).unwrap(), pdu.data().len());

            // And the stream decodes it all back to the same PDU.
            let mut s = PduStream::new();
            let got = s.feed(&legacy).unwrap();
            prop_assert_eq!(got, vec![pdu]);
        }

        /// `data_segment_length` rejects every truncated header instead of
        /// panicking — short reassembly buffers must surface as protocol
        /// errors in the relay hot path.
        #[test]
        fn truncated_headers_are_rejected(len in 0usize..BHS_LEN, fill in any::<u8>()) {
            let short = vec![fill; len];
            prop_assert_eq!(data_segment_length(&short), Err(PduError::Truncated));
        }

        /// Feeding arbitrary garbage to the stream never panics: it either
        /// parses, waits for more bytes, or reports a decode error.
        #[test]
        fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
            let mut s = PduStream::new();
            match s.feed(&bytes) {
                Ok(pdus) => {
                    // Whatever parsed must re-encode to a prefix of the input.
                    let mut wire = Vec::new();
                    for p in &pdus {
                        wire.extend(p.encode());
                    }
                    prop_assert_eq!(&bytes[..wire.len()], &wire[..]);
                }
                Err(PduError::UnknownOpcode(_)) | Err(PduError::Truncated) => {}
                // Internal accounting desync must never be reachable from
                // the outside, whatever the input.
                Err(e @ PduError::Desync) => prop_assert!(false, "{e}"),
            }
        }
    }
}

//! Network splicing: storage gateways, NAT and steering.
//!
//! The storage and instance networks are isolated by design; StorM splices
//! them with a pair of storage gateways per steered volume: the *ingress*
//! gateway selectively lifts storage flows into the tenant's instance
//! network (where the SDN chain threads them through middle-boxes) and the
//! *egress* gateway drops them back onto the storage network towards the
//! target. IP masquerading at both gateways keeps storage-network
//! addresses invisible inside the instance network (paper §III-A).

use std::net::Ipv4Addr;

use storm_cloud::{Cloud, GuestVm};
use storm_iscsi::ISCSI_PORT;
use storm_net::{DnatRule, SnatRule, SockAddr, SteerRule};
use storm_sim::SimDuration;

/// An ingress/egress storage-gateway pair inside one tenant's network.
#[derive(Debug, Clone, Copy)]
pub struct GatewayPair {
    /// The ingress gateway (storage → instance network).
    pub ingress: GuestVm,
    /// The egress gateway (instance → storage network).
    pub egress: GuestVm,
    /// Owning tenant.
    pub tenant: u32,
}

impl GatewayPair {
    /// The ingress gateway's storage-network address (the steering
    /// next-hop for compute hosts).
    pub fn ingress_storage_ip(&self) -> Ipv4Addr {
        self.ingress
            .storage_ip
            .expect("ingress gateway has a storage leg")
    }

    /// The egress gateway's instance-network endpoint for iSCSI, as the
    /// middle-boxes see it.
    pub fn egress_instance_portal(&self) -> SockAddr {
        SockAddr::new(self.egress.instance_ip, ISCSI_PORT)
    }
}

/// Creates a gateway pair on the given compute hosts and enables IP
/// forwarding on both. Gateways are namespaces (veth-attached), not VMs.
pub fn create_gateway_pair(
    cloud: &mut Cloud,
    tenant: u32,
    ingress_host: usize,
    egress_host: usize,
    forward_cost: SimDuration,
) -> GatewayPair {
    let ingress = cloud.spawn_guest(
        &format!("gw-in-t{tenant}"),
        ingress_host,
        tenant,
        true,
        true,
    );
    let egress = cloud.spawn_guest(
        &format!("gw-out-t{tenant}"),
        egress_host,
        tenant,
        true,
        true,
    );
    cloud.net.enable_forwarding(ingress.node, forward_cost);
    cloud.net.enable_forwarding(egress.node, forward_cost);
    GatewayPair {
        ingress,
        egress,
        tenant,
    }
}

/// Installs the per-volume NAT rules of the paper's Figure 3 on both
/// gateways:
///
/// * ingress: `DNAT dst -> egress_instance:3260`, `SNAT src ->
///   ingress_instance` (masquerade),
/// * egress: `DNAT dst -> target:3260`, `SNAT src -> egress_storage`.
pub fn install_gateway_nat(cloud: &mut Cloud, pair: &GatewayPair, target: SockAddr) {
    let egress_portal = pair.egress_instance_portal();
    // Ingress gateway.
    cloud.net.add_dnat(
        pair.ingress.node,
        DnatRule {
            match_dst_ip: target.ip,
            match_dst_port: Some(target.port),
            match_src_ip: None,
            to: egress_portal,
        },
    );
    cloud.net.add_snat(
        pair.ingress.node,
        SnatRule {
            match_dst_ip: Some(egress_portal.ip),
            match_dst_port: Some(egress_portal.port),
            to_ip: pair.ingress.instance_ip,
            to_port: None,
        },
    );
    // Egress gateway.
    cloud.net.add_dnat(
        pair.egress.node,
        DnatRule {
            match_dst_ip: egress_portal.ip,
            match_dst_port: Some(egress_portal.port),
            match_src_ip: None,
            to: target,
        },
    );
    cloud.net.add_snat(
        pair.egress.node,
        SnatRule {
            match_dst_ip: Some(target.ip),
            match_dst_port: Some(target.port),
            to_ip: pair
                .egress
                .storage_ip
                .expect("egress gateway has a storage leg"),
            to_port: None,
        },
    );
}

/// Builds the compute-host steering rule that diverts a target portal's
/// flows to the ingress gateway. Installed only for the duration of the
/// paper's atomic volume attachment; per-flow pinning keeps established
/// sessions steered after removal.
pub fn steering_rule_for(
    cloud: &Cloud,
    compute_idx: usize,
    pair: &GatewayPair,
    target: SockAddr,
) -> SteerRule {
    SteerRule {
        match_dst_ip: target.ip,
        match_dst_port: Some(target.port),
        match_src_port: None,
        via: pair.ingress_storage_ip(),
        iface: cloud.computes[compute_idx].storage_iface,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_cloud::CloudConfig;

    #[test]
    fn gateway_pair_has_both_legs_and_forwards() {
        let mut cloud = Cloud::build(CloudConfig::default());
        let pair = create_gateway_pair(&mut cloud, 1, 1, 2, SimDuration::from_micros(1));
        assert!(pair.ingress.storage_ip.is_some());
        assert!(pair.egress.storage_ip.is_some());
        assert!(cloud.net.host(pair.ingress.node).ip_forward);
        assert!(cloud.net.host(pair.egress.node).ip_forward);
        assert_eq!(pair.egress_instance_portal().port, ISCSI_PORT);
        assert_ne!(pair.ingress_storage_ip(), pair.egress.storage_ip.unwrap());
    }

    #[test]
    fn nat_rules_land_on_the_right_gateways() {
        let mut cloud = Cloud::build(CloudConfig::default());
        let pair = create_gateway_pair(&mut cloud, 1, 1, 2, SimDuration::from_micros(1));
        let target = SockAddr::new(cloud.storages[0].storage_ip, ISCSI_PORT);
        install_gateway_nat(&mut cloud, &pair, target);
        assert_eq!(cloud.net.host(pair.ingress.node).nat.rule_counts(), (1, 1));
        assert_eq!(cloud.net.host(pair.egress.node).nat.rule_counts(), (1, 1));
    }

    #[test]
    fn steering_rule_points_at_ingress_gateway() {
        let mut cloud = Cloud::build(CloudConfig::default());
        let pair = create_gateway_pair(&mut cloud, 1, 1, 2, SimDuration::from_micros(1));
        let target = SockAddr::new(cloud.storages[0].storage_ip, ISCSI_PORT);
        let rule = steering_rule_for(&cloud, 0, &pair, target);
        assert_eq!(rule.via, pair.ingress_storage_ip());
        assert_eq!(rule.match_dst_ip, target.ip);
        assert_eq!(rule.match_dst_port, Some(ISCSI_PORT));
        assert_eq!(rule.match_src_port, None);
    }
}

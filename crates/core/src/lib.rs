//! StorM: the tenant-defined storage middle-box platform (the paper's
//! contribution).
//!
//! StorM lets each tenant run its own storage security/reliability
//! services in virtualized middle-boxes between its VMs and the cloud's
//! block storage. This crate implements the platform's three pillars:
//!
//! * **Network splicing** ([`splice`], [`platform`]) — storage-gateway
//!   pairs bridge the isolated storage and instance networks; NAT
//!   masquerading keeps storage addresses invisible; steering rules with
//!   per-flow pinning implement the paper's *atomic attachment* so only
//!   the intended volume's flows divert; the SDN controller
//!   ([`storm_cloud::sdn`]) threads flows through middle-box chains.
//! * **An efficient interception API** ([`relay`]) — the *passive relay*
//!   hooks forwarded packets (one kernel→user copy per packet) while the
//!   *active relay* terminates TCP at the middle-box (split connections,
//!   immediate acknowledgement, bounded persistence buffer with
//!   backpressure) so service processing leaves the ack path.
//! * **Semantics reconstruction** ([`semantics`]) — rebuilds file-level
//!   operations (Tables I–III) from raw block traffic using the
//!   dumpe2fs-style [`storm_extfs::FsView`] plus live parsing of inode
//!   table, directory and indirect-block writes.
//!
//! Tenant intent enters through [`policy`] documents; [`service`] defines
//! the `StorageService` API tenant middle-box logic implements
//! (monitoring, encryption and replication live in `storm-services`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod platform;
pub mod policy;
pub mod relay;
pub mod semantics;
pub mod service;
pub mod splice;

pub use platform::{ChainDeployment, MbSpec, RelayMode, StormPlatform};
pub use policy::{ServiceSpec, TenantPolicy, VolumePolicy};
pub use relay::{
    ActiveRelayConfig, ActiveRelayMb, MbControl, PassiveTap, PassiveTapConfig, RelayCopyStats,
    RelayQosConfig, RetryPolicy,
};
pub use semantics::{FsAccess, FsOp, FsTargetKind, Reconstructor};
pub use service::{Dir, ReplicaIo, StorageService, SvcAction, SvcCtx};
pub use splice::GatewayPair;

//! Tenant policy documents (paper §III-D).
//!
//! "The following policies must be specified by tenants prior to using
//! middle-boxes: (1) which VMs and their associated volumes will use the
//! middle-box services, (2) the middle-boxes' storage service types and
//! virtual resources, and (3) the organization of these middle-boxes."
//!
//! Policies are plain data (serde-serializable) submitted to the provider;
//! the platform validates them and maps each [`ServiceSpec`] to a concrete
//! middle-box deployment.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The interception mode requested for a service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
#[serde(rename_all = "snake_case")]
pub enum RelayModeSpec {
    /// Split-TCP store-and-forward (default; lowest overhead).
    #[default]
    Active,
    /// In-path per-packet hook (stream transforms only).
    Passive,
    /// No interception (measurement baseline).
    Forward,
}

/// One middle-box service in a chain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceSpec {
    /// Service type: `"monitor"`, `"encryption"`, `"replication"` (or a
    /// tenant-custom name).
    pub kind: String,
    /// Interception mode.
    #[serde(default)]
    pub mode: RelayModeSpec,
    /// Requested vCPUs for the middle-box VM.
    #[serde(default = "default_vcpus")]
    pub vcpus: u32,
    /// Requested memory in MiB.
    #[serde(default = "default_memory")]
    pub memory_mb: u32,
    /// Free-form service parameters (watch lists, cipher ids, replica
    /// counts…).
    #[serde(default)]
    pub params: BTreeMap<String, String>,
}

fn default_vcpus() -> u32 {
    2
}
fn default_memory() -> u32 {
    4096
}

impl ServiceSpec {
    /// A service spec with defaults.
    pub fn new(kind: impl Into<String>) -> Self {
        ServiceSpec {
            kind: kind.into(),
            mode: RelayModeSpec::Active,
            vcpus: default_vcpus(),
            memory_mb: default_memory(),
            params: BTreeMap::new(),
        }
    }

    /// Adds a parameter.
    pub fn param(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }
}

/// Services requested for one VM/volume pair, in chain order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VolumePolicy {
    /// The tenant VM this applies to.
    pub vm: String,
    /// Volume size in GiB.
    pub volume_gb: u32,
    /// Chain of services, applied in order on the write path.
    pub services: Vec<ServiceSpec>,
}

/// A tenant's full policy document.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantPolicy {
    /// Tenant identifier.
    pub tenant: u32,
    /// Per-volume service chains.
    pub volumes: Vec<VolumePolicy>,
}

/// Service kinds the bundled implementations understand.
pub const KNOWN_KINDS: &[&str] = &["monitor", "encryption", "replication", "passthrough"];

/// Policy validation failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PolicyError {
    /// A volume entry requests no services.
    EmptyChain {
        /// Offending VM name.
        vm: String,
    },
    /// The service kind is not a known bundled service.
    UnknownKind {
        /// Offending kind.
        kind: String,
    },
    /// Passive mode cannot host buffering services.
    PassiveBuffering {
        /// Offending kind.
        kind: String,
    },
    /// A volume size of zero.
    ZeroVolume {
        /// Offending VM name.
        vm: String,
    },
}

impl std::fmt::Display for PolicyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolicyError::EmptyChain { vm } => write!(f, "vm {vm}: empty service chain"),
            PolicyError::UnknownKind { kind } => write!(f, "unknown service kind {kind}"),
            PolicyError::PassiveBuffering { kind } => {
                write!(f, "service {kind} requires the active relay")
            }
            PolicyError::ZeroVolume { vm } => write!(f, "vm {vm}: zero-sized volume"),
        }
    }
}

impl std::error::Error for PolicyError {}

impl TenantPolicy {
    /// Validates the document against the bundled service catalogue.
    ///
    /// # Errors
    ///
    /// The first [`PolicyError`] found.
    pub fn validate(&self) -> Result<(), PolicyError> {
        for v in &self.volumes {
            if v.services.is_empty() {
                return Err(PolicyError::EmptyChain { vm: v.vm.clone() });
            }
            if v.volume_gb == 0 {
                return Err(PolicyError::ZeroVolume { vm: v.vm.clone() });
            }
            for s in &v.services {
                if !KNOWN_KINDS.contains(&s.kind.as_str()) {
                    return Err(PolicyError::UnknownKind {
                        kind: s.kind.clone(),
                    });
                }
                // Monitoring and replication must see whole PDUs; only
                // stream transforms fit the passive path.
                if s.mode == RelayModeSpec::Passive
                    && (s.kind == "monitor" || s.kind == "replication")
                {
                    return Err(PolicyError::PassiveBuffering {
                        kind: s.kind.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TenantPolicy {
        TenantPolicy {
            tenant: 7,
            volumes: vec![VolumePolicy {
                vm: "web-1".into(),
                volume_gb: 20,
                services: vec![
                    ServiceSpec::new("monitor").param("watch", "/mnt/box/secrets"),
                    ServiceSpec::new("encryption").param("cipher", "aes-256-xts"),
                ],
            }],
        }
    }

    #[test]
    fn valid_policy_passes() {
        assert_eq!(sample().validate(), Ok(()));
    }

    #[test]
    fn empty_chain_rejected() {
        let mut p = sample();
        p.volumes[0].services.clear();
        assert!(matches!(p.validate(), Err(PolicyError::EmptyChain { .. })));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut p = sample();
        p.volumes[0].services[0].kind = "quantum-dedupe".into();
        assert!(matches!(p.validate(), Err(PolicyError::UnknownKind { .. })));
    }

    #[test]
    fn passive_monitor_rejected() {
        let mut p = sample();
        p.volumes[0].services[0].mode = RelayModeSpec::Passive;
        assert!(matches!(
            p.validate(),
            Err(PolicyError::PassiveBuffering { .. })
        ));
        // Passive encryption (stream cipher) is fine.
        let mut p2 = sample();
        p2.volumes[0].services[1].mode = RelayModeSpec::Passive;
        assert_eq!(p2.validate(), Ok(()));
    }

    #[test]
    fn zero_volume_rejected() {
        let mut p = sample();
        p.volumes[0].volume_gb = 0;
        assert!(matches!(p.validate(), Err(PolicyError::ZeroVolume { .. })));
    }

    #[test]
    fn builder_and_defaults() {
        let s = ServiceSpec::new("replication").param("replicas", "3");
        assert_eq!(s.vcpus, 2);
        assert_eq!(s.memory_mb, 4096);
        assert_eq!(s.mode, RelayModeSpec::Active);
        assert_eq!(s.params["replicas"], "3");
    }
}

//! The tenant-facing storage service API.
//!
//! A [`StorageService`] is the tenant's middle-box logic. StorM's relays
//! feed it parsed iSCSI PDUs (active path) or in-flight data-segment bytes
//! (passive path) and execute the actions it emits: forwarding, replying,
//! issuing side I/O to replica volumes, raising alerts. Services are pure
//! state machines — all timing flows through the relay — so the same
//! implementation runs in the simulator and in a threaded pipeline.

use bytes::Bytes;

use storm_iscsi::Pdu;
use storm_sim::{SimDuration, SimTime};

/// Direction of travel through the middle-box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// From the tenant VM towards the storage server.
    ToTarget,
    /// From the storage server back to the tenant VM.
    ToInitiator,
}

impl Dir {
    /// The opposite direction.
    pub fn flip(self) -> Dir {
        match self {
            Dir::ToTarget => Dir::ToInitiator,
            Dir::ToInitiator => Dir::ToTarget,
        }
    }
}

/// Side I/O issued by a service against a replica volume attached to the
/// middle-box.
#[derive(Debug, Clone)]
pub enum ReplicaIo {
    /// Write `data` at sector `lba`.
    Write {
        /// First sector.
        lba: u64,
        /// Payload (whole sectors).
        data: Bytes,
    },
    /// Read `sectors` sectors at `lba`.
    Read {
        /// First sector.
        lba: u64,
        /// Sector count.
        sectors: u32,
    },
}

/// An action emitted by a service.
#[derive(Debug)]
pub enum SvcAction {
    /// Pass a PDU onward in its direction of travel.
    Forward(Pdu),
    /// Send a PDU back towards where the triggering PDU came from.
    Reply(Pdu),
    /// Issue I/O on replica session `replica`; completion arrives via
    /// [`StorageService::on_replica_done`] carrying `ctx`.
    Replica {
        /// Index of the replica session (deployment order).
        replica: usize,
        /// The operation.
        io: ReplicaIo,
        /// Opaque completion context.
        ctx: u64,
    },
    /// Raise a tenant-visible alert.
    Alert(String),
    /// Charge middle-box CPU time (service processing cost).
    Charge(SimDuration),
    /// Request a timer callback.
    Timer {
        /// Delay until the callback.
        delay: SimDuration,
        /// Token passed back.
        token: u64,
    },
}

/// Action collector handed to service callbacks.
#[derive(Debug)]
pub struct SvcCtx {
    /// Current simulation time.
    pub now: SimTime,
    actions: Vec<SvcAction>,
}

impl SvcCtx {
    /// Creates a collector at `now`.
    pub fn new(now: SimTime) -> Self {
        SvcCtx {
            now,
            actions: Vec::new(),
        }
    }

    /// Takes the accumulated actions.
    pub fn take_actions(&mut self) -> Vec<SvcAction> {
        std::mem::take(&mut self.actions)
    }

    /// Forwards a PDU onward.
    pub fn forward(&mut self, pdu: Pdu) {
        self.actions.push(SvcAction::Forward(pdu));
    }

    /// Replies back towards the source.
    pub fn reply(&mut self, pdu: Pdu) {
        self.actions.push(SvcAction::Reply(pdu));
    }

    /// Issues a replica write.
    pub fn replica_write(&mut self, replica: usize, lba: u64, data: Bytes, ctx: u64) {
        self.actions.push(SvcAction::Replica {
            replica,
            io: ReplicaIo::Write { lba, data },
            ctx,
        });
    }

    /// Issues a replica read.
    pub fn replica_read(&mut self, replica: usize, lba: u64, sectors: u32, ctx: u64) {
        self.actions.push(SvcAction::Replica {
            replica,
            io: ReplicaIo::Read { lba, sectors },
            ctx,
        });
    }

    /// Raises an alert.
    pub fn alert(&mut self, msg: impl Into<String>) {
        self.actions.push(SvcAction::Alert(msg.into()));
    }

    /// Charges processing CPU time.
    pub fn charge(&mut self, cost: SimDuration) {
        self.actions.push(SvcAction::Charge(cost));
    }

    /// Requests a timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(SvcAction::Timer { delay, token });
    }
}

/// A tenant-defined storage middle-box service.
///
/// Implementations must forward PDUs they do not consume — a service that
/// swallows PDUs breaks the session (intentionally possible: that is what
/// an IPS-style service would do).
///
/// `StorageService: Any` so harnesses can downcast deployed services (via
/// [`downcast_ref`]) to read logs and counters after a run.
///
/// [`downcast_ref`]: trait@StorageService#method.downcast_ref
#[allow(unused_variables)]
pub trait StorageService: std::any::Any {
    /// Service name (logging, policy matching).
    fn name(&self) -> &str;

    /// Active path: a whole PDU travelling in `dir`.
    fn on_pdu(&mut self, cx: &mut SvcCtx, dir: Dir, pdu: Pdu);

    /// Completion of a [`SvcCtx::replica_write`] / [`SvcCtx::replica_read`].
    fn on_replica_done(
        &mut self,
        cx: &mut SvcCtx,
        replica: usize,
        ctx: u64,
        ok: bool,
        data: Bytes,
    ) {
    }

    /// A replica session failed (connection reset/refused).
    fn on_replica_failed(&mut self, cx: &mut SvcCtx, replica: usize) {}

    /// A timer requested via [`SvcCtx::set_timer`] fired.
    fn on_timer(&mut self, cx: &mut SvcCtx, token: u64) {}

    /// Passive path: the per-byte processing cost this service adds to
    /// forwarded packets.
    fn per_byte_cost(&self) -> SimDuration {
        SimDuration::ZERO
    }

    /// Passive path: transform in-flight data-segment bytes in place.
    /// `vol_offset` is the absolute byte offset on the volume, so
    /// position-keyed stream ciphers work across arbitrary packetization.
    fn transform(&mut self, dir: Dir, vol_offset: u64, data: &mut [u8]) {}
}

impl dyn StorageService {
    /// Downcasts to a concrete service type.
    pub fn downcast_ref<T: StorageService>(&self) -> Option<&T> {
        let any: &dyn std::any::Any = self;
        any.downcast_ref()
    }

    /// Downcasts to a concrete service type (mutable).
    pub fn downcast_mut<T: StorageService>(&mut self) -> Option<&mut T> {
        let any: &mut dyn std::any::Any = self;
        any.downcast_mut()
    }
}

/// A service that forwards everything untouched; useful as a chain
/// placeholder and in tests.
#[derive(Debug, Default)]
pub struct PassthroughService {
    pdus: u64,
}

impl PassthroughService {
    /// Creates the service.
    pub fn new() -> Self {
        Self::default()
    }

    /// PDUs seen.
    pub fn pdus(&self) -> u64 {
        self.pdus
    }
}

impl StorageService for PassthroughService {
    fn name(&self) -> &str {
        "passthrough"
    }

    fn on_pdu(&mut self, cx: &mut SvcCtx, _dir: Dir, pdu: Pdu) {
        self.pdus += 1;
        cx.forward(pdu);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_iscsi::NopOut;

    fn nop() -> Pdu {
        Pdu::NopOut(NopOut {
            itt: 1,
            ttt: 0xFFFF_FFFF,
            cmd_sn: 1,
            exp_stat_sn: 1,
            data: Bytes::new(),
        })
    }

    #[test]
    fn dir_flips() {
        assert_eq!(Dir::ToTarget.flip(), Dir::ToInitiator);
        assert_eq!(Dir::ToInitiator.flip(), Dir::ToTarget);
    }

    #[test]
    fn ctx_collects_actions_in_order() {
        let mut cx = SvcCtx::new(SimTime::ZERO);
        cx.charge(SimDuration::from_micros(5));
        cx.forward(nop());
        cx.alert("suspicious");
        cx.replica_write(1, 100, Bytes::from_static(&[0u8; 512]), 7);
        cx.set_timer(SimDuration::from_millis(1), 9);
        let actions = cx.take_actions();
        assert_eq!(actions.len(), 5);
        assert!(matches!(actions[0], SvcAction::Charge(_)));
        assert!(matches!(actions[1], SvcAction::Forward(_)));
        assert!(matches!(actions[2], SvcAction::Alert(ref m) if m == "suspicious"));
        assert!(matches!(
            actions[3],
            SvcAction::Replica {
                replica: 1,
                ctx: 7,
                io: ReplicaIo::Write { lba: 100, .. }
            }
        ));
        assert!(matches!(actions[4], SvcAction::Timer { token: 9, .. }));
        assert!(cx.take_actions().is_empty());
    }

    #[test]
    fn passthrough_forwards() {
        let mut svc = PassthroughService::new();
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_pdu(&mut cx, Dir::ToTarget, nop());
        assert_eq!(svc.pdus(), 1);
        let actions = cx.take_actions();
        assert!(matches!(&actions[..], [SvcAction::Forward(_)]));
        assert_eq!(svc.per_byte_cost(), SimDuration::ZERO);
        assert_eq!(svc.name(), "passthrough");
    }
}

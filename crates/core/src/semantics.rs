//! Semantics reconstruction: raw block accesses → file-level operations.
//!
//! Middle-boxes only see "disk sectors, raw data blocks, and inodes
//! information" (paper §III-C); monitoring and replication policies speak
//! files and directories. The [`Reconstructor`] bridges that gap:
//!
//! 1. **Attach time** — a [`FsView`] (dumpe2fs equivalent) fixes the
//!    metadata geometry, and a walk from the root inode builds the initial
//!    inode→path and block→owner maps.
//! 2. **Run time** — every intercepted write is classified; inode-table
//!    writes update sizes and block pointers, directory-block writes bind
//!    names, indirect-block writes extend block ownership. The maps live
//!    in hash tables "for fast searching" exactly as §IV describes.
//! 3. **Query** — each I/O yields [`FsAccess`] rows (the paper's Table I)
//!    and higher-level [`FsEvent`]s (create/unlink) for the monitor's
//!    analysis phase.

use std::collections::{BTreeMap, HashMap};

use storm_block::BlockDevice;
use storm_extfs::{
    parse_dirents, FileType, FsView, Inode, Region, BLOCK_SIZE, INODE_SIZE, ROOT_INO,
    SECTORS_PER_BLOCK,
};

/// Read or write, as carried by the SCSI command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsOp {
    /// Data read from the volume.
    Read,
    /// Data written to the volume.
    Write,
}

impl std::fmt::Display for FsOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsOp::Read => write!(f, "read"),
            FsOp::Write => write!(f, "write"),
        }
    }
}

/// What a block access touched, in file-level terms.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FsTargetKind {
    /// Contents of a regular file (or symlink target data).
    File {
        /// Full path (mount-prefixed), or `inode-N` if the name is not
        /// yet known.
        path: String,
    },
    /// A directory's entry block (Table I prints these as `<dir>/.`).
    Dir {
        /// Full path.
        path: String,
    },
    /// Filesystem metadata (`inode_group_N`, `superblock`, bitmaps…).
    Meta {
        /// Metadata kind label.
        kind: String,
    },
    /// An indirect pointer block of a file.
    Indirect {
        /// Owning file's path.
        path: String,
    },
    /// Not yet classifiable: a data block whose owning inode has not been
    /// written back yet (fresh allocations). The monitor's analysis phase
    /// re-classifies these via [`Reconstructor::reclassify`] once the
    /// inode-table write has been observed.
    Unknown {
        /// The filesystem block in question.
        block: u64,
    },
}

impl std::fmt::Display for FsTargetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsTargetKind::File { path } => write!(f, "{path}"),
            FsTargetKind::Dir { path } => write!(f, "{path}/."),
            FsTargetKind::Meta { kind } => write!(f, "META: {kind}"),
            FsTargetKind::Indirect { path } => write!(f, "INDIRECT: {path}"),
            FsTargetKind::Unknown { block } => write!(f, "UNKNOWN block {block}"),
        }
    }
}

/// One reconstructed access row (a Table I line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsAccess {
    /// Read or write.
    pub op: FsOp,
    /// What was accessed.
    pub target: FsTargetKind,
    /// Bytes in this (merged) access.
    pub bytes: usize,
}

impl std::fmt::Display for FsAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {} {}", self.op, self.target, self.bytes)
    }
}

/// A higher-level filesystem event inferred from metadata writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsEvent {
    /// A name appeared in a directory.
    Created {
        /// Full path.
        path: String,
        /// Entry type.
        file_type: FileType,
    },
    /// A name disappeared from a directory.
    Unlinked {
        /// Full path.
        path: String,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockRole {
    FileData(u32),
    DirData(u32),
    Indirect(u32),
    DoubleIndirect(u32),
}

#[derive(Debug, Clone, Copy, Default)]
struct InodeLite {
    mode: u16,
    links: u16,
    block: [u32; 15],
}

/// The reconstruction engine.
#[derive(Debug)]
pub struct Reconstructor {
    view: FsView,
    mount: String,
    inodes: HashMap<u32, InodeLite>,
    paths: HashMap<u32, String>,
    // The per-directory name table is a BTreeMap: directory diffs iterate
    // it, and unlink events must come out in name order, not hasher order.
    children: HashMap<u32, BTreeMap<String, u32>>,
    owner: HashMap<u64, BlockRole>,
    events: Vec<FsEvent>,
    /// Recent data-region writes whose owner was unknown at write time.
    /// Metadata usually lands *after* the data it points to (allocate,
    /// write data/indirect content, then write the inode), so when a role
    /// arrives late the block's content is replayed from here.
    recent_writes: HashMap<u64, Vec<u8>>,
    recent_order: std::collections::VecDeque<u64>,
}

/// Bound on the deferred-content cache (4096 blocks = 16 MiB).
const RECENT_CAP: usize = 4096;

impl Reconstructor {
    /// Builds the initial system view from an attached device. `mount` is
    /// the path prefix the tenant mounts the volume at (e.g. `/mnt/box`).
    ///
    /// # Errors
    ///
    /// Propagates [`storm_extfs::FsError`] from reading the volume.
    pub fn from_device<D: BlockDevice>(
        dev: &mut D,
        mount: impl Into<String>,
    ) -> Result<Reconstructor, storm_extfs::FsError> {
        let view = FsView::from_device(dev)?;
        let mut r = Reconstructor {
            view,
            mount: mount.into(),
            inodes: HashMap::new(),
            paths: HashMap::new(),
            children: HashMap::new(),
            owner: HashMap::new(),
            events: Vec::new(),
            recent_writes: HashMap::new(),
            recent_order: std::collections::VecDeque::new(),
        };
        r.paths.insert(ROOT_INO, r.mount.clone());
        r.walk(dev, ROOT_INO)?;
        r.events.clear(); // bootstrap discoveries are not runtime events
        Ok(r)
    }

    /// The layout view.
    pub fn view(&self) -> &FsView {
        &self.view
    }

    /// Current path of inode `ino`, if known.
    pub fn path_of(&self, ino: u32) -> Option<&str> {
        self.paths.get(&ino).map(String::as_str)
    }

    /// Number of blocks with known owners (hash-table size, paper §IV).
    pub fn tracked_blocks(&self) -> usize {
        self.owner.len()
    }

    /// Drains inferred create/unlink events.
    pub fn take_events(&mut self) -> Vec<FsEvent> {
        std::mem::take(&mut self.events)
    }

    /// Analysis-phase re-classification: rows recorded while a block's
    /// owner was unknown (data written before its inode) resolve once the
    /// metadata has been observed. Known rows also refresh their path
    /// (renames).
    pub fn reclassify(&self, access: &FsAccess) -> FsAccess {
        match &access.target {
            FsTargetKind::Unknown { block } => FsAccess {
                op: access.op,
                target: self.classify(*block),
                bytes: access.bytes,
            },
            _ => access.clone(),
        }
    }

    fn read_block<D: BlockDevice>(dev: &mut D, bno: u64) -> Result<Vec<u8>, storm_extfs::FsError> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        dev.read(bno * SECTORS_PER_BLOCK, &mut buf)?;
        Ok(buf)
    }

    fn read_inode<D: BlockDevice>(
        &self,
        dev: &mut D,
        ino: u32,
    ) -> Result<Inode, storm_extfs::FsError> {
        let (block, off) = self.view.inode_location(ino);
        let buf = Self::read_block(dev, block)?;
        Ok(Inode::from_bytes(&buf[off..off + INODE_SIZE]))
    }

    fn walk<D: BlockDevice>(&mut self, dev: &mut D, ino: u32) -> Result<(), storm_extfs::FsError> {
        let inode = self.read_inode(dev, ino)?;
        self.register_inode(ino, &inode.into_lite());
        if inode.is_dir() {
            let blocks: Vec<u32> = inode.block[..12]
                .iter()
                .copied()
                .filter(|&b| b != 0)
                .collect();
            for b in blocks {
                let buf = Self::read_block(dev, b as u64)?;
                for e in parse_dirents(&buf) {
                    if e.name == "." || e.name == ".." {
                        continue;
                    }
                    let parent_path = self.paths.get(&ino).cloned().unwrap_or_default();
                    let path = format!("{parent_path}/{}", e.name);
                    self.paths.insert(e.inode, path);
                    self.children
                        .entry(ino)
                        .or_default()
                        .insert(e.name.clone(), e.inode);
                    self.walk(dev, e.inode)?;
                }
            }
        } else if inode.block[12] != 0 || inode.block[13] != 0 {
            // Resolve indirect pointers so data blocks map to this file.
            if inode.block[12] != 0 {
                let buf = Self::read_block(dev, inode.block[12] as u64)?;
                self.absorb_indirect(ino, &buf, false);
            }
            if inode.block[13] != 0 {
                let outer = Self::read_block(dev, inode.block[13] as u64)?;
                let ptrs: Vec<u32> = outer
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
                    .filter(|&p| p != 0)
                    .collect();
                for p in ptrs {
                    self.owner.insert(p as u64, BlockRole::Indirect(ino));
                    let buf = Self::read_block(dev, p as u64)?;
                    self.absorb_indirect(ino, &buf, false);
                }
            }
        }
        Ok(())
    }

    fn register_inode(&mut self, ino: u32, new: &InodeLite) {
        // Retire owners of blocks this inode no longer points at (truncate
        // frees blocks whose stale attribution would otherwise linger).
        if let Some(old) = self.inodes.get(&ino).copied() {
            for &b in &old.block {
                if b != 0 && !new.block.contains(&b) {
                    self.owner.remove(&(b as u64));
                }
            }
        }
        let is_dir = new.mode & 0xF000 == 0x4000;
        for (slot, &b) in new.block.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let role = match slot {
                0..=11 => {
                    if is_dir {
                        BlockRole::DirData(ino)
                    } else {
                        BlockRole::FileData(ino)
                    }
                }
                12 => BlockRole::Indirect(ino),
                _ => BlockRole::DoubleIndirect(ino),
            };
            self.assign_role(b as u64, role);
        }
        self.inodes.insert(ino, *new);
    }

    /// Assigns a role to a block, replaying any cached content that was
    /// written before the role was known.
    fn assign_role(&mut self, bno: u64, role: BlockRole) {
        let fresh = self.owner.insert(bno, role) != Some(role);
        if !fresh {
            return;
        }
        if let Some(content) = self.recent_writes.remove(&bno) {
            match role {
                BlockRole::Indirect(ino) => {
                    let is_dir = self
                        .inodes
                        .get(&ino)
                        .is_some_and(|i| i.mode & 0xF000 == 0x4000);
                    self.absorb_indirect_late(ino, &content, is_dir);
                }
                BlockRole::DoubleIndirect(ino) => {
                    for chunk in content.chunks_exact(4) {
                        let p = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                        if p != 0 {
                            self.assign_role(p as u64, BlockRole::Indirect(ino));
                        }
                    }
                }
                BlockRole::DirData(ino) => {
                    if content.len() == BLOCK_SIZE {
                        self.update_directory(ino, &content);
                    }
                }
                BlockRole::FileData(_) => {}
            }
        }
    }

    fn absorb_indirect_late(&mut self, ino: u32, data: &[u8], is_dir: bool) {
        for chunk in data.chunks_exact(4) {
            let p = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            if p != 0 {
                let role = if is_dir {
                    BlockRole::DirData(ino)
                } else {
                    BlockRole::FileData(ino)
                };
                self.assign_role(p as u64, role);
            }
        }
    }

    fn remember_write(&mut self, bno: u64, content: &[u8]) {
        if self.recent_writes.insert(bno, content.to_vec()).is_none() {
            self.recent_order.push_back(bno);
            while self.recent_order.len() > RECENT_CAP {
                if let Some(old) = self.recent_order.pop_front() {
                    self.recent_writes.remove(&old);
                }
            }
        }
    }

    fn absorb_indirect(&mut self, ino: u32, data: &[u8], is_dir: bool) {
        for chunk in data.chunks_exact(4) {
            let p = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
            if p != 0 {
                let role = if is_dir {
                    BlockRole::DirData(ino)
                } else {
                    BlockRole::FileData(ino)
                };
                self.owner.insert(p as u64, role);
            }
        }
    }

    fn display_path(&self, ino: u32) -> String {
        self.paths
            .get(&ino)
            .cloned()
            .unwrap_or_else(|| format!("{}/inode-{ino}", self.mount))
    }

    fn classify(&self, bno: u64) -> FsTargetKind {
        match self.view.classify_block(bno) {
            Region::Superblock => FsTargetKind::Meta {
                kind: "superblock".into(),
            },
            Region::GroupDescTable => FsTargetKind::Meta {
                kind: "group_desc_table".into(),
            },
            Region::BlockBitmap { group } => FsTargetKind::Meta {
                kind: format!("block_bitmap_{group}"),
            },
            Region::InodeBitmap { group } => FsTargetKind::Meta {
                kind: format!("inode_bitmap_{group}"),
            },
            Region::InodeTable { group, .. } => FsTargetKind::Meta {
                kind: format!("inode_group_{group}"),
            },
            Region::Beyond => FsTargetKind::Unknown { block: bno },
            Region::Data => match self.owner.get(&bno) {
                Some(BlockRole::FileData(ino)) => FsTargetKind::File {
                    path: self.display_path(*ino),
                },
                Some(BlockRole::DirData(ino)) => FsTargetKind::Dir {
                    path: self.display_path(*ino),
                },
                Some(BlockRole::Indirect(ino)) | Some(BlockRole::DoubleIndirect(ino)) => {
                    FsTargetKind::Indirect {
                        path: self.display_path(*ino),
                    }
                }
                None => FsTargetKind::Unknown { block: bno },
            },
        }
    }

    /// Observes one intercepted I/O. `lba` is the starting 512-byte
    /// sector; for writes, `data` carries the payload (used to update the
    /// system view); for reads pass `None`.
    ///
    /// Returns Table-I style access rows, one per contiguous
    /// same-classification run.
    pub fn observe(
        &mut self,
        op: FsOp,
        lba: u64,
        len: usize,
        data: Option<&[u8]>,
    ) -> Vec<FsAccess> {
        // Update phase first (writes refresh the view), then classify.
        if let (FsOp::Write, Some(data)) = (op, data) {
            self.update_from_write(lba, data);
        }
        let first_block = lba / SECTORS_PER_BLOCK;
        let last_block = (lba + (len as u64).div_ceil(512) - 1).max(lba) / SECTORS_PER_BLOCK;
        let mut rows: Vec<FsAccess> = Vec::new();
        for bno in first_block..=last_block {
            let target = self.classify(bno);
            // Bytes of the access overlapping this block.
            let block_start = bno * SECTORS_PER_BLOCK * 512;
            let block_end = block_start + BLOCK_SIZE as u64;
            let acc_start = lba * 512;
            let acc_end = acc_start + len as u64;
            let bytes = (acc_end.min(block_end) - acc_start.max(block_start)) as usize;
            match rows.last_mut() {
                Some(last) if last.target == target => last.bytes += bytes,
                _ => rows.push(FsAccess { op, target, bytes }),
            }
        }
        rows
    }

    /// Applies a write's contents to the tracked system view.
    fn update_from_write(&mut self, lba: u64, data: &[u8]) {
        let start_byte = lba * 512;
        let first_block = start_byte / BLOCK_SIZE as u64;
        let end_byte = start_byte + data.len() as u64;
        let last_block = (end_byte.saturating_sub(1)) / BLOCK_SIZE as u64;
        for bno in first_block..=last_block {
            let block_start = bno * BLOCK_SIZE as u64;
            // Slice of `data` overlapping this block.
            let lo = block_start.max(start_byte);
            let hi = (block_start + BLOCK_SIZE as u64).min(end_byte);
            let slice = &data[(lo - start_byte) as usize..(hi - start_byte) as usize];
            let offset_in_block = (lo - block_start) as usize;
            match self.view.classify_block(bno) {
                Region::InodeTable { .. } => {
                    self.update_inode_table(bno, offset_in_block, slice);
                }
                Region::Data => match self.owner.get(&bno).copied() {
                    Some(BlockRole::DirData(dir_ino))
                        if offset_in_block == 0 && slice.len() == BLOCK_SIZE =>
                    {
                        self.update_directory(dir_ino, slice);
                    }
                    Some(BlockRole::Indirect(ino))
                        if offset_in_block == 0 && slice.len() == BLOCK_SIZE =>
                    {
                        let is_dir = self
                            .inodes
                            .get(&ino)
                            .is_some_and(|i| i.mode & 0xF000 == 0x4000);
                        self.absorb_indirect_late(ino, slice, is_dir);
                    }
                    Some(BlockRole::DoubleIndirect(ino))
                        if offset_in_block == 0 && slice.len() == BLOCK_SIZE =>
                    {
                        for chunk in slice.chunks_exact(4) {
                            let p = u32::from_le_bytes(chunk.try_into().expect("4 bytes"));
                            if p != 0 {
                                self.assign_role(p as u64, BlockRole::Indirect(ino));
                            }
                        }
                    }
                    None if offset_in_block == 0 && slice.len() == BLOCK_SIZE => {
                        // Owner not known yet: stash content for late
                        // role assignment.
                        self.remember_write(bno, slice);
                    }
                    _ => {}
                },
                _ => {}
            }
        }
    }

    fn update_inode_table(&mut self, bno: u64, offset: usize, slice: &[u8]) {
        let Some(inos) = self.view.inodes_in_block(bno) else {
            return;
        };
        let first_ino = inos.start;
        // Parse every whole inode slot covered by the write.
        let first_slot = offset.div_ceil(INODE_SIZE);
        let last_slot = (offset + slice.len()) / INODE_SIZE;
        for slot in first_slot..last_slot {
            let rel = slot * INODE_SIZE - offset;
            let inode = Inode::from_bytes(&slice[rel..rel + INODE_SIZE]);
            let ino = first_ino + slot as u32;
            let lite = inode.into_lite();
            if lite.links == 0 && lite.mode == 0 {
                // Freed: retire block ownership.
                if let Some(old) = self.inodes.remove(&ino) {
                    for &b in &old.block {
                        if b != 0 {
                            self.owner.remove(&(b as u64));
                        }
                    }
                }
                continue;
            }
            self.register_inode(ino, &lite);
        }
    }

    fn update_directory(&mut self, dir_ino: u32, block: &[u8]) {
        let parent_path = self.display_path(dir_ino);
        let entries = parse_dirents(block);
        let fresh: BTreeMap<String, u32> = entries
            .iter()
            .filter(|e| e.name != "." && e.name != "..")
            .map(|e| (e.name.clone(), e.inode))
            .collect();
        let known = self.children.entry(dir_ino).or_default();
        // Additions.
        let mut created = Vec::new();
        for e in &entries {
            if e.name == "." || e.name == ".." {
                continue;
            }
            if known.get(&e.name) != Some(&e.inode) {
                created.push((e.inode, e.name.clone(), e.file_type));
            }
        }
        // Removals. NOTE: a directory spanning several blocks yields
        // per-block diffs; names in other blocks are unaffected because
        // each dirent lives in exactly one block.
        let removed: Vec<(String, u32)> = known
            .iter()
            .filter(|(name, _)| !fresh.contains_key(*name))
            .map(|(n, i)| (n.clone(), *i))
            .collect();
        // Only treat names as removed if they could have lived in this
        // block: conservatively, a name is removed when absent from the
        // fresh block but previously recorded. Multi-block directories
        // re-add their entries on their own block's write.
        for (ino, name, ft) in created {
            let path = format!("{parent_path}/{name}");
            self.paths.insert(ino, path.clone());
            self.children.entry(dir_ino).or_default().insert(name, ino);
            self.events.push(FsEvent::Created {
                path,
                file_type: ft,
            });
        }
        let dir_has_single_block = self
            .inodes
            .get(&dir_ino)
            .map(|i| i.block[1] == 0 && i.block[12] == 0)
            .unwrap_or(true);
        if dir_has_single_block {
            for (name, ino) in removed {
                let path = format!("{parent_path}/{name}");
                self.children.entry(dir_ino).or_default().remove(&name);
                if self.paths.get(&ino).map(String::as_str) == Some(path.as_str()) {
                    self.paths.remove(&ino);
                }
                self.events.push(FsEvent::Unlinked { path });
            }
        }
    }
}

// Conversion helper kept private to this module.
trait IntoLite {
    fn into_lite(self) -> InodeLite;
}
impl IntoLite for Inode {
    fn into_lite(self) -> InodeLite {
        InodeLite {
            mode: self.mode,
            links: self.links_count,
            block: self.block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_block::{AccessKind, MemDisk, RecordingDevice};
    use storm_extfs::ExtFs;

    /// Builds a populated fs, returns (device, reconstructor bootstrapped
    /// at this point).
    fn setup() -> (ExtFs<RecordingDevice<MemDisk>>, Reconstructor) {
        let dev = RecordingDevice::new(MemDisk::with_capacity_bytes(128 << 20));
        let mut fs = ExtFs::mkfs(dev).unwrap();
        for d in 0..10 {
            fs.mkdir(&format!("/name{d}")).unwrap();
            for i in 1..=10 {
                fs.create(&format!("/name{d}/{i}.img")).unwrap();
            }
        }
        fs.write_file("/name1/1.img", 0, &vec![1u8; 8192]).unwrap();
        fs.sync().unwrap();
        fs.device_mut().take_log();
        let recon = Reconstructor::from_device(fs.device_mut().inner_mut(), "/mnt/box").unwrap();
        (fs, recon)
    }

    /// Replays a recording log through the reconstructor, applying the
    /// analysis-phase re-classification at the end (as the monitor does).
    fn replay(recon: &mut Reconstructor, log: Vec<storm_block::AccessRecord>) -> Vec<FsAccess> {
        let mut rows = Vec::new();
        for rec in log {
            let (op, data) = match rec.kind {
                AccessKind::Read => (FsOp::Read, None),
                AccessKind::Write => (FsOp::Write, Some(rec.data.as_slice())),
            };
            rows.extend(recon.observe(op, rec.lba, rec.len_bytes(), data));
        }
        rows.iter().map(|r| recon.reclassify(r)).collect()
    }

    #[test]
    fn bootstrap_knows_existing_tree() {
        let (_fs, recon) = setup();
        assert_eq!(recon.path_of(ROOT_INO), Some("/mnt/box"));
        assert!(recon.tracked_blocks() > 10);
    }

    #[test]
    fn reconstructs_file_write_with_path() {
        let (mut fs, mut recon) = setup();
        fs.write_file("/name9/7.img", 0, &vec![7u8; 16384]).unwrap();
        fs.sync().unwrap();
        let rows = replay(&mut recon, fs.device_mut().take_log());
        let file_writes: Vec<&FsAccess> = rows
            .iter()
            .filter(|r| {
                r.op == FsOp::Write
                    && matches!(&r.target, FsTargetKind::File { path } if path == "/mnt/box/name9/7.img")
            })
            .collect();
        let total: usize = file_writes.iter().map(|r| r.bytes).sum();
        assert_eq!(total, 16384, "rows: {rows:?}");
    }

    #[test]
    fn reconstructs_reads_of_directories_and_files() {
        let (mut fs, mut recon) = setup();
        let _ = fs.readdir("/name1").unwrap();
        let _ = fs.read_file_to_end("/name1/1.img").unwrap();
        let rows = replay(&mut recon, fs.device_mut().take_log());
        assert!(
            rows.iter().any(|r| matches!(
                &r.target,
                FsTargetKind::Dir { path } if path == "/mnt/box/name1"
            )),
            "rows: {rows:?}"
        );
        assert!(rows.iter().any(|r| r.op == FsOp::Read
            && matches!(&r.target, FsTargetKind::File { path } if path == "/mnt/box/name1/1.img")));
        // Metadata reads show up as inode-group rows (Table I rows 2-34).
        assert!(rows.iter().any(
            |r| matches!(&r.target, FsTargetKind::Meta { kind } if kind.starts_with("inode_group"))
        ));
    }

    #[test]
    fn new_file_creation_is_detected() {
        let (mut fs, mut recon) = setup();
        fs.create("/name0/fresh.bin").unwrap();
        fs.write_file("/name0/fresh.bin", 0, &vec![3u8; 4096])
            .unwrap();
        fs.sync().unwrap();
        let rows = replay(&mut recon, fs.device_mut().take_log());
        let events = recon.take_events();
        assert!(
            events.contains(&FsEvent::Created {
                path: "/mnt/box/name0/fresh.bin".into(),
                file_type: FileType::Regular
            }),
            "events: {events:?}"
        );
        // The data write is attributed to the new path.
        assert!(rows.iter().any(|r| r.op == FsOp::Write
            && matches!(&r.target, FsTargetKind::File { path } if path == "/mnt/box/name0/fresh.bin")));
    }

    #[test]
    fn unlink_is_detected() {
        let (mut fs, mut recon) = setup();
        fs.unlink("/name2/3.img").unwrap();
        fs.sync().unwrap();
        let _ = replay(&mut recon, fs.device_mut().take_log());
        let events = recon.take_events();
        assert!(
            events.contains(&FsEvent::Unlinked {
                path: "/mnt/box/name2/3.img".into()
            }),
            "events: {events:?}"
        );
    }

    #[test]
    fn rename_produces_create_and_unlink() {
        let (mut fs, mut recon) = setup();
        fs.rename("/name3/4.img", "/name4/moved.img").unwrap();
        fs.sync().unwrap();
        let _ = replay(&mut recon, fs.device_mut().take_log());
        let events = recon.take_events();
        assert!(events.iter().any(
            |e| matches!(e, FsEvent::Created { path, .. } if path == "/mnt/box/name4/moved.img")
        ));
        assert!(events
            .iter()
            .any(|e| matches!(e, FsEvent::Unlinked { path } if path == "/mnt/box/name3/4.img")));
    }

    #[test]
    fn large_file_indirect_blocks_tracked() {
        let (mut fs, mut recon) = setup();
        fs.create("/name5/big.dat").unwrap();
        fs.sync().unwrap();
        let _ = replay(&mut recon, fs.device_mut().take_log());
        // 80 blocks: goes through the single-indirect block.
        fs.write_file("/name5/big.dat", 0, &vec![5u8; 80 * BLOCK_SIZE])
            .unwrap();
        fs.sync().unwrap();
        let rows = replay(&mut recon, fs.device_mut().take_log());
        let attributed: usize = rows
            .iter()
            .filter(|r| {
                r.op == FsOp::Write
                    && matches!(&r.target, FsTargetKind::File { path } if path == "/mnt/box/name5/big.dat")
            })
            .map(|r| r.bytes)
            .sum();
        assert_eq!(
            attributed,
            80 * BLOCK_SIZE,
            "indirect data must be attributed"
        );
        // Now read it back: reads of indirect region resolve too.
        let _ = fs.read_file_to_end("/name5/big.dat").unwrap();
        let rows = replay(&mut recon, fs.device_mut().take_log());
        let read_bytes: usize = rows
            .iter()
            .filter(|r| {
                r.op == FsOp::Read
                    && matches!(&r.target, FsTargetKind::File { path } if path == "/mnt/box/name5/big.dat")
            })
            .map(|r| r.bytes)
            .sum();
        assert!(read_bytes >= 80 * BLOCK_SIZE);
    }

    #[test]
    fn display_formats_match_table_style() {
        let row = FsAccess {
            op: FsOp::Read,
            target: FsTargetKind::Dir {
                path: "/mnt/box".into(),
            },
            bytes: 4096,
        };
        assert_eq!(row.to_string(), "read /mnt/box/. 4096");
        let row = FsAccess {
            op: FsOp::Write,
            target: FsTargetKind::Meta {
                kind: "inode_group_0".into(),
            },
            bytes: 4096,
        };
        assert_eq!(row.to_string(), "write META: inode_group_0 4096");
    }

    #[test]
    fn observe_merges_contiguous_runs() {
        let (mut fs, mut recon) = setup();
        fs.write_file("/name1/2.img", 0, &vec![2u8; 32768]).unwrap();
        fs.sync().unwrap();
        let log = fs.device_mut().take_log();
        // Collapse the multi-block file write into one logical observe.
        let big = log
            .iter()
            .find(|r| r.kind == AccessKind::Write && r.len_bytes() == 32768);
        if let Some(rec) = big {
            let rows = recon.observe(FsOp::Write, rec.lba, rec.len_bytes(), Some(&rec.data));
            // Contiguous blocks of the same file merge into one row.
            assert_eq!(rows.len(), 1, "rows: {rows:?}");
            assert_eq!(rows[0].bytes, 32768);
        }
    }
}

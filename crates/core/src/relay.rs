//! The middle-box interception engines: passive and active relays.
//!
//! *Passive relay* (paper §III-B): a hook on the middle-box kernel's
//! FORWARD path copies every packet to user space — "one [system call] per
//! packet" — where services may transform data-segment bytes in place. The
//! packet continues along the original end-to-end TCP connection, so all
//! processing delay lands on the data *and* ack path.
//!
//! *Active relay*: the middle-box terminates TCP ("breaks the original
//! single TCP connection into two"), acknowledging data immediately on
//! receipt. A pseudo-server accepts the redirected flow from the ingress
//! gateway and a pseudo-client connects onward to the egress gateway
//! (binding the same source port so the Figure-3 chain rules keep
//! matching). Received PDUs are held in a bounded persistence buffer
//! (modelling the paper's non-volatile staging copy) — when it fills, the
//! pseudo-server's advertised window shrinks and the source stalls, which
//! is the active relay's flow-control story.

mod active;
mod passive;
mod queue;

pub use active::{
    ActiveRelayConfig, ActiveRelayMb, MbControl, RelayCopyStats, RelayQosConfig, ReplicaTarget,
    RetryPolicy,
};
pub use passive::{PassiveTap, PassiveTapConfig, WireTracker};

//! The active relay: split-TCP store-and-forward middle-box engine.

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;

use storm_iscsi::{
    Initiator, InitiatorConfig, InitiatorEvent, IoTag, Iqn, Pdu, PduStream, ScsiStatus,
    SessionParams, SHARE_THRESHOLD,
};
use storm_net::{App, BusMsg, CloseReason, Cx, HostId, SendQueue, SockAddr, SockId};
use storm_nvmeq::{FrameKind, FrameWire, UnitEntry, FRAME_HDR_LEN, MAGIC};
use storm_qos::{RateLimitSpec, RateLimiter};
use storm_sim::trace::{flow_token, req_token, Hop, TraceEvent, TraceHook};
use storm_sim::{FaultAction, FaultHook, FaultSite, SerialResource, SimDuration, SimTime};

use super::queue::{self, NvqPair, UnitOut};
use crate::service::{Dir, ReplicaIo, StorageService, SvcAction, SvcCtx};

/// A replica volume the middle-box attaches for side I/O (the replication
/// service's backup volumes).
#[derive(Debug, Clone)]
pub struct ReplicaTarget {
    /// The replica's iSCSI portal.
    pub portal: SockAddr,
    /// The replica volume's IQN.
    pub iqn: Iqn,
}

/// Watchdog policy for replica I/O: a request that produces no response
/// within `timeout` is retried with bounded exponential backoff; a replica
/// that times out `fail_threshold` times in a row is declared unresponsive
/// and failed over (the paper's "once a replica is not responsive ... it
/// will be eliminated from future operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Time allowed for one replica request to complete.
    pub timeout: SimDuration,
    /// Re-issues per request before the request is failed to its service.
    pub max_retries: u32,
    /// Delay before the first retry; doubles per attempt.
    pub backoff_base: SimDuration,
    /// Upper bound on the backoff delay.
    pub backoff_cap: SimDuration,
    /// Consecutive timeouts after which the whole replica is failed.
    pub fail_threshold: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            timeout: SimDuration::from_millis(500),
            max_retries: 2,
            backoff_base: SimDuration::from_millis(10),
            backoff_cap: SimDuration::from_millis(200),
            fail_threshold: 3,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based), capped.
    fn backoff(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(16);
        let d = self.backoff_base * (1u64 << exp);
        d.min(self.backoff_cap)
    }
}

/// Control messages a fault driver delivers over the hypervisor bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbControl {
    /// Crash the middle-box VM: every flow and replica session is cut.
    Crash,
    /// Boot the middle-box back up; replica sessions reconnect.
    Restart,
}

/// Tenant QoS shaping at the relay admission point.
///
/// The relay is the tenant's entry into the platform, so per-tenant rate
/// limits are enforced here: request-direction PDUs that exceed the
/// tenant's token buckets have their processing start pushed back by the
/// shaping delay. The delay is *queueing*, not CPU — the relay core stays
/// free for other flows — and a tenant under its limit sees a zero delay
/// and a byte-identical datapath.
#[derive(Debug, Clone)]
pub struct RelayQosConfig {
    /// Tenant this relay serves (trace/metric attribution).
    pub tenant: u32,
    /// IOPS + bandwidth buckets applied to request-direction PDUs.
    pub limit: RateLimitSpec,
}

/// Active relay configuration.
#[derive(Debug, Clone)]
pub struct ActiveRelayConfig {
    /// Local port the pseudo-server listens on (flows are DNAT-redirected
    /// here).
    pub listen_port: u16,
    /// Where the pseudo-client connects onward (the egress gateway).
    pub upstream: SockAddr,
    /// Persistence buffer capacity in bytes; beyond it the pseudo-server
    /// stops reading and the source stalls (paper §III-B consistency
    /// copy).
    pub buffer_cap: usize,
    /// Per-PDU API overhead (decapsulation/encapsulation).
    pub per_pdu_cost: SimDuration,
    /// CPU accounting label (e.g. `"mb"`).
    pub label: String,
    /// Replica volumes to attach.
    pub replicas: Vec<ReplicaTarget>,
    /// Initiator identity for replica sessions.
    pub initiator_iqn: Iqn,
    /// Replica I/O watchdog; `None` disables timeouts entirely.
    pub retry: Option<RetryPolicy>,
    /// Per-tenant rate shaping; `None` (default) admits everything.
    pub qos: Option<RelayQosConfig>,
}

impl ActiveRelayConfig {
    /// Defaults: listen on 13260, 8 MiB buffer, 4 µs per PDU.
    pub fn new(upstream: SockAddr) -> Self {
        ActiveRelayConfig {
            listen_port: 13260,
            upstream,
            buffer_cap: 8 << 20,
            per_pdu_cost: SimDuration::from_micros(4),
            label: "mb".into(),
            replicas: Vec::new(),
            initiator_iqn: Iqn::for_host("middlebox"),
            retry: Some(RetryPolicy::default()),
            qos: None,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Server,
    Client,
}

/// Which wire protocol a relayed flow speaks. Decided by the first byte
/// the tenant VM sends (nvmeq's frame magic `0xB5` vs iSCSI's login
/// opcode), exactly like the storage target's portal sniffing — so one
/// steering rule covers both transports.
enum PairProto {
    /// No tenant-side bytes seen yet.
    Undecided,
    /// Classic one-command-conversation iSCSI.
    Iscsi,
    /// Multi-queue doorbell/completion frames with per-flow ring state.
    Nvmeq(Box<NvqPair>),
}

struct FlowPair {
    server: SockId,
    client: SockId,
    /// The flow's original (initiator-side) source port — the request-token
    /// prefix shared with the guest and the target.
    src_port: u16,
    proto: PairProto,
    s_stream: PduStream,
    c_stream: PduStream,
    s_out: SendQueue,
    c_out: SendQueue,
    /// Bytes received from the server side, not yet released upstream.
    buffered_in: usize,
    paused: bool,
    proc: SerialResource,
    closed: bool,
}

/// One in-flight replica request: the owning service, its completion
/// context, the request itself (kept for retries), the attempt count, and
/// the flow pair whose PDU triggered it (side actions the completion
/// produces route back to that pair, not to an arbitrary open flow).
struct PendingIo {
    svc: usize,
    ctx: u64,
    io: ReplicaIo,
    attempts: u32,
    origin: Option<usize>,
}

struct ReplicaSession {
    ini: Initiator,
    sock: Option<SockId>,
    sendq: SendQueue,
    // BTreeMap: on replica failure every outstanding request is failed
    // back to its service, and that sweep must run in tag order — with a
    // HashMap the eviction trace depended on hasher state.
    pending: BTreeMap<IoTag, PendingIo>,
    parked: Vec<(usize, ReplicaIo, u64, Option<usize>)>,
    up: bool,
    failed: bool,
    /// Consecutive request timeouts (reset by any completion).
    timeouts: u32,
}

/// A PDU headed for a send queue: either the original received wire bytes
/// (the verbatim-forward fast path — nothing is re-encoded or copied) or a
/// PDU the chain produced/modified, encoded on release.
enum PduOut {
    Verbatim(Vec<Bytes>),
    Encode(Pdu),
    /// An nvmeq frame every unit of which passed the chain untouched:
    /// the received wire image re-emitted as-is (`units` commands).
    NvqVerbatim {
        wire: Vec<Bytes>,
        units: u64,
    },
    /// An nvmeq frame rebuilt from chain outputs (fresh header; entries
    /// re-encoded as needed; data segments still shared views).
    NvqFrame {
        kind: FrameKind,
        units: Vec<UnitOut>,
    },
}

enum Deferred {
    Release {
        pair: usize,
        forwards: Vec<PduOut>,
        replies: Vec<Pdu>,
        dir: Dir,
        replica_ops: Vec<(usize, usize, ReplicaIo, u64)>,
        input_bytes: usize,
    },
}

/// Memcpy accounting for the relay datapath (see
/// [`ActiveRelayMb::copy_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayCopyStats {
    /// Data-segment bytes copied anywhere on the relay path: stream
    /// reassembly plus small-segment batching on encode. Zero for a
    /// passthrough chain.
    pub data_bytes_copied: u64,
    /// 48-byte BHS copies (decode scratch) — the allowed fixed-size
    /// header copies.
    pub header_bytes_copied: u64,
    /// PDUs that took the verbatim fast path (original wire bytes
    /// forwarded, no re-encode).
    pub verbatim_forwards: u64,
}

/// The active-relay middle-box application.
pub struct ActiveRelayMb {
    cfg: ActiveRelayConfig,
    services: Vec<Box<dyn StorageService>>,
    pairs: Vec<FlowPair>,
    by_sock: HashMap<SockId, (usize, Side)>,
    replicas: Vec<ReplicaSession>,
    replica_socks: HashMap<SockId, usize>,
    deferred: HashMap<u64, Deferred>,
    svc_timers: HashMap<u64, (usize, u64)>,
    /// Watchdog token -> the replica request it guards.
    watchdogs: HashMap<u64, (usize, IoTag)>,
    /// Backoff token -> the request to re-issue when it fires.
    retries: HashMap<u64, (usize, PendingIo)>,
    limiter: Option<RateLimiter>,
    next_token: u64,
    alerts: Vec<(SimTime, String)>,
    pdus_forwarded: u64,
    verbatim_forwards: u64,
    encode_bytes_copied: u64,
    /// Fixed-size metadata copies on nvmeq re-framing (fresh frame
    /// headers + re-encoded entries) — the multi-queue analogue of BHS
    /// decode scratch.
    encode_header_bytes: u64,
    /// Copy counters of streams whose pairs were dropped by a crash.
    retired_copy_stats: RelayCopyStats,
    crashed: bool,
    fault: FaultHook,
    fault_mb: u32,
    trace: TraceHook,
    trace_mb: u32,
}

impl ActiveRelayMb {
    /// Creates the relay with a service chain (may be empty = pure
    /// store-and-forward, the paper's MB-ACTIVE-RELAY baseline).
    pub fn new(cfg: ActiveRelayConfig, services: Vec<Box<dyn StorageService>>) -> Self {
        let limiter = cfg.qos.as_ref().map(|q| RateLimiter::new(q.limit));
        ActiveRelayMb {
            cfg,
            limiter,
            services,
            pairs: Vec::new(),
            by_sock: HashMap::new(),
            replicas: Vec::new(),
            replica_socks: HashMap::new(),
            deferred: HashMap::new(),
            svc_timers: HashMap::new(),
            watchdogs: HashMap::new(),
            retries: HashMap::new(),
            next_token: 1,
            alerts: Vec::new(),
            pdus_forwarded: 0,
            verbatim_forwards: 0,
            encode_bytes_copied: 0,
            encode_header_bytes: 0,
            retired_copy_stats: RelayCopyStats::default(),
            crashed: false,
            fault: FaultHook::none(),
            fault_mb: 0,
            trace: TraceHook::none(),
            trace_mb: 0,
        }
    }

    /// Arms this middle-box's fault hook; `mb` identifies it in
    /// [`FaultSite::MbProcess`] sites.
    pub fn set_fault_hook(&mut self, hook: FaultHook, mb: u32) {
        self.fault = hook;
        self.fault_mb = mb;
    }

    /// Arms this middle-box's trace hook; `mb` identifies it in
    /// [`Hop::Relay`] stage events. Emits one [`TraceEvent::Meta`] per
    /// chained service so the analyzer can label service stages by name.
    pub fn set_trace_hook(&mut self, hook: TraceHook, mb: u32) {
        self.trace = hook;
        self.trace_mb = mb;
        if self.trace.is_armed() {
            self.trace.emit(
                SimTime::ZERO,
                TraceEvent::Meta {
                    hop: Hop::Relay,
                    id: mb,
                    name: "active-relay".to_string(),
                },
            );
            for (idx, svc) in self.services.iter().enumerate() {
                self.trace.emit(
                    SimTime::ZERO,
                    TraceEvent::Meta {
                        hop: Hop::Service,
                        id: idx as u32,
                        name: svc.name().to_string(),
                    },
                );
            }
        }
    }

    /// Whether the middle-box is currently crashed (fault injection).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Alerts raised by services, with timestamps.
    pub fn alerts(&self) -> &[(SimTime, String)] {
        &self.alerts
    }

    /// PDUs forwarded through the chain.
    pub fn pdus_forwarded(&self) -> u64 {
        self.pdus_forwarded
    }

    /// `(throttled_ops, total_shaping_delay)` of the tenant rate limiter;
    /// zeros when QoS is not configured.
    pub fn qos_throttle_stats(&self) -> (u64, SimDuration) {
        self.limiter
            .as_ref()
            .map_or((0, SimDuration::ZERO), |l| l.throttle_stats())
    }

    /// Memcpy accounting across the relay's datapath: reassembly copies
    /// on both flow streams plus small-segment batching on encode. Feeds
    /// the `relay.bytes_copied` metric and the zero-copy acceptance test.
    pub fn copy_stats(&self) -> RelayCopyStats {
        let mut s = self.retired_copy_stats;
        s.data_bytes_copied += self.encode_bytes_copied;
        s.header_bytes_copied += self.encode_header_bytes;
        s.verbatim_forwards += self.verbatim_forwards;
        for p in &self.pairs {
            s.data_bytes_copied += p.s_stream.bytes_copied() + p.c_stream.bytes_copied();
            s.header_bytes_copied +=
                p.s_stream.header_bytes_copied() + p.c_stream.header_bytes_copied();
            if let PairProto::Nvmeq(nvq) = &p.proto {
                s.data_bytes_copied += nvq.s_stream.bytes_copied() + nvq.c_stream.bytes_copied();
                s.header_bytes_copied +=
                    nvq.s_stream.header_bytes_copied() + nvq.c_stream.header_bytes_copied();
            }
        }
        s
    }

    /// Encodes a PDU onto a send queue as chunks: the header (and a small
    /// data segment, counted) by copy; a large data segment as a shared
    /// view of the service's buffer.
    fn queue_pdu(encode_bytes_copied: &mut u64, q: &mut SendQueue, pdu: &Pdu) {
        let w = pdu.wire_chunks();
        q.push(&w.header);
        if w.data.len() >= SHARE_THRESHOLD {
            q.push_bytes(w.data);
        } else {
            *encode_bytes_copied += w.data.len() as u64;
            q.push(&w.data);
        }
        q.push(w.pad);
    }

    /// Access a service by index (use
    /// [`StorageService::downcast_ref`](crate::service::StorageService)
    /// to read concrete state).
    pub fn service(&self, idx: usize) -> Option<&dyn StorageService> {
        self.services.get(idx).map(|s| s.as_ref())
    }

    /// Mutable access to a service by index.
    pub fn service_mut(&mut self, idx: usize) -> Option<&mut (dyn StorageService + 'static)> {
        self.services.get_mut(idx).map(|s| s.as_mut())
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Runs a PDU through the chain, collecting outputs and costs. The
    /// final element attributes CPU charges to the service that emitted
    /// them (index, total charge) for latency-attribution traces.
    #[allow(clippy::type_complexity)]
    fn run_chain(
        &mut self,
        now: SimTime,
        dir: Dir,
        pdu: Pdu,
    ) -> (
        Vec<Pdu>,
        Vec<Pdu>,
        Vec<(usize, usize, ReplicaIo, u64)>,
        SimDuration,
        Vec<(usize, SimDuration, u64)>,
        Vec<(usize, SimDuration)>,
    ) {
        let order: Vec<usize> = match dir {
            Dir::ToTarget => (0..self.services.len()).collect(),
            Dir::ToInitiator => (0..self.services.len()).rev().collect(),
        };
        let mut frontier = vec![pdu];
        let mut replies = Vec::new();
        let mut replica_ops = Vec::new();
        let mut cost = self.cfg.per_pdu_cost;
        let mut timers = Vec::new();
        let mut svc_costs: Vec<(usize, SimDuration)> = Vec::new();
        for idx in order {
            let mut next = Vec::new();
            let mut charged = SimDuration::ZERO;
            for p in frontier {
                let mut cx = SvcCtx::new(now);
                self.services[idx].on_pdu(&mut cx, dir, p);
                for action in cx.take_actions() {
                    match action {
                        SvcAction::Forward(p) => next.push(p),
                        SvcAction::Reply(p) => replies.push(p),
                        SvcAction::Replica { replica, io, ctx } => {
                            replica_ops.push((idx, replica, io, ctx))
                        }
                        SvcAction::Alert(msg) => self.alerts.push((now, msg)),
                        SvcAction::Charge(c) => {
                            cost += c;
                            charged += c;
                        }
                        SvcAction::Timer { delay, token } => timers.push((idx, delay, token)),
                    }
                }
            }
            if charged > SimDuration::ZERO {
                svc_costs.push((idx, charged));
            }
            frontier = next;
        }
        (frontier, replies, replica_ops, cost, timers, svc_costs)
    }

    /// The flow pair side actions should route to: the originating pair
    /// when known and still open, otherwise the first open pair (timers
    /// and other flow-less contexts).
    fn route_pair(&self, origin: Option<usize>) -> Option<usize> {
        match origin {
            Some(i) if i < self.pairs.len() && !self.pairs[i].closed => Some(i),
            _ => self.pairs.iter().position(|p| !p.closed),
        }
    }

    /// Executes the actions a service emitted outside the data path
    /// (replica completions, timers). `origin` is the flow pair whose PDU
    /// led here, when there is one.
    fn run_side_actions(
        &mut self,
        cx: &mut Cx<'_>,
        svc_idx: usize,
        mut scx: SvcCtx,
        origin: Option<usize>,
    ) {
        let actions = scx.take_actions();
        let now = cx.now();
        for action in actions {
            match action {
                SvcAction::Reply(p) => {
                    // Side-context replies flow back towards the initiator
                    // (e.g. replication serving a read from a replica) —
                    // on the flow the request came in on.
                    if let Some(i) = self.route_pair(origin) {
                        Self::queue_pdu(
                            &mut self.encode_bytes_copied,
                            &mut self.pairs[i].s_out,
                            &p,
                        );
                        let server = self.pairs[i].server;
                        self.pairs[i].s_out.pump(cx, server);
                        self.pdus_forwarded += 1;
                    }
                }
                SvcAction::Forward(p) => {
                    // Side-context forwards continue upstream (e.g. a
                    // failed replica read re-dispatched to the primary).
                    if let Some(i) = self.route_pair(origin) {
                        Self::queue_pdu(
                            &mut self.encode_bytes_copied,
                            &mut self.pairs[i].c_out,
                            &p,
                        );
                        let client = self.pairs[i].client;
                        self.pairs[i].c_out.pump(cx, client);
                        self.pdus_forwarded += 1;
                    }
                }
                SvcAction::Replica { replica, io, ctx } => {
                    self.issue_replica(cx, svc_idx, replica, io, ctx, origin);
                }
                SvcAction::Alert(msg) => self.alerts.push((now, msg)),
                SvcAction::Charge(c) => {
                    let _ = cx.charge(c, &self.cfg.label);
                }
                SvcAction::Timer { delay, token } => {
                    let t = self.token();
                    self.svc_timers.insert(t, (svc_idx, token));
                    cx.set_timer(delay, t);
                }
            }
        }
    }

    fn issue_replica(
        &mut self,
        cx: &mut Cx<'_>,
        svc_idx: usize,
        replica: usize,
        io: ReplicaIo,
        ctx: u64,
        origin: Option<usize>,
    ) {
        self.issue_replica_attempt(
            cx,
            replica,
            PendingIo {
                svc: svc_idx,
                ctx,
                io,
                attempts: 0,
                origin,
            },
        );
    }

    fn issue_replica_attempt(&mut self, cx: &mut Cx<'_>, replica: usize, req: PendingIo) {
        let Some(sess) = self.replicas.get_mut(replica) else {
            return;
        };
        if sess.failed {
            let (svc, ctx, origin) = (req.svc, req.ctx, req.origin);
            let mut scx = SvcCtx::new(cx.now());
            self.services[svc].on_replica_done(&mut scx, replica, ctx, false, Bytes::new());
            self.run_side_actions(cx, svc, scx, origin);
            return;
        }
        if !sess.up {
            sess.parked.push((req.svc, req.io, req.ctx, req.origin));
            return;
        }
        let tag = match &req.io {
            ReplicaIo::Write { lba, data } => sess.ini.write(*lba, data.clone()),
            ReplicaIo::Read { lba, sectors } => sess.ini.read(*lba, *sectors),
        };
        sess.pending.insert(tag, req);
        if let Some(sock) = sess.sock {
            for c in sess.ini.take_wire() {
                sess.sendq.push_bytes(c);
            }
            sess.sendq.pump(cx, sock);
        }
        // Arm the request watchdog.
        if let Some(policy) = self.cfg.retry {
            let token = self.token();
            self.watchdogs.insert(token, (replica, tag));
            cx.set_timer(policy.timeout, token);
        }
    }

    /// A replica request produced no response within the timeout window:
    /// retry with bounded exponential backoff, and once the session has
    /// timed out `fail_threshold` requests in a row, fail the replica.
    fn handle_replica_timeout(&mut self, cx: &mut Cx<'_>, replica: usize, tag: IoTag) {
        let Some(policy) = self.cfg.retry else {
            return;
        };
        let Some(sess) = self.replicas.get_mut(replica) else {
            return;
        };
        // The response arrived (or the session already failed over).
        let Some(mut req) = sess.pending.remove(&tag) else {
            return;
        };
        sess.timeouts += 1;
        if sess.timeouts >= policy.fail_threshold {
            let (svc, ctx, origin) = (req.svc, req.ctx, req.origin);
            self.fail_replica(cx, replica);
            // `fail_replica` drained the remaining pending requests; this
            // one was removed above, so report it failed separately.
            let mut scx = SvcCtx::new(cx.now());
            self.services[svc].on_replica_done(&mut scx, replica, ctx, false, Bytes::new());
            self.run_side_actions(cx, svc, scx, origin);
            return;
        }
        if req.attempts < policy.max_retries {
            req.attempts += 1;
            let backoff = policy.backoff(req.attempts);
            let token = self.token();
            self.retries.insert(token, (replica, req));
            cx.set_timer(backoff, token);
        } else {
            // Out of retries: this request alone is failed to its service.
            let (svc, ctx, origin) = (req.svc, req.ctx, req.origin);
            let mut scx = SvcCtx::new(cx.now());
            self.services[svc].on_replica_done(&mut scx, replica, ctx, false, Bytes::new());
            self.run_side_actions(cx, svc, scx, origin);
        }
    }

    fn flush_replica(&mut self, cx: &mut Cx<'_>, idx: usize) {
        if let Some(sess) = self.replicas.get_mut(idx) {
            if let Some(sock) = sess.sock {
                for c in sess.ini.take_wire() {
                    sess.sendq.push_bytes(c);
                }
                sess.sendq.pump(cx, sock);
            }
        }
    }

    fn handle_pair_data(&mut self, cx: &mut Cx<'_>, pair_idx: usize, side: Side, data: Bytes) {
        // The tenant VM's first byte decides the flow's wire protocol:
        // nvmeq frames all start with the magic byte, iSCSI logins never
        // do. One relay (and one steering rule) serves both transports.
        {
            let pair = &mut self.pairs[pair_idx];
            if matches!(pair.proto, PairProto::Undecided) && side == Side::Server {
                pair.proto = if data.first() == Some(&MAGIC) {
                    PairProto::Nvmeq(Box::new(NvqPair::new()))
                } else {
                    PairProto::Iscsi
                };
            }
        }
        if matches!(self.pairs[pair_idx].proto, PairProto::Nvmeq(_)) {
            self.handle_pair_data_nvq(cx, pair_idx, side, data);
            return;
        }
        let now = cx.now();
        let dir = match side {
            Side::Server => Dir::ToTarget,
            Side::Client => Dir::ToInitiator,
        };
        let pdus = {
            let pair = &mut self.pairs[pair_idx];
            if side == Side::Server {
                pair.buffered_in += data.len();
            }
            let stream = match side {
                Side::Server => &mut pair.s_stream,
                Side::Client => &mut pair.c_stream,
            };
            match stream.feed_bytes(data) {
                Ok(p) => p,
                Err(_) => {
                    let (s, c) = (pair.server, pair.client);
                    pair.closed = true;
                    cx.abort(s);
                    cx.abort(c);
                    return;
                }
            }
        };
        // Backpressure: the persistence buffer is full.
        {
            let pair = &mut self.pairs[pair_idx];
            if side == Side::Server && !pair.paused && pair.buffered_in > self.cfg.buffer_cap {
                pair.paused = true;
                let s = pair.server;
                let src_port = pair.src_port;
                cx.pause(s);
                self.trace.emit_with(now, || TraceEvent::Mark {
                    req: flow_token(src_port),
                    hop: Hop::Buffer,
                    id: self.trace_mb,
                });
            }
        }
        for pw in pdus {
            let input_bytes = pw.pdu.wire_len();
            // Fault injection: an armed plan may drop or slow PDU
            // processing inside the middle-box.
            let mut fault_delay = SimDuration::ZERO;
            match self
                .fault
                .decide(now, FaultSite::MbProcess { mb: self.fault_mb })
            {
                FaultAction::Proceed => {}
                FaultAction::Drop | FaultAction::Fail => {
                    // Keep the persistence-buffer accounting draining.
                    if side == Side::Server {
                        let p = &mut self.pairs[pair_idx];
                        p.buffered_in = p.buffered_in.saturating_sub(input_bytes);
                    }
                    continue;
                }
                FaultAction::Delay(d) => fault_delay = d,
            }
            let itt = pw.pdu.itt();
            // Tenant rate limiting: request-direction PDUs draw from the
            // token bucket; the shaping delay is queueing (a later serve
            // start), not CPU, so an under-limit tenant's datapath is
            // byte-identical to the unlimited one.
            let qos_delay = match &mut self.limiter {
                Some(l) if dir == Dir::ToTarget => l.admit(now, input_bytes as u64),
                _ => SimDuration::ZERO,
            };
            if qos_delay > SimDuration::ZERO && self.trace.is_armed() {
                let req = req_token(self.pairs[pair_idx].src_port, itt);
                self.trace.emit(
                    now,
                    TraceEvent::Stage {
                        req,
                        hop: Hop::Qos,
                        id: self.trace_mb,
                        dur: qos_delay,
                    },
                );
            }
            let (in_bhs, in_data, in_wire) = (pw.bhs, pw.data, pw.wire);
            let (forwards, replies, replica_ops, cost, timers, svc_costs) =
                self.run_chain(now, dir, pw.pdu);
            let cost = cost + fault_delay;
            // Verbatim-forward fast path: the chain emitted exactly the
            // PDU it was given (same header bytes, same data storage), so
            // the original wire image is forwarded and nothing re-encodes.
            // The storage-identity check makes this O(header): a service
            // that rewrote the payload necessarily produced new storage.
            let forwards = if forwards.len() == 1
                && forwards[0].encode_bhs() == in_bhs
                && forwards[0].data().same_storage(&in_data)
            {
                self.verbatim_forwards += 1;
                vec![PduOut::Verbatim(in_wire)]
            } else {
                forwards.into_iter().map(PduOut::Encode).collect()
            };
            if self.trace.is_armed() {
                let req = req_token(self.pairs[pair_idx].src_port, itt);
                self.trace.emit(
                    now,
                    TraceEvent::Stage {
                        req,
                        hop: Hop::Relay,
                        id: self.trace_mb,
                        dur: self.cfg.per_pdu_cost,
                    },
                );
                for (svc_idx, charged) in &svc_costs {
                    self.trace.emit(
                        now,
                        TraceEvent::Stage {
                            req,
                            hop: Hop::Service,
                            id: *svc_idx as u32,
                            dur: *charged,
                        },
                    );
                }
            }
            for (svc_idx, delay, token) in timers {
                let t = self.token();
                self.svc_timers.insert(t, (svc_idx, token));
                cx.set_timer(delay, t);
            }
            // Account CPU and serialize processing per flow.
            let _ = cx.charge(cost, &self.cfg.label);
            let done = self.pairs[pair_idx].proc.serve(now + qos_delay, cost);
            let token = self.token();
            self.deferred.insert(
                token,
                Deferred::Release {
                    pair: pair_idx,
                    forwards,
                    replies,
                    dir,
                    replica_ops,
                    input_bytes: if side == Side::Server { input_bytes } else { 0 },
                },
            );
            cx.set_timer(done - now, token);
        }
    }

    /// The multi-queue datapath: reassembles nvmeq frames, runs every
    /// command unit of a doorbell/completion frame through the service
    /// chain, and releases each frame as one store-and-forward deferral —
    /// so up to `queue_depth` commands stay in flight across the relay
    /// while the chain still sees one PDU at a time.
    fn handle_pair_data_nvq(&mut self, cx: &mut Cx<'_>, pair_idx: usize, side: Side, data: Bytes) {
        let now = cx.now();
        let dir = match side {
            Side::Server => Dir::ToTarget,
            Side::Client => Dir::ToInitiator,
        };
        let frames = {
            let pair = &mut self.pairs[pair_idx];
            if side == Side::Server {
                pair.buffered_in += data.len();
            }
            let PairProto::Nvmeq(nvq) = &mut pair.proto else {
                return;
            };
            let stream = match side {
                Side::Server => &mut nvq.s_stream,
                Side::Client => &mut nvq.c_stream,
            };
            match stream.feed_bytes(data) {
                Ok(f) => f,
                Err(_) => {
                    let (s, c) = (pair.server, pair.client);
                    pair.closed = true;
                    cx.abort(s);
                    cx.abort(c);
                    return;
                }
            }
        };
        // Backpressure: the persistence buffer is full.
        {
            let pair = &mut self.pairs[pair_idx];
            if side == Side::Server && !pair.paused && pair.buffered_in > self.cfg.buffer_cap {
                pair.paused = true;
                let s = pair.server;
                let src_port = pair.src_port;
                cx.pause(s);
                self.trace.emit_with(now, || TraceEvent::Mark {
                    req: flow_token(src_port),
                    hop: Hop::Buffer,
                    id: self.trace_mb,
                });
            }
        }
        for fw in frames {
            let input_bytes = FRAME_HDR_LEN + fw.header.payload_len as usize;
            let mut fault_delay = SimDuration::ZERO;
            match self
                .fault
                .decide(now, FaultSite::MbProcess { mb: self.fault_mb })
            {
                FaultAction::Proceed => {}
                FaultAction::Drop | FaultAction::Fail => {
                    if side == Side::Server {
                        let p = &mut self.pairs[pair_idx];
                        p.buffered_in = p.buffered_in.saturating_sub(input_bytes);
                    }
                    continue;
                }
                FaultAction::Delay(d) => fault_delay = d,
            }
            // Tenant rate limiting draws one admit per frame — a doorbell
            // batch is one shaping decision, matching its one network
            // transfer.
            let qos_delay = match &mut self.limiter {
                Some(l) if dir == Dir::ToTarget => l.admit(now, input_bytes as u64),
                _ => SimDuration::ZERO,
            };
            if qos_delay > SimDuration::ZERO && self.trace.is_armed() {
                let cid = fw.units.first().map_or(0, |u| match &u.entry {
                    UnitEntry::Sqe(s) => s.cid,
                    UnitEntry::Cqe(c) => c.cid,
                });
                let req = req_token(self.pairs[pair_idx].src_port, cid);
                self.trace.emit(
                    now,
                    TraceEvent::Stage {
                        req,
                        hop: Hop::Qos,
                        id: self.trace_mb,
                        dur: qos_delay,
                    },
                );
            }
            let (fout, replies, replica_ops, cost) =
                if matches!(fw.header.kind, FrameKind::Doorbell | FrameKind::Completion) {
                    self.run_chain_frame(cx, now, dir, pair_idx, &fw, fault_delay)
                } else {
                    // Handshake frames bypass the chain: the relay
                    // forwards the connect/disconnect exchange verbatim,
                    // like splicing does for iSCSI login on the passive
                    // path.
                    (
                        PduOut::NvqVerbatim {
                            wire: fw.wire,
                            units: 1,
                        },
                        Vec::new(),
                        Vec::new(),
                        self.cfg.per_pdu_cost + fault_delay,
                    )
                };
            let _ = cx.charge(cost, &self.cfg.label);
            let done = self.pairs[pair_idx].proc.serve(now + qos_delay, cost);
            let token = self.token();
            self.deferred.insert(
                token,
                Deferred::Release {
                    pair: pair_idx,
                    forwards: vec![fout],
                    replies,
                    dir,
                    replica_ops,
                    input_bytes: if side == Side::Server { input_bytes } else { 0 },
                },
            );
            cx.set_timer(done - now, token);
        }
    }

    /// Runs every command unit of one doorbell/completion frame through
    /// the service chain. Units the chain passes untouched stay wire
    /// views; if *all* of them do, the whole received frame forwards
    /// verbatim — the batched analogue of the iSCSI fast path.
    #[allow(clippy::type_complexity)]
    fn run_chain_frame(
        &mut self,
        cx: &mut Cx<'_>,
        now: SimTime,
        dir: Dir,
        pair_idx: usize,
        fw: &FrameWire,
        fault_delay: SimDuration,
    ) -> (
        PduOut,
        Vec<Pdu>,
        Vec<(usize, usize, ReplicaIo, u64)>,
        SimDuration,
    ) {
        let src_port = self.pairs[pair_idx].src_port;
        let mut cost = fault_delay;
        let mut out_units: Vec<UnitOut> = Vec::with_capacity(fw.units.len());
        let mut replies = Vec::new();
        let mut replica_ops = Vec::new();
        let mut frame_verbatim = true;
        for unit in &fw.units {
            let pdu = queue::unit_to_pdu(unit);
            let cid = pdu.itt();
            let in_bhs = pdu.encode_bhs();
            let (forwards, mut unit_replies, mut unit_replica, unit_cost, timers, svc_costs) =
                self.run_chain(now, dir, pdu);
            cost += unit_cost;
            if self.trace.is_armed() {
                let req = req_token(src_port, cid);
                self.trace.emit(
                    now,
                    TraceEvent::Stage {
                        req,
                        hop: Hop::Relay,
                        id: self.trace_mb,
                        dur: self.cfg.per_pdu_cost,
                    },
                );
                for (svc_idx, charged) in &svc_costs {
                    self.trace.emit(
                        now,
                        TraceEvent::Stage {
                            req,
                            hop: Hop::Service,
                            id: *svc_idx as u32,
                            dur: *charged,
                        },
                    );
                }
            }
            for (svc_idx, delay, token) in timers {
                let t = self.token();
                self.svc_timers.insert(t, (svc_idx, token));
                cx.set_timer(delay, t);
            }
            let verbatim = forwards.len() == 1
                && forwards[0].encode_bhs() == in_bhs
                && forwards[0].data().same_storage(&unit.data);
            let PairProto::Nvmeq(nvq) = &mut self.pairs[pair_idx].proto else {
                return (
                    PduOut::NvqVerbatim {
                        wire: Vec::new(),
                        units: 0,
                    },
                    replies,
                    replica_ops,
                    cost,
                );
            };
            if verbatim {
                self.verbatim_forwards += 1;
                queue::note_verbatim(unit, nvq);
                out_units.push(UnitOut::Verbatim {
                    entry_wire: unit.entry_wire.clone(),
                    data: unit.data.clone(),
                });
            } else {
                frame_verbatim = false;
                for f in &forwards {
                    if let Some(u) = queue::pdu_to_unit(dir, f, nvq) {
                        out_units.push(u);
                    }
                }
            }
            replies.append(&mut unit_replies);
            replica_ops.append(&mut unit_replica);
        }
        let fout = if frame_verbatim {
            PduOut::NvqVerbatim {
                wire: fw.wire.clone(),
                units: (fw.units.len() as u64).max(1),
            }
        } else {
            PduOut::NvqFrame {
                kind: fw.header.kind,
                units: out_units,
            }
        };
        (fout, replies, replica_ops, cost)
    }

    fn release(&mut self, cx: &mut Cx<'_>, d: Deferred) {
        let Deferred::Release {
            pair,
            forwards,
            replies,
            dir,
            replica_ops,
            input_bytes,
        } = d;
        if pair >= self.pairs.len() || self.pairs[pair].closed {
            return;
        }
        for (svc_idx, replica, io, ctx) in replica_ops {
            self.issue_replica(cx, svc_idx, replica, io, ctx, Some(pair));
        }
        let copied = &mut self.encode_bytes_copied;
        let hdr_copied = &mut self.encode_header_bytes;
        let p = &mut self.pairs[pair];
        for f in forwards {
            let q = match dir {
                Dir::ToTarget => &mut p.c_out,
                Dir::ToInitiator => &mut p.s_out,
            };
            match f {
                PduOut::Verbatim(chunks) => {
                    self.pdus_forwarded += 1;
                    q.push_all(chunks);
                }
                PduOut::Encode(pdu) => {
                    self.pdus_forwarded += 1;
                    Self::queue_pdu(copied, q, &pdu);
                }
                PduOut::NvqVerbatim { wire, units } => {
                    self.pdus_forwarded += units;
                    q.push_all(wire);
                }
                PduOut::NvqFrame { kind, units } => {
                    self.pdus_forwarded += units.len() as u64;
                    queue::queue_frame(kind, units, q, copied, hdr_copied);
                }
            }
        }
        if !replies.is_empty() {
            if let PairProto::Nvmeq(nvq) = &mut p.proto {
                // Chain replies on a multi-queue flow coalesce into one
                // frame headed back where the triggering frame came from.
                let units: Vec<UnitOut> = replies
                    .iter()
                    .filter_map(|r| queue::pdu_to_unit(dir.flip(), r, nvq))
                    .collect();
                if !units.is_empty() {
                    let kind = match dir {
                        Dir::ToTarget => FrameKind::Completion,
                        Dir::ToInitiator => FrameKind::Doorbell,
                    };
                    let q = match dir {
                        Dir::ToTarget => &mut p.s_out,
                        Dir::ToInitiator => &mut p.c_out,
                    };
                    self.pdus_forwarded += units.len() as u64;
                    queue::queue_frame(kind, units, q, copied, hdr_copied);
                }
            } else {
                for r in replies {
                    self.pdus_forwarded += 1;
                    let q = match dir {
                        Dir::ToTarget => &mut p.s_out,
                        Dir::ToInitiator => &mut p.c_out,
                    };
                    Self::queue_pdu(copied, q, &r);
                }
            }
        }
        let (server, client) = (p.server, p.client);
        p.buffered_in = p.buffered_in.saturating_sub(input_bytes);
        let resume = p.paused && p.buffered_in < self.cfg.buffer_cap / 2;
        if resume {
            p.paused = false;
        }
        let pr = &mut self.pairs[pair];
        pr.c_out.pump(cx, client);
        pr.s_out.pump(cx, server);
        if resume {
            cx.resume(server);
        }
    }

    fn handle_replica_events(&mut self, cx: &mut Cx<'_>, idx: usize, events: Vec<InitiatorEvent>) {
        for ev in events {
            match ev {
                InitiatorEvent::LoginComplete => {
                    let parked = {
                        let sess = &mut self.replicas[idx];
                        sess.up = true;
                        std::mem::take(&mut sess.parked)
                    };
                    for (svc_idx, io, ctx, origin) in parked {
                        self.issue_replica(cx, svc_idx, idx, io, ctx, origin);
                    }
                }
                InitiatorEvent::LoginFailed { .. } => self.fail_replica(cx, idx),
                InitiatorEvent::WriteComplete { tag, status }
                | InitiatorEvent::FlushComplete { tag, status } => {
                    if let Some(req) = self.replicas[idx].pending.remove(&tag) {
                        self.replicas[idx].timeouts = 0;
                        let ok = status == ScsiStatus::Good;
                        let mut scx = SvcCtx::new(cx.now());
                        self.services[req.svc].on_replica_done(
                            &mut scx,
                            idx,
                            req.ctx,
                            ok,
                            Bytes::new(),
                        );
                        self.run_side_actions(cx, req.svc, scx, req.origin);
                    }
                }
                InitiatorEvent::ReadComplete { tag, status, data } => {
                    if let Some(req) = self.replicas[idx].pending.remove(&tag) {
                        self.replicas[idx].timeouts = 0;
                        let ok = status == ScsiStatus::Good;
                        let mut scx = SvcCtx::new(cx.now());
                        self.services[req.svc].on_replica_done(&mut scx, idx, req.ctx, ok, data);
                        self.run_side_actions(cx, req.svc, scx, req.origin);
                    }
                }
                InitiatorEvent::LoggedOut => self.fail_replica(cx, idx),
                InitiatorEvent::ProtocolError(_) => self.fail_replica(cx, idx),
            }
        }
        self.flush_replica(cx, idx);
    }

    /// Opens (or re-opens) every configured replica session.
    fn connect_replicas(&mut self, cx: &mut Cx<'_>) {
        self.replicas.clear();
        self.replica_socks.clear();
        for i in 0..self.cfg.replicas.len() {
            let portal = self.cfg.replicas[i].portal;
            let sock = cx.connect(portal);
            let ini = Initiator::new(InitiatorConfig {
                initiator_iqn: self.cfg.initiator_iqn.clone(),
                target_iqn: self.cfg.replicas[i].iqn.clone(),
                params: SessionParams::default(),
                isid: [0x80, 0, 0, 0x10, 0, self.replicas.len() as u8],
            });
            let idx = self.replicas.len();
            self.replicas.push(ReplicaSession {
                ini,
                sock: Some(sock),
                sendq: SendQueue::new(),
                pending: BTreeMap::new(),
                parked: Vec::new(),
                up: false,
                failed: false,
                timeouts: 0,
            });
            self.replica_socks.insert(sock, idx);
        }
    }

    /// Crashes the middle-box VM: every flow and replica session is cut
    /// and all in-flight state is lost, like a power failure.
    fn crash(&mut self, cx: &mut Cx<'_>) {
        if self.crashed {
            return;
        }
        self.crashed = true;
        for pair in &mut self.pairs {
            if !pair.closed {
                pair.closed = true;
                cx.abort(pair.server);
                cx.abort(pair.client);
            }
            self.retired_copy_stats.data_bytes_copied +=
                pair.s_stream.bytes_copied() + pair.c_stream.bytes_copied();
            self.retired_copy_stats.header_bytes_copied +=
                pair.s_stream.header_bytes_copied() + pair.c_stream.header_bytes_copied();
            if let PairProto::Nvmeq(nvq) = &pair.proto {
                self.retired_copy_stats.data_bytes_copied +=
                    nvq.s_stream.bytes_copied() + nvq.c_stream.bytes_copied();
                self.retired_copy_stats.header_bytes_copied +=
                    nvq.s_stream.header_bytes_copied() + nvq.c_stream.header_bytes_copied();
            }
        }
        self.pairs.clear();
        self.by_sock.clear();
        for sess in &mut self.replicas {
            if let Some(sock) = sess.sock.take() {
                cx.abort(sock);
            }
        }
        self.replicas.clear();
        self.replica_socks.clear();
        self.deferred.clear();
        self.svc_timers.clear();
        self.watchdogs.clear();
        self.retries.clear();
    }

    /// Boots the middle-box back up. Replica sessions reconnect from
    /// scratch; service state (e.g. replicas a service already evicted)
    /// survives, as it would on a warm restart from a persistence buffer.
    fn restart(&mut self, cx: &mut Cx<'_>) {
        if !self.crashed {
            return;
        }
        self.crashed = false;
        self.connect_replicas(cx);
    }

    fn fail_replica(&mut self, cx: &mut Cx<'_>, idx: usize) {
        let outstanding: Vec<(usize, u64, Option<usize>)> = {
            let sess = &mut self.replicas[idx];
            if sess.failed {
                return;
            }
            sess.failed = true;
            sess.up = false;
            std::mem::take(&mut sess.pending)
                .into_values()
                .map(|v| (v.svc, v.ctx, v.origin))
                .collect()
        };
        self.trace.emit_with(cx.now(), || TraceEvent::ReplicaEvict {
            mb: self.trace_mb,
            replica: idx as u32,
        });
        // Fail outstanding I/O back to the owning services, then tell
        // every service the replica is gone.
        for (svc_idx, ctx, origin) in outstanding {
            let mut scx = SvcCtx::new(cx.now());
            self.services[svc_idx].on_replica_done(&mut scx, idx, ctx, false, Bytes::new());
            self.run_side_actions(cx, svc_idx, scx, origin);
        }
        for svc_idx in 0..self.services.len() {
            let mut scx = SvcCtx::new(cx.now());
            self.services[svc_idx].on_replica_failed(&mut scx, idx);
            self.run_side_actions(cx, svc_idx, scx, None);
        }
    }
}

impl App for ActiveRelayMb {
    fn on_start(&mut self, cx: &mut Cx<'_>) {
        cx.listen(self.cfg.listen_port);
        self.connect_replicas(cx);
    }

    fn on_bus(&mut self, cx: &mut Cx<'_>, _from: HostId, msg: BusMsg) {
        if let Ok(ctl) = msg.downcast::<MbControl>() {
            match ctl {
                MbControl::Crash => self.crash(cx),
                MbControl::Restart => self.restart(cx),
            }
        }
    }

    fn on_connected(&mut self, cx: &mut Cx<'_>, sock: SockId) {
        if let Some(&idx) = self.replica_socks.get(&sock) {
            self.replicas[idx].ini.start_login();
            self.flush_replica(cx, idx);
        }
        // Pseudo-client connections need no handshake hook: queued bytes
        // flush automatically.
    }

    fn on_connect_failed(&mut self, cx: &mut Cx<'_>, sock: SockId) {
        if let Some(&idx) = self.replica_socks.get(&sock) {
            self.fail_replica(cx, idx);
        } else if let Some(&(pair, _)) = self.by_sock.get(&sock) {
            let server = self.pairs[pair].server;
            self.pairs[pair].closed = true;
            cx.abort(server);
        }
    }

    fn on_accepted(&mut self, cx: &mut Cx<'_>, _port: u16, sock: SockId) {
        if self.crashed {
            cx.abort(sock);
            return;
        }
        // New steered flow: open the upstream leg, binding the flow's
        // original source port so port-matched chain rules keep working.
        let src_port = cx.tuple_of(sock).map(|t| t.dst.port);
        let client = cx.connect_from(self.cfg.upstream, src_port);
        let pair_idx = self.pairs.len();
        self.pairs.push(FlowPair {
            server: sock,
            client,
            src_port: src_port.unwrap_or(0),
            proto: PairProto::Undecided,
            s_stream: PduStream::new(),
            c_stream: PduStream::new(),
            s_out: SendQueue::new(),
            c_out: SendQueue::new(),
            buffered_in: 0,
            paused: false,
            proc: SerialResource::new(),
            closed: false,
        });
        self.by_sock.insert(sock, (pair_idx, Side::Server));
        self.by_sock.insert(client, (pair_idx, Side::Client));
    }

    fn on_data(&mut self, cx: &mut Cx<'_>, sock: SockId, data: Bytes) {
        if let Some(&idx) = self.replica_socks.get(&sock) {
            let events = self.replicas[idx].ini.feed_bytes(data);
            self.handle_replica_events(cx, idx, events);
            return;
        }
        if let Some(&(pair, side)) = self.by_sock.get(&sock) {
            self.handle_pair_data(cx, pair, side, data);
        }
    }

    fn on_writable(&mut self, cx: &mut Cx<'_>, sock: SockId) {
        if let Some(&idx) = self.replica_socks.get(&sock) {
            self.flush_replica(cx, idx);
            return;
        }
        if let Some(&(pair, side)) = self.by_sock.get(&sock) {
            let p = &mut self.pairs[pair];
            match side {
                Side::Server => {
                    let s = p.server;
                    p.s_out.pump(cx, s);
                }
                Side::Client => {
                    let c = p.client;
                    p.c_out.pump(cx, c);
                }
            }
        }
    }

    fn on_timer(&mut self, cx: &mut Cx<'_>, token: u64) {
        if let Some(d) = self.deferred.remove(&token) {
            self.release(cx, d);
        } else if let Some((svc_idx, user_token)) = self.svc_timers.remove(&token) {
            let mut scx = SvcCtx::new(cx.now());
            self.services[svc_idx].on_timer(&mut scx, user_token);
            self.run_side_actions(cx, svc_idx, scx, None);
        } else if let Some((replica, tag)) = self.watchdogs.remove(&token) {
            self.handle_replica_timeout(cx, replica, tag);
        } else if let Some((replica, req)) = self.retries.remove(&token) {
            self.issue_replica_attempt(cx, replica, req);
            self.flush_replica(cx, replica);
        }
    }

    fn on_closed(&mut self, cx: &mut Cx<'_>, sock: SockId, _reason: CloseReason) {
        if let Some(&idx) = self.replica_socks.get(&sock) {
            self.fail_replica(cx, idx);
            return;
        }
        if let Some(&(pair, side)) = self.by_sock.get(&sock) {
            let p = &mut self.pairs[pair];
            if !p.closed {
                p.closed = true;
                // Propagate the close to the other leg.
                let other = match side {
                    Side::Server => p.client,
                    Side::Client => p.server,
                };
                cx.close(other);
            }
        }
    }
}

impl std::fmt::Debug for ActiveRelayMb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveRelayMb")
            .field("pairs", &self.pairs.len())
            .field("services", &self.services.len())
            .field("replicas", &self.replicas.len())
            .finish_non_exhaustive()
    }
}

//! The passive relay: per-packet interception on the forwarding path.

use std::collections::HashMap;

use storm_iscsi::Cdb;
use storm_net::{App, Cx, FourTuple, Frame, TapVerdict};
use storm_sim::trace::{flow_token, Hop, TraceEvent, TraceHook};
use storm_sim::{SimDuration, SimTime};

use crate::service::{Dir, StorageService};

/// Configuration of a passive tap.
#[derive(Debug, Clone, Copy)]
pub struct PassiveTapConfig {
    /// The iSCSI port identifying storage flows (3260).
    pub iscsi_port: u16,
}

impl Default for PassiveTapConfig {
    fn default() -> Self {
        PassiveTapConfig {
            iscsi_port: storm_iscsi::ISCSI_PORT,
        }
    }
}

/// Context of an in-flight data segment, derived from its PDU header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DataCtx {
    /// Absolute byte offset on the volume of the segment's first byte
    /// (None for non-data segments: login text, sense data…).
    vol_offset: Option<u64>,
}

#[derive(Debug)]
enum TrackState {
    /// Collecting the 48-byte BHS.
    Header,
    /// Consuming `remaining` data bytes then `pad` pad bytes.
    Data {
        remaining: usize,
        pad: usize,
        ctx: DataCtx,
        consumed: usize,
    },
}

/// Incremental per-direction PDU boundary tracker.
///
/// Unlike [`storm_iscsi::PduStream`], this never buffers payload bytes: it
/// walks packet payloads as they stream past (the passive relay cannot
/// hold packets) and reports which byte ranges are data-segment bytes and
/// where they land on the volume.
#[derive(Debug)]
pub struct WireTracker {
    state: TrackState,
    hdr: Vec<u8>,
    pdus: u64,
}

impl Default for WireTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl WireTracker {
    /// Creates a tracker at a PDU boundary.
    pub fn new() -> Self {
        WireTracker {
            state: TrackState::Header,
            hdr: Vec::with_capacity(48),
            pdus: 0,
        }
    }

    /// PDUs whose headers have been parsed.
    pub fn pdus(&self) -> u64 {
        self.pdus
    }

    /// Walks `payload`, returning `(range_in_payload, vol_offset)` for
    /// every data-segment byte run. `lba_of` resolves an itt to the
    /// command's first sector (shared between both directions' trackers).
    pub fn walk(
        &mut self,
        payload: &[u8],
        shared_cmds: &mut HashMap<u32, u64>,
    ) -> Vec<(std::ops::Range<usize>, u64)> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < payload.len() {
            match &mut self.state {
                TrackState::Header => {
                    let need = 48 - self.hdr.len();
                    let take = need.min(payload.len() - pos);
                    self.hdr.extend_from_slice(&payload[pos..pos + take]);
                    pos += take;
                    if self.hdr.len() == 48 {
                        self.pdus += 1;
                        let dsl = storm_iscsi::data_segment_length(&self.hdr)
                            .expect("hdr is exactly BHS_LEN bytes");
                        let pad = dsl.div_ceil(4) * 4 - dsl;
                        let ctx = self.classify_header(shared_cmds);
                        self.hdr.clear();
                        if dsl > 0 {
                            self.state = TrackState::Data {
                                remaining: dsl,
                                pad,
                                ctx,
                                consumed: 0,
                            };
                        }
                    }
                }
                TrackState::Data {
                    remaining,
                    pad,
                    ctx,
                    consumed,
                } => {
                    if *remaining > 0 {
                        let take = (*remaining).min(payload.len() - pos);
                        if let Some(base) = ctx.vol_offset {
                            out.push((pos..pos + take, base + *consumed as u64));
                        }
                        *consumed += take;
                        *remaining -= take;
                        pos += take;
                    }
                    if *remaining == 0 {
                        let skip = (*pad).min(payload.len() - pos);
                        pos += skip;
                        *pad -= skip;
                        if *pad == 0 {
                            self.state = TrackState::Header;
                        }
                    }
                }
            }
        }
        out
    }

    /// Parses the buffered header, learning itt→lba mappings from SCSI
    /// commands and resolving Data-In/Data-Out volume offsets.
    fn classify_header(&mut self, shared_cmds: &mut HashMap<u32, u64>) -> DataCtx {
        let h = &self.hdr;
        let opcode = h[0] & 0x3F;
        let itt = u32::from_be_bytes(h[16..20].try_into().expect("4 bytes"));
        match opcode {
            0x01 => {
                // SCSI Command: learn the LBA; immediate data starts at
                // offset 0 of the buffer.
                let cdb: [u8; 16] = h[32..48].try_into().expect("16 bytes");
                if let Ok(Cdb::Write { lba, .. } | Cdb::Read { lba, .. }) = Cdb::parse(&cdb) {
                    shared_cmds.insert(itt, lba);
                    return DataCtx {
                        vol_offset: Some(lba * 512),
                    };
                }
                DataCtx { vol_offset: None }
            }
            0x05 | 0x25 => {
                // Data-Out / Data-In: buffer offset at bytes 40..44.
                let buf_off = u32::from_be_bytes(h[40..44].try_into().expect("4 bytes"));
                let vol = shared_cmds.get(&itt).map(|lba| lba * 512 + buf_off as u64);
                DataCtx { vol_offset: vol }
            }
            0x21 => {
                // SCSI Response: the command is complete.
                shared_cmds.remove(&itt);
                DataCtx { vol_offset: None }
            }
            _ => DataCtx { vol_offset: None },
        }
    }
}

/// The passive-relay tap application. Installed on a forwarding
/// middle-box node via [`storm_net::Network::set_tap`]; transforms
/// in-flight data through the service chain's `transform` hooks.
pub struct PassiveTap {
    cfg: PassiveTapConfig,
    services: Vec<Box<dyn StorageService>>,
    trackers: HashMap<(FourTuple, Dir), WireTracker>,
    cmds: HashMap<FourTuple, HashMap<u32, u64>>,
    packets: u64,
    bytes_transformed: u64,
    trace: TraceHook,
}

impl PassiveTap {
    /// Creates a tap running `services` (their `transform` hooks).
    pub fn new(cfg: PassiveTapConfig, services: Vec<Box<dyn StorageService>>) -> Self {
        PassiveTap {
            cfg,
            services,
            trackers: HashMap::new(),
            cmds: HashMap::new(),
            packets: 0,
            bytes_transformed: 0,
            trace: TraceHook::none(),
        }
    }

    /// Arms this tap's trace hook; `mb` identifies the middle-box in
    /// [`TraceEvent::Meta`] labels. Emits one `Meta` for the tap itself and
    /// one per chained service so the analyzer can label service stages.
    pub fn set_trace_hook(&mut self, hook: TraceHook, mb: u32) {
        self.trace = hook;
        if self.trace.is_armed() {
            self.trace.emit(
                SimTime::ZERO,
                TraceEvent::Meta {
                    hop: Hop::Relay,
                    id: mb,
                    name: "passive-tap".to_string(),
                },
            );
            for (idx, svc) in self.services.iter().enumerate() {
                self.trace.emit(
                    SimTime::ZERO,
                    TraceEvent::Meta {
                        hop: Hop::Service,
                        id: idx as u32,
                        name: svc.name().to_string(),
                    },
                );
            }
        }
    }

    /// Packets inspected.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Data-segment bytes transformed.
    pub fn bytes_transformed(&self) -> u64 {
        self.bytes_transformed
    }

    fn flow_key(&self, frame: &Frame) -> Option<(FourTuple, Dir)> {
        if frame.tcp.dst_port == self.cfg.iscsi_port {
            Some((frame.tuple(), Dir::ToTarget))
        } else if frame.tcp.src_port == self.cfg.iscsi_port {
            Some((frame.tuple().reversed(), Dir::ToInitiator))
        } else {
            None
        }
    }
}

impl App for PassiveTap {
    fn on_tap(&mut self, cx: &mut Cx<'_>, frame: &mut Frame) -> TapVerdict {
        let Some((base_tuple, dir)) = self.flow_key(frame) else {
            return TapVerdict::Forward;
        };
        self.packets += 1;
        if frame.tcp.payload.is_empty() {
            return TapVerdict::Forward;
        }
        let payload_len = frame.tcp.payload.len();
        // Per-service per-byte work, attributed to the flow (the net layer
        // separately charges the tap's fixed per-packet cost as Relay).
        if self.trace.is_armed() {
            let req = flow_token(base_tuple.src.port);
            for (idx, svc) in self.services.iter().enumerate() {
                self.trace.emit(
                    cx.now(),
                    TraceEvent::Stage {
                        req,
                        hop: Hop::Service,
                        id: idx as u32,
                        dur: svc.per_byte_cost() * payload_len as u64,
                    },
                );
            }
        }
        let cmds = self.cmds.entry(base_tuple).or_default();
        let tracker = self.trackers.entry((base_tuple, dir)).or_default();
        // The tap copies the packet to user space anyway, so flattening a
        // scatter-gather payload here models the passive approach's cost,
        // not an accident of the simulator.
        let flat = frame.tcp.payload.to_bytes();
        let runs = tracker.walk(&flat, cmds);
        let mut per_byte = SimDuration::ZERO;
        for svc in &self.services {
            per_byte += svc.per_byte_cost();
        }
        if !runs.is_empty() {
            let mut data = flat.to_vec();
            for (range, vol_offset) in &runs {
                for svc in &mut self.services {
                    svc.transform(dir, *vol_offset, &mut data[range.clone()]);
                }
                self.bytes_transformed += range.len() as u64;
            }
            frame.tcp.payload = bytes::Bytes::from(data).into();
        }
        // The whole payload is copied to user space (one syscall per
        // packet); processing cost scales with payload bytes.
        TapVerdict::ForwardAfter(per_byte * payload_len as u64)
    }
}

impl std::fmt::Debug for PassiveTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassiveTap")
            .field("packets", &self.packets)
            .field("services", &self.services.len())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use storm_iscsi::{DataOut, Pdu, ScsiCommand};

    fn write_cmd(itt: u32, lba: u64, edtl: u32, imm: &[u8]) -> Vec<u8> {
        Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: true,
            lun: 0,
            itt,
            edtl,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: Cdb::Write {
                lba,
                sectors: edtl / 512,
            }
            .to_bytes(),
            data: Bytes::copy_from_slice(imm),
        })
        .encode()
    }

    #[test]
    fn tracker_locates_immediate_data() {
        let mut t = WireTracker::new();
        let mut cmds = HashMap::new();
        let wire = write_cmd(1, 100, 1024, &[0xAA; 1024]);
        let runs = t.walk(&wire, &mut cmds);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].0, 48..48 + 1024);
        assert_eq!(runs[0].1, 100 * 512);
        assert_eq!(cmds.get(&1), Some(&100));
        assert_eq!(t.pdus(), 1);
    }

    #[test]
    fn tracker_handles_fragmentation_across_packets() {
        let mut t = WireTracker::new();
        let mut cmds = HashMap::new();
        let wire = write_cmd(2, 8, 2048, &[0xBB; 2048]);
        // Feed in 100-byte fragments; collect (vol_offset, len) runs.
        let mut runs = Vec::new();
        for chunk in wire.chunks(100) {
            for (r, off) in t.walk(chunk, &mut cmds) {
                runs.push((off, r.len()));
            }
        }
        let total: usize = runs.iter().map(|(_, l)| l).sum();
        assert_eq!(total, 2048);
        // Offsets are continuous from lba*512.
        assert_eq!(runs[0].0, 8 * 512);
        let mut expect = 8 * 512;
        for (off, len) in runs {
            assert_eq!(off, expect);
            expect += len as u64;
        }
    }

    #[test]
    fn tracker_resolves_data_out_by_itt() {
        let mut t = WireTracker::new();
        let mut cmds = HashMap::new();
        // Command with no immediate data...
        let wire = write_cmd(3, 50, 4096, &[]);
        assert!(t.walk(&wire, &mut cmds).is_empty());
        // ...followed by a Data-Out at buffer offset 1024.
        let dout = Pdu::DataOut(DataOut {
            final_pdu: true,
            lun: 0,
            itt: 3,
            ttt: 9,
            exp_stat_sn: 1,
            data_sn: 0,
            buffer_offset: 1024,
            data: Bytes::from(vec![0xCC; 512]),
        })
        .encode();
        let runs = t.walk(&dout, &mut cmds);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].1, 50 * 512 + 1024);
    }

    #[test]
    fn non_data_pdus_produce_no_runs() {
        let mut t = WireTracker::new();
        let mut cmds = HashMap::new();
        let nop = Pdu::NopOut(storm_iscsi::NopOut {
            itt: 5,
            ttt: 0xFFFF_FFFF,
            cmd_sn: 1,
            exp_stat_sn: 1,
            data: Bytes::from_static(b"ping"),
        })
        .encode();
        // NOP payload is a data segment but has no volume offset.
        assert!(t.walk(&nop, &mut cmds).is_empty());
        assert_eq!(t.pdus(), 1);
    }
}

//! nvmeq ↔ PDU bridging: the active relay's multi-queue datapath.
//!
//! The service chain speaks iSCSI [`Pdu`]s; the nvmeq transport speaks
//! doorbell/completion frames carrying batches of fixed-size entries.
//! This module maps each command unit of a frame to a synthetic PDU
//! (SQE write → `ScsiCommand` with in-capsule data, CQE read → phase-
//! collapsed `DataIn`, and so on), so an unmodified service chain —
//! including verbatim-forward detection — processes deeply pipelined
//! multi-queue traffic unit by unit. Outbound units are re-framed under
//! a fresh 16-byte header; entry re-encodes are bounded fixed-size
//! metadata copies (counted), while data segments travel as refcounted
//! views — the zero-copy invariant holds on this transport too.

use std::collections::HashMap;

use bytes::Bytes;

use storm_iscsi::{Cdb, DataIn, Pdu, ScsiCommand, ScsiResponse, SHARE_THRESHOLD};
use storm_net::SendQueue;
use storm_nvmeq::{
    Cqe, FrameHeader, FrameKind, FrameStream, Sqe, SqeOp, UnitEntry, UnitWire, CQE_LEN,
    FRAME_HDR_LEN, SQE_LEN,
};

use crate::service::Dir;

/// Per-flow multi-queue relay state: one frame reassembler per leg plus
/// the in-flight command table (cid → opcode) that lets completions
/// produced by services (which only know the SCSI shape) re-encode with
/// the correct opcode echo.
#[derive(Debug, Default)]
pub(crate) struct NvqPair {
    /// Reassembler for the tenant-VM leg (doorbell frames).
    pub s_stream: FrameStream,
    /// Reassembler for the upstream leg (completion frames).
    pub c_stream: FrameStream,
    inflight: HashMap<u32, SqeOp>,
}

impl NvqPair {
    /// Creates empty per-flow state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a submission passing towards the target.
    pub fn note_submit(&mut self, cid: u32, op: SqeOp) {
        self.inflight.insert(cid, op);
    }

    /// Retires a command (a completion passed back) and returns its
    /// opcode, if the submission was seen.
    pub fn complete(&mut self, cid: u32) -> Option<SqeOp> {
        self.inflight.remove(&cid)
    }
}

/// One outbound command unit of a rebuilt frame.
#[derive(Debug)]
pub(crate) enum UnitOut {
    /// The chain forwarded the unit untouched: original entry and data
    /// wire views re-framed with zero payload copies.
    Verbatim {
        /// The received entry bytes (64 B SQE / 16 B CQE view).
        entry_wire: Bytes,
        /// The received data segment view.
        data: Bytes,
    },
    /// A (re-)encoded submission.
    Sqe {
        /// The entry.
        sqe: Sqe,
        /// In-capsule data.
        data: Bytes,
    },
    /// A (re-)encoded completion.
    Cqe {
        /// The entry.
        cqe: Cqe,
        /// Read payload.
        data: Bytes,
    },
}

impl UnitOut {
    fn entry_len(&self) -> usize {
        match self {
            UnitOut::Verbatim { entry_wire, .. } => entry_wire.len(),
            UnitOut::Sqe { .. } => SQE_LEN,
            UnitOut::Cqe { .. } => CQE_LEN,
        }
    }

    fn data(&self) -> &Bytes {
        match self {
            UnitOut::Verbatim { data, .. }
            | UnitOut::Sqe { data, .. }
            | UnitOut::Cqe { data, .. } => data,
        }
    }
}

/// Maps one received command unit to the synthetic PDU the service chain
/// processes. Doorbell SQEs become `ScsiCommand`s (writes carry their
/// in-capsule data, the immediate-data idiom); completion CQEs become a
/// phase-collapsed `DataIn` (reads) or a `ScsiResponse` (writes/flushes).
pub(crate) fn unit_to_pdu(unit: &UnitWire) -> Pdu {
    match &unit.entry {
        UnitEntry::Sqe(sqe) => {
            let (read, write, cdb) = match sqe.op {
                SqeOp::Read => (
                    true,
                    false,
                    Cdb::Read {
                        lba: sqe.lba,
                        sectors: sqe.sectors,
                    },
                ),
                SqeOp::Write => (
                    false,
                    true,
                    Cdb::Write {
                        lba: sqe.lba,
                        sectors: sqe.sectors,
                    },
                ),
                SqeOp::Flush => (false, false, Cdb::SynchronizeCache),
            };
            Pdu::ScsiCommand(ScsiCommand {
                immediate: false,
                final_pdu: true,
                read,
                write,
                lun: 0,
                itt: sqe.cid,
                edtl: match sqe.op {
                    SqeOp::Read => sqe.sectors * 512,
                    _ => sqe.data_len,
                },
                cmd_sn: sqe.cid,
                exp_stat_sn: 0,
                cdb: cdb.to_bytes(),
                data: unit.data.clone(),
            })
        }
        UnitEntry::Cqe(cqe) => match cqe.op {
            SqeOp::Read => Pdu::DataIn(DataIn {
                final_pdu: true,
                status_present: true,
                status: cqe.status,
                lun: 0,
                itt: cqe.cid,
                ttt: 0xffff_ffff,
                stat_sn: 0,
                exp_cmd_sn: 0,
                max_cmd_sn: 0,
                data_sn: 0,
                buffer_offset: 0,
                residual: 0,
                data: unit.data.clone(),
            }),
            SqeOp::Write | SqeOp::Flush => Pdu::ScsiResponse(ScsiResponse {
                itt: cqe.cid,
                response: 0,
                status: cqe.status,
                stat_sn: 0,
                exp_cmd_sn: 0,
                max_cmd_sn: 0,
                residual: 0,
                data: Bytes::new(),
            }),
        },
    }
}

/// Maps a chain-produced PDU back to a wire unit for the outbound frame,
/// maintaining the pair's in-flight table. PDU shapes with no multi-queue
/// equivalent (R2T, NOPs, text) return `None` and are dropped — no chain
/// service emits them on the relay datapath.
pub(crate) fn pdu_to_unit(dir: Dir, pdu: &Pdu, pair: &mut NvqPair) -> Option<UnitOut> {
    match dir {
        Dir::ToTarget => {
            let Pdu::ScsiCommand(c) = pdu else {
                return None;
            };
            let (op, data) = match Cdb::parse(&c.cdb).ok()? {
                Cdb::Read { lba, sectors } => (
                    Sqe {
                        op: SqeOp::Read,
                        cid: c.itt,
                        lba,
                        sectors,
                        data_len: 0,
                    },
                    Bytes::new(),
                ),
                Cdb::Write { lba, sectors } => (
                    Sqe {
                        op: SqeOp::Write,
                        cid: c.itt,
                        lba,
                        sectors,
                        data_len: c.data.len() as u32,
                    },
                    c.data.clone(),
                ),
                Cdb::SynchronizeCache => (
                    Sqe {
                        op: SqeOp::Flush,
                        cid: c.itt,
                        lba: 0,
                        sectors: 0,
                        data_len: 0,
                    },
                    Bytes::new(),
                ),
                _ => return None,
            };
            pair.note_submit(op.cid, op.op);
            Some(UnitOut::Sqe { sqe: op, data })
        }
        Dir::ToInitiator => match pdu {
            Pdu::DataIn(d) if d.final_pdu && d.status_present => {
                pair.complete(d.itt);
                Some(UnitOut::Cqe {
                    cqe: Cqe {
                        cid: d.itt,
                        status: d.status,
                        op: SqeOp::Read,
                        data_len: d.data.len() as u32,
                    },
                    data: d.data.clone(),
                })
            }
            Pdu::ScsiResponse(r) => {
                let op = pair.complete(r.itt).unwrap_or(SqeOp::Write);
                Some(UnitOut::Cqe {
                    cqe: Cqe {
                        cid: r.itt,
                        status: r.status,
                        op,
                        data_len: 0,
                    },
                    data: Bytes::new(),
                })
            }
            _ => None,
        },
    }
}

/// Keeps the pair's in-flight table current for a unit the chain passed
/// through verbatim (the fast path skips [`pdu_to_unit`] entirely).
pub(crate) fn note_verbatim(unit: &UnitWire, pair: &mut NvqPair) {
    match &unit.entry {
        UnitEntry::Sqe(sqe) => pair.note_submit(sqe.cid, sqe.op),
        UnitEntry::Cqe(cqe) => {
            pair.complete(cqe.cid);
        }
    }
}

/// Assembles one outbound frame — fresh header, entry block, then data
/// segments in entry order — onto a send queue. Fixed-size metadata
/// (header plus re-encoded entries) is copied and counted into
/// `header_copied`; verbatim entries and all large data segments travel
/// as shared views, small chain-produced segments are batched by copy
/// into `data_copied` exactly like the iSCSI encode path.
pub(crate) fn queue_frame(
    kind: FrameKind,
    units: Vec<UnitOut>,
    q: &mut SendQueue,
    data_copied: &mut u64,
    header_copied: &mut u64,
) {
    let payload_len: usize = units.iter().map(|u| u.entry_len() + u.data().len()).sum();
    let header = FrameHeader {
        kind,
        count: units.len() as u16,
        payload_len: payload_len as u32,
        queue_depth: 0,
    }
    .encode();
    *header_copied += FRAME_HDR_LEN as u64;
    q.push(&header);
    for u in &units {
        match u {
            UnitOut::Verbatim { entry_wire, .. } => q.push_bytes(entry_wire.clone()),
            UnitOut::Sqe { sqe, .. } => {
                *header_copied += SQE_LEN as u64;
                q.push(&sqe.encode());
            }
            UnitOut::Cqe { cqe, .. } => {
                *header_copied += CQE_LEN as u64;
                q.push(&cqe.encode());
            }
        }
    }
    for u in units {
        match u {
            UnitOut::Verbatim { data, .. } => q.push_bytes(data),
            UnitOut::Sqe { data, .. } | UnitOut::Cqe { data, .. } => {
                if data.len() >= SHARE_THRESHOLD {
                    q.push_bytes(data);
                } else {
                    *data_copied += data.len() as u64;
                    q.push(&data);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_iscsi::ScsiStatus;

    fn unit(entry: UnitEntry, data: &[u8]) -> UnitWire {
        let entry_wire = match &entry {
            UnitEntry::Sqe(s) => Bytes::copy_from_slice(&s.encode()),
            UnitEntry::Cqe(c) => Bytes::copy_from_slice(&c.encode()),
        };
        UnitWire {
            entry,
            entry_wire,
            data: Bytes::copy_from_slice(data),
        }
    }

    #[test]
    fn sqe_maps_to_scsi_command_and_back() {
        let mut pair = NvqPair::new();
        let payload = vec![0xAB; 4096];
        let sqe = Sqe {
            op: SqeOp::Write,
            cid: 9,
            lba: 64,
            sectors: 8,
            data_len: 4096,
        };
        let u = unit(UnitEntry::Sqe(sqe), &payload);
        let pdu = unit_to_pdu(&u);
        let Pdu::ScsiCommand(ref c) = pdu else {
            panic!("write SQE must map to a SCSI command");
        };
        assert!(c.write && !c.read);
        assert_eq!(c.itt, 9);
        assert_eq!(c.data.len(), 4096);
        assert_eq!(
            Cdb::parse(&c.cdb),
            Ok(Cdb::Write {
                lba: 64,
                sectors: 8
            })
        );
        let out = pdu_to_unit(Dir::ToTarget, &pdu, &mut pair).expect("round-trips");
        match out {
            UnitOut::Sqe { sqe: s, data } => {
                assert_eq!(s, sqe);
                assert!(data.same_storage(&u.data), "payload stays a view");
            }
            other => panic!("expected an SQE out, got {other:?}"),
        }
        assert_eq!(pair.complete(9), Some(SqeOp::Write));
    }

    #[test]
    fn read_cqe_maps_to_data_in_and_back() {
        let mut pair = NvqPair::new();
        let payload = vec![0x5C; 512];
        let cqe = Cqe {
            cid: 3,
            status: ScsiStatus::Good,
            op: SqeOp::Read,
            data_len: 512,
        };
        let u = unit(UnitEntry::Cqe(cqe), &payload);
        let pdu = unit_to_pdu(&u);
        let Pdu::DataIn(ref d) = pdu else {
            panic!("read CQE must map to DataIn");
        };
        assert!(d.status_present && d.final_pdu);
        let out = pdu_to_unit(Dir::ToInitiator, &pdu, &mut pair).expect("round-trips");
        match out {
            UnitOut::Cqe { cqe: c, data } => {
                assert_eq!(c, cqe);
                assert!(data.same_storage(&u.data));
            }
            other => panic!("expected a CQE out, got {other:?}"),
        }
    }

    #[test]
    fn flush_completion_recovers_opcode_from_inflight_table() {
        let mut pair = NvqPair::new();
        pair.note_submit(7, SqeOp::Flush);
        let resp = Pdu::ScsiResponse(ScsiResponse {
            itt: 7,
            response: 0,
            status: ScsiStatus::Good,
            stat_sn: 0,
            exp_cmd_sn: 0,
            max_cmd_sn: 0,
            residual: 0,
            data: Bytes::new(),
        });
        match pdu_to_unit(Dir::ToInitiator, &resp, &mut pair) {
            Some(UnitOut::Cqe { cqe, .. }) => assert_eq!(cqe.op, SqeOp::Flush),
            other => panic!("expected a CQE, got {other:?}"),
        }
        // Table entry consumed; an unknown cid falls back to Write.
        match pdu_to_unit(Dir::ToInitiator, &resp, &mut pair) {
            Some(UnitOut::Cqe { cqe, .. }) => assert_eq!(cqe.op, SqeOp::Write),
            other => panic!("expected a CQE, got {other:?}"),
        }
    }

    #[test]
    fn queue_frame_reencodes_metadata_only() {
        let mut q = SendQueue::new();
        let (mut dc, mut hc) = (0u64, 0u64);
        let big = Bytes::from(vec![0x77u8; SHARE_THRESHOLD]);
        let units = vec![UnitOut::Sqe {
            sqe: Sqe {
                op: SqeOp::Write,
                cid: 1,
                lba: 0,
                sectors: (SHARE_THRESHOLD / 512) as u32,
                data_len: SHARE_THRESHOLD as u32,
            },
            data: big,
        }];
        queue_frame(FrameKind::Doorbell, units, &mut q, &mut dc, &mut hc);
        assert_eq!(dc, 0, "large data travels as a shared view");
        assert_eq!(hc, (FRAME_HDR_LEN + SQE_LEN) as u64);
        assert_eq!(q.backlog(), FRAME_HDR_LEN + SQE_LEN + SHARE_THRESHOLD);
    }

    #[test]
    fn queue_frame_verbatim_units_copy_nothing_but_the_header() {
        let mut q = SendQueue::new();
        let (mut dc, mut hc) = (0u64, 0u64);
        let sqe = Sqe {
            op: SqeOp::Write,
            cid: 2,
            lba: 8,
            sectors: 1,
            data_len: 512,
        };
        let u = unit(UnitEntry::Sqe(sqe), &[0x11; 512]);
        let units = vec![UnitOut::Verbatim {
            entry_wire: u.entry_wire.clone(),
            data: u.data.clone(),
        }];
        queue_frame(FrameKind::Doorbell, units, &mut q, &mut dc, &mut hc);
        assert_eq!(dc, 0);
        assert_eq!(hc, FRAME_HDR_LEN as u64, "only the fresh frame header");
    }
}

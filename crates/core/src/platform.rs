//! The StorM platform: policy-driven middle-box deployment.
//!
//! Ties the pieces together exactly as §III-D describes: "the platform
//! first provisions the required middle-box VMs ... then retrieves the
//! connection attributions for each volume and generates and installs the
//! forwarding rules ... lastly, StorM connects the volumes to their VMs
//! with the middle-box services enabled."

use storm_cloud::sdn::{self, ChainHop, ChainSpec};
use storm_cloud::{Cloud, GuestVm, VolumeHandle, Workload};
use storm_iscsi::{Iqn, ISCSI_PORT};
use storm_net::{AppId, DnatRule, SockAddr, TapConfig};
use storm_sim::{SimDuration, SimTime};

use crate::relay::{
    ActiveRelayConfig, ActiveRelayMb, PassiveTap, PassiveTapConfig, RelayQosConfig, ReplicaTarget,
};
use crate::service::StorageService;
use crate::splice::{self, GatewayPair};

/// How a middle-box intercepts the flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayMode {
    /// Pure IP forwarding; no interception (the paper's MB-FWD baseline).
    Forward,
    /// FORWARD-chain hook with per-packet kernel→user copies
    /// (MB-PASSIVE-RELAY).
    Passive,
    /// Split TCP with immediate acks and a persistence buffer
    /// (MB-ACTIVE-RELAY, the default).
    Active,
}

/// Specification of one middle-box in a chain.
pub struct MbSpec {
    /// Compute host to place the middle-box VM on.
    pub host_idx: usize,
    /// Interception mode.
    pub mode: RelayMode,
    /// The tenant's service chain inside this middle-box.
    pub services: Vec<Box<dyn StorageService>>,
    /// Replica volumes to attach (replication service).
    pub replicas: Vec<ReplicaTarget>,
}

impl MbSpec {
    /// A middle-box with no services (baseline measurement).
    pub fn bare(host_idx: usize, mode: RelayMode) -> Self {
        MbSpec {
            host_idx,
            mode,
            services: Vec::new(),
            replicas: Vec::new(),
        }
    }

    /// A middle-box with services.
    pub fn with_services(
        host_idx: usize,
        mode: RelayMode,
        services: Vec<Box<dyn StorageService>>,
    ) -> Self {
        MbSpec {
            host_idx,
            mode,
            services,
            replicas: Vec::new(),
        }
    }
}

impl std::fmt::Debug for MbSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MbSpec")
            .field("host_idx", &self.host_idx)
            .field("mode", &self.mode)
            .field("services", &self.services.len())
            .finish_non_exhaustive()
    }
}

/// A deployed chain for one volume.
#[derive(Debug)]
pub struct ChainDeployment {
    /// The gateway pair.
    pub gateways: GatewayPair,
    /// Middle-box guest nodes, in chain order.
    pub mb_nodes: Vec<GuestVm>,
    /// App ids of relay apps (None for [`RelayMode::Forward`]).
    pub mb_apps: Vec<Option<AppId>>,
    /// Relay modes, in chain order.
    pub modes: Vec<RelayMode>,
    /// The installed global forward chain.
    pub forward_chain: ChainSpec,
    /// Reverse-direction segments.
    pub reverse_chains: Vec<ChainSpec>,
    /// The target portal being steered.
    pub target: SockAddr,
}

/// Platform-wide tunables.
#[derive(Debug, Clone)]
pub struct StormPlatform {
    /// Tenant whose network the gateways/middle-boxes live in.
    pub tenant: u32,
    /// Per-packet kernel forwarding cost on gateways and FWD middle-boxes.
    pub forward_cost: SimDuration,
    /// Passive-relay per-packet interception cost (the syscall + copy the
    /// paper attributes to the passive approach).
    pub tap_cost: SimDuration,
    /// Active-relay per-PDU API cost.
    pub per_pdu_cost: SimDuration,
    /// Active-relay persistence buffer capacity.
    pub buffer_cap: usize,
    /// Segmentation offload for active relays: the split-TCP stack emits
    /// large frames so vif copies batch ("the TCP handler packs several
    /// packets together for each copy"). Disable for ablation studies.
    pub tso: bool,
    /// SDN rule priority.
    pub priority: u16,
    /// Per-tenant rate shaping applied at every active relay this
    /// platform deploys; `None` (default) admits everything unshaped.
    pub qos: Option<RelayQosConfig>,
}

impl Default for StormPlatform {
    fn default() -> Self {
        StormPlatform {
            tenant: 1,
            forward_cost: SimDuration::from_nanos(300),
            tap_cost: SimDuration::from_micros(3),
            per_pdu_cost: SimDuration::from_micros(2),
            buffer_cap: 8 << 20,
            tso: true,
            priority: 100,
            qos: None,
        }
    }
}

impl StormPlatform {
    /// Deploys gateways + middle-boxes + forwarding rules for `volume`,
    /// without yet attaching any VM.
    ///
    /// `gw_hosts` places the (ingress, egress) gateways. Middle-boxes are
    /// provisioned per `mbs`, in chain order.
    pub fn deploy_chain(
        &self,
        cloud: &mut Cloud,
        volume: &VolumeHandle,
        gw_hosts: (usize, usize),
        mbs: Vec<MbSpec>,
    ) -> ChainDeployment {
        let pair = splice::create_gateway_pair(
            cloud,
            self.tenant,
            gw_hosts.0,
            gw_hosts.1,
            self.forward_cost,
        );
        splice::install_gateway_nat(cloud, &pair, volume.portal);
        let egress_portal = pair.egress_instance_portal();

        let mut mb_nodes = Vec::new();
        let mut mb_apps = Vec::new();
        let mut modes = Vec::new();
        for (i, spec) in mbs.into_iter().enumerate() {
            let needs_storage_leg = !spec.replicas.is_empty();
            let guest = cloud.spawn_guest(
                &format!("mb{i}-t{}", self.tenant),
                spec.host_idx,
                self.tenant,
                false,
                needs_storage_leg,
            );
            let app = match spec.mode {
                RelayMode::Forward => {
                    cloud.net.enable_forwarding(guest.node, self.forward_cost);
                    None
                }
                RelayMode::Passive => {
                    cloud.net.enable_forwarding(guest.node, self.forward_cost);
                    let mut tap = PassiveTap::new(PassiveTapConfig::default(), spec.services);
                    tap.set_trace_hook(cloud.trace_hook(), i as u32);
                    let app = cloud.net.add_app(guest.node, Box::new(tap));
                    cloud.net.set_tap(
                        guest.node,
                        Some(TapConfig {
                            app,
                            per_packet: self.tap_cost,
                        }),
                    );
                    Some(app)
                }
                RelayMode::Active => {
                    // Split TCP + segmentation offload: the relay's own
                    // stack emits large frames, so vif copies batch
                    // ("the TCP handler packs several packets together
                    // for each copy").
                    if self.tso {
                        cloud.net.set_tcp_mss(guest.node, 16 * 1024);
                    }
                    let mut cfg = ActiveRelayConfig::new(egress_portal);
                    cfg.per_pdu_cost = self.per_pdu_cost;
                    cfg.buffer_cap = self.buffer_cap;
                    cfg.replicas = spec.replicas;
                    cfg.initiator_iqn = Iqn::for_host(&format!("mb{i}-t{}", self.tenant));
                    cfg.qos = self.qos.clone();
                    let listen_port = cfg.listen_port;
                    let mut relay = ActiveRelayMb::new(cfg, spec.services);
                    relay.set_trace_hook(cloud.trace_hook(), i as u32);
                    let app = cloud.net.add_app(guest.node, Box::new(relay));
                    // Redirect the steered flow to the pseudo-server.
                    cloud.net.add_dnat(
                        guest.node,
                        DnatRule {
                            match_dst_ip: egress_portal.ip,
                            match_dst_port: Some(egress_portal.port),
                            match_src_ip: None,
                            to: SockAddr::new(guest.instance_ip, listen_port),
                        },
                    );
                    Some(app)
                }
            };
            mb_nodes.push(guest);
            mb_apps.push(app);
            modes.push(spec.mode);
        }

        // Forward chain: all middle-boxes, ingress gw -> ... -> egress gw.
        let hops: Vec<ChainHop> = mb_nodes
            .iter()
            .map(|g| ChainHop {
                mac: g.mac,
                ovs: cloud.computes[g.host_idx].ovs,
            })
            .collect();
        let forward_chain = ChainSpec {
            vm_port: None,
            iscsi_port: ISCSI_PORT,
            ingress_mac: pair.ingress.mac,
            ingress_ovs: cloud.computes[pair.ingress.host_idx].ovs,
            egress_mac: pair.egress.mac,
            egress_ovs: cloud.computes[pair.egress.host_idx].ovs,
            hops: hops.clone(),
            priority: self.priority,
        };
        sdn::install_forward(&mut cloud.net, &forward_chain);

        // Reverse chains: one per TCP segment (split at active relays).
        let mut reverse_chains = Vec::new();
        let mut seg_start_mac = pair.ingress.mac;
        let mut seg_start_ovs = cloud.computes[pair.ingress.host_idx].ovs;
        let mut seg_hops: Vec<ChainHop> = Vec::new();
        for (i, mode) in modes.iter().enumerate() {
            match mode {
                RelayMode::Active => {
                    // Close the current segment at this active relay.
                    let seg = ChainSpec {
                        vm_port: None,
                        iscsi_port: ISCSI_PORT,
                        ingress_mac: seg_start_mac,
                        ingress_ovs: seg_start_ovs,
                        egress_mac: pair.egress.mac,
                        egress_ovs: cloud.computes[mb_nodes[i].host_idx].ovs,
                        hops: seg_hops.clone(),
                        priority: self.priority,
                    };
                    reverse_chains.push(seg);
                    seg_start_mac = mb_nodes[i].mac;
                    seg_start_ovs = cloud.computes[mb_nodes[i].host_idx].ovs;
                    seg_hops.clear();
                }
                RelayMode::Forward | RelayMode::Passive => seg_hops.push(hops[i]),
            }
        }
        // Final segment towards the egress gateway.
        reverse_chains.push(ChainSpec {
            vm_port: None,
            iscsi_port: ISCSI_PORT,
            ingress_mac: seg_start_mac,
            ingress_ovs: seg_start_ovs,
            egress_mac: pair.egress.mac,
            egress_ovs: cloud.computes[pair.egress.host_idx].ovs,
            hops: seg_hops,
            priority: self.priority,
        });
        for seg in &reverse_chains {
            sdn::install_reverse(&mut cloud.net, seg);
        }

        ChainDeployment {
            gateways: pair,
            mb_nodes,
            mb_apps,
            modes,
            forward_chain,
            reverse_chains,
            target: volume.portal,
        }
    }

    /// Attaches `volume` on `compute_idx` with its traffic steered through
    /// `deployment`'s chain, using the paper's atomic attachment: the
    /// steering rule exists only during login; established flows stay
    /// pinned afterwards.
    ///
    /// Drives the simulation until the session reaches full-feature phase
    /// (or `timeout` elapses), then removes the rule.
    #[allow(clippy::too_many_arguments)]
    pub fn attach_volume_steered(
        &self,
        cloud: &mut Cloud,
        deployment: &ChainDeployment,
        compute_idx: usize,
        vm_label: &str,
        volume: &VolumeHandle,
        workload: Box<dyn Workload>,
        seed: u64,
        timeline: bool,
    ) -> AppId {
        let rule =
            splice::steering_rule_for(cloud, compute_idx, &deployment.gateways, volume.portal);
        cloud
            .net
            .add_steer_rule(cloud.computes[compute_idx].host, rule);
        let app = cloud.attach_volume(compute_idx, vm_label, volume, workload, seed, timeline);
        // Atomic attachment window: wait for login, then drop the rule.
        // Event-stepped rather than polled in 1 ms quanta, so the rule
        // drops at the exact login instant and the wait costs one
        // readiness check per event instead of per millisecond.
        let deadline = cloud.net.now() + SimDuration::from_secs(5);
        while !cloud.client_mut(compute_idx, app).is_ready() && cloud.net.step_until(deadline) {}
        let host = cloud.computes[compute_idx].host;
        cloud.net.host_mut(host).remove_steer_rule(&rule);
        app
    }

    /// Dynamically removes the chain's forwarding rules (middle-box
    /// scale-down); pinned flows then bypass the middle-boxes entirely on
    /// the next connection.
    pub fn tear_down_rules(&self, cloud: &mut Cloud, deployment: &ChainDeployment) -> usize {
        let mut removed = sdn::remove_chain(&mut cloud.net, &deployment.forward_chain);
        for seg in &deployment.reverse_chains {
            removed += sdn::remove_chain(&mut cloud.net, seg);
        }
        removed
    }

    /// Runs the cloud until `end` (convenience passthrough).
    pub fn run_until(&self, cloud: &mut Cloud, end: SimTime) {
        cloud.net.run_until(end);
    }
}

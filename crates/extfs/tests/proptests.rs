//! Property-based tests: the filesystem against an in-memory model.
//!
//! A random sequence of file operations runs against both [`ExtFs`] and a
//! plain `HashMap` model; externally visible state (file contents,
//! directory listings, errors) must agree, and the filesystem must also
//! survive a remount with identical contents.

use std::collections::HashMap;

use proptest::prelude::*;
use storm_block::MemDisk;
use storm_extfs::{ExtFs, FsError};

#[derive(Debug, Clone)]
enum Op {
    Create(u8),
    Write {
        file: u8,
        offset: u16,
        len: u16,
        byte: u8,
    },
    Read {
        file: u8,
    },
    Unlink(u8),
    Rename {
        from: u8,
        to: u8,
    },
    Truncate(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Create),
        (0u8..12, any::<u16>(), 1u16..2048, any::<u8>()).prop_map(|(file, offset, len, byte)| {
            Op::Write {
                file,
                offset,
                len,
                byte,
            }
        }),
        (0u8..12).prop_map(|f| Op::Read { file: f }),
        (0u8..12).prop_map(Op::Unlink),
        (0u8..12, 0u8..12).prop_map(|(from, to)| Op::Rename { from, to }),
        (0u8..12).prop_map(Op::Truncate),
    ]
}

fn path(file: u8) -> String {
    format!("/f{file}")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn fs_matches_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let mut fs = ExtFs::mkfs(MemDisk::with_capacity_bytes(96 << 20)).unwrap();
        let mut model: HashMap<u8, Vec<u8>> = HashMap::new();
        for op in &ops {
            match *op {
                Op::Create(f) => {
                    let real = fs.create(&path(f));
                    if let std::collections::hash_map::Entry::Vacant(e) = model.entry(f) {
                        prop_assert_eq!(real, Ok(()));
                        e.insert(Vec::new());
                    } else {
                        prop_assert_eq!(real, Err(FsError::AlreadyExists));
                    }
                }
                Op::Write { file, offset, len, byte } => {
                    let data = vec![byte; len as usize];
                    let real = fs.write_file(&path(file), offset as u64, &data);
                    match model.get_mut(&file) {
                        Some(content) => {
                            prop_assert_eq!(real, Ok(()));
                            let end = offset as usize + len as usize;
                            if content.len() < end {
                                content.resize(end, 0);
                            }
                            content[offset as usize..end].copy_from_slice(&data);
                        }
                        None => prop_assert_eq!(real, Err(FsError::NotFound)),
                    }
                }
                Op::Read { file } => {
                    let real = fs.read_file_to_end(&path(file));
                    match model.get(&file) {
                        Some(content) => {
                            prop_assert_eq!(real.as_deref(), Ok(content.as_slice()));
                        }
                        None => prop_assert_eq!(real, Err(FsError::NotFound)),
                    }
                }
                Op::Unlink(f) => {
                    let real = fs.unlink(&path(f));
                    if model.remove(&f).is_some() {
                        prop_assert_eq!(real, Ok(()));
                    } else {
                        prop_assert_eq!(real, Err(FsError::NotFound));
                    }
                }
                Op::Rename { from, to } => {
                    let real = fs.rename(&path(from), &path(to));
                    if from == to && model.contains_key(&from) {
                        // Degenerate self-rename: accept either behaviour,
                        // but the file must survive.
                        prop_assert!(fs.stat(&path(from)).is_ok());
                        continue;
                    }
                    if model.contains_key(&from) {
                        prop_assert_eq!(real, Ok(()));
                        let content = model.remove(&from).unwrap();
                        model.insert(to, content);
                    } else {
                        prop_assert_eq!(real, Err(FsError::NotFound));
                    }
                }
                Op::Truncate(f) => {
                    let real = fs.truncate(&path(f));
                    match model.get_mut(&f) {
                        Some(content) => {
                            prop_assert_eq!(real, Ok(()));
                            content.clear();
                        }
                        None => prop_assert_eq!(real, Err(FsError::NotFound)),
                    }
                }
            }
        }
        // Directory listing agrees with the model's key set.
        let mut listed: Vec<String> =
            fs.readdir("/").unwrap().into_iter().map(|e| e.name).collect();
        listed.sort();
        let mut expect: Vec<String> = model.keys().map(|f| format!("f{f}")).collect();
        expect.sort();
        prop_assert_eq!(listed, expect);
        // Remount and re-verify every file (on-disk format durability).
        let dev = fs.into_device().unwrap();
        let mut fs2 = ExtFs::mount(dev).unwrap();
        for (f, content) in &model {
            let read = fs2.read_file_to_end(&path(*f));
            prop_assert_eq!(read.as_deref(), Ok(content.as_slice()));
        }
    }

    /// Free-space accounting: allocate-then-delete returns to baseline.
    #[test]
    fn space_is_reclaimed(sizes in prop::collection::vec(1usize..64, 1..10)) {
        let mut fs = ExtFs::mkfs(MemDisk::with_capacity_bytes(64 << 20)).unwrap();
        let baseline = fs.superblock().free_blocks_count;
        for (i, blocks) in sizes.iter().enumerate() {
            let p = format!("/file{i}");
            fs.create(&p).unwrap();
            fs.write_file(&p, 0, &vec![7u8; blocks * 4096]).unwrap();
        }
        prop_assert!(fs.superblock().free_blocks_count < baseline);
        for i in 0..sizes.len() {
            fs.unlink(&format!("/file{i}")).unwrap();
        }
        prop_assert_eq!(fs.superblock().free_blocks_count, baseline);
        let free_inodes = fs.superblock().free_inodes_count;
        let _ = free_inodes;
    }
}

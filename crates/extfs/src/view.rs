//! `FsView`: the dumpe2fs-equivalent layout snapshot.
//!
//! The paper: "StorM generates an initial high-level system view of a
//! file-system and supplies it to the middle-boxes when the block device
//! is attached ... StorM uses Linux's dumpe2fs tool to construct an
//! initial file-system view." [`FsView`] is that artifact: built once from
//! the volume at attach time, it classifies every subsequent raw block
//! access into superblock / bitmap / inode-table / data regions — the
//! first step ("Classification") of the storage access monitor.

use storm_block::BlockDevice;

use crate::fs::FsError;
use crate::layout::{
    GroupDesc, Superblock, BLOCK_SIZE, INODES_PER_GROUP, INODE_SIZE, INODE_TABLE_BLOCKS,
    SECTORS_PER_BLOCK,
};

/// What a filesystem block holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Region {
    /// The superblock (block 0).
    Superblock,
    /// The group descriptor table.
    GroupDescTable,
    /// A group's block bitmap.
    BlockBitmap {
        /// Block group index.
        group: u32,
    },
    /// A group's inode bitmap.
    InodeBitmap {
        /// Block group index.
        group: u32,
    },
    /// A slice of a group's inode table.
    InodeTable {
        /// Block group index.
        group: u32,
        /// First inode number stored in this block.
        first_ino: u32,
    },
    /// A data block (file contents, directory entries or indirect
    /// pointers — told apart by tracking inode pointers).
    Data,
    /// Outside the filesystem (past `blocks_count`).
    Beyond,
}

/// A parsed filesystem layout, independent of any live [`crate::ExtFs`].
#[derive(Debug, Clone)]
pub struct FsView {
    sb: Superblock,
    groups: Vec<GroupDesc>,
    gdt_blocks: u64,
}

impl FsView {
    /// Builds a view by reading the superblock and group descriptors from
    /// a device (what the platform does at volume-attach time).
    ///
    /// # Errors
    ///
    /// [`FsError::BadMagic`] if the device holds no filesystem.
    pub fn from_device<D: BlockDevice>(dev: &mut D) -> Result<FsView, FsError> {
        let mut block0 = vec![0u8; BLOCK_SIZE];
        dev.read(0, &mut block0)?;
        let sb = Superblock::read_from(&block0).ok_or(FsError::BadMagic)?;
        let groups = sb.group_count();
        let gdt_blocks = (groups as usize * GroupDesc::SIZE).div_ceil(BLOCK_SIZE) as u64;
        let mut gdt = vec![0u8; (gdt_blocks as usize) * BLOCK_SIZE];
        dev.read(SECTORS_PER_BLOCK, &mut gdt)?;
        let descs = (0..groups as usize)
            .map(|g| GroupDesc::read_from(&gdt[g * GroupDesc::SIZE..]))
            .collect();
        Ok(FsView {
            sb,
            groups: descs,
            gdt_blocks,
        })
    }

    /// The parsed superblock.
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// Number of block groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Classifies a filesystem block number.
    pub fn classify_block(&self, bno: u64) -> Region {
        if bno >= self.sb.blocks_count {
            return Region::Beyond;
        }
        if bno == 0 {
            return Region::Superblock;
        }
        if bno <= self.gdt_blocks {
            return Region::GroupDescTable;
        }
        for (g, gd) in self.groups.iter().enumerate() {
            let g32 = g as u32;
            if bno == gd.block_bitmap {
                return Region::BlockBitmap { group: g32 };
            }
            if bno == gd.inode_bitmap {
                return Region::InodeBitmap { group: g32 };
            }
            if bno >= gd.inode_table && bno < gd.inode_table + INODE_TABLE_BLOCKS {
                let inodes_per_block = (BLOCK_SIZE / INODE_SIZE) as u32;
                let first_ino =
                    g32 * INODES_PER_GROUP + (bno - gd.inode_table) as u32 * inodes_per_block + 1;
                return Region::InodeTable {
                    group: g32,
                    first_ino,
                };
            }
        }
        Region::Data
    }

    /// Classifies a 512-byte sector address (what iSCSI carries).
    pub fn classify_sector(&self, lba: u64) -> Region {
        self.classify_block(lba / SECTORS_PER_BLOCK)
    }

    /// `(block, byte_offset)` of inode `ino` inside the inode table.
    pub fn inode_location(&self, ino: u32) -> (u64, usize) {
        let idx = (ino - 1) as u64;
        let group = (idx / INODES_PER_GROUP as u64) as usize;
        let within = (idx % INODES_PER_GROUP as u64) as usize;
        let block = self.groups[group].inode_table + (within * INODE_SIZE / BLOCK_SIZE) as u64;
        (block, (within * INODE_SIZE) % BLOCK_SIZE)
    }

    /// The inode numbers stored in inode-table block `bno`, if it is one.
    pub fn inodes_in_block(&self, bno: u64) -> Option<std::ops::Range<u32>> {
        match self.classify_block(bno) {
            Region::InodeTable { first_ino, .. } => {
                let per_block = (BLOCK_SIZE / INODE_SIZE) as u32;
                Some(first_ino..first_ino + per_block)
            }
            _ => None,
        }
    }

    /// A dumpe2fs-style text summary (diagnostics, example output).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "Block count:  {}", self.sb.blocks_count);
        let _ = writeln!(s, "Inode count:  {}", self.sb.inodes_count);
        let _ = writeln!(s, "Block size:   {BLOCK_SIZE}");
        let _ = writeln!(s, "Groups:       {}", self.groups.len());
        for (g, gd) in self.groups.iter().enumerate() {
            let _ = writeln!(
                s,
                "Group {g}: block bitmap {}, inode bitmap {}, inode table {}..{}",
                gd.block_bitmap,
                gd.inode_bitmap,
                gd.inode_table,
                gd.inode_table + INODE_TABLE_BLOCKS - 1
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::ExtFs;
    use storm_block::MemDisk;

    fn view() -> FsView {
        let fs = ExtFs::mkfs(MemDisk::with_capacity_bytes(128 << 20)).unwrap();
        let mut dev = fs.into_device().unwrap();
        FsView::from_device(&mut dev).unwrap()
    }

    #[test]
    fn classifies_metadata_blocks() {
        let v = view();
        assert_eq!(v.classify_block(0), Region::Superblock);
        assert_eq!(v.classify_block(1), Region::GroupDescTable);
        let gd0 = v.groups[0];
        assert_eq!(
            v.classify_block(gd0.block_bitmap),
            Region::BlockBitmap { group: 0 }
        );
        assert_eq!(
            v.classify_block(gd0.inode_bitmap),
            Region::InodeBitmap { group: 0 }
        );
        assert!(matches!(
            v.classify_block(gd0.inode_table),
            Region::InodeTable {
                group: 0,
                first_ino: 1
            }
        ));
        // First data block of group 0 is Data.
        assert_eq!(
            v.classify_block(gd0.inode_table + INODE_TABLE_BLOCKS),
            Region::Data
        );
        // Far past the end.
        assert_eq!(v.classify_block(1 << 40), Region::Beyond);
    }

    #[test]
    fn sector_classification_matches_blocks() {
        let v = view();
        assert_eq!(v.classify_sector(0), Region::Superblock);
        assert_eq!(v.classify_sector(7), Region::Superblock);
        assert_eq!(v.classify_sector(8), Region::GroupDescTable);
    }

    #[test]
    fn inode_locations_line_up_with_classification() {
        let v = view();
        let (block, off) = v.inode_location(2);
        assert_eq!(off, 128); // inode 2 is the second slot
        let inodes = v.inodes_in_block(block).unwrap();
        assert!(inodes.contains(&2));
        assert_eq!(inodes.len(), BLOCK_SIZE / INODE_SIZE);
        // A data block has no inodes.
        assert!(v.inodes_in_block(1 << 20).is_none());
    }

    #[test]
    fn second_group_metadata_located() {
        let v = view();
        assert!(v.group_count() >= 2, "128 MiB should span multiple groups");
        let gd1 = v.groups[1];
        assert_eq!(
            v.classify_block(gd1.block_bitmap),
            Region::BlockBitmap { group: 1 }
        );
        match v.classify_block(gd1.inode_table) {
            Region::InodeTable {
                group: 1,
                first_ino,
            } => {
                assert_eq!(first_ino, INODES_PER_GROUP + 1);
            }
            other => panic!("expected inode table, got {other:?}"),
        }
    }

    #[test]
    fn describe_mentions_geometry() {
        let v = view();
        let text = v.describe();
        assert!(text.contains("Block size:   4096"));
        assert!(text.contains("Group 0:"));
    }

    #[test]
    fn from_device_rejects_blank_disk() {
        let mut dev = MemDisk::with_capacity_bytes(16 << 20);
        assert!(FsView::from_device(&mut dev).is_err());
    }
}

//! An ext2-style filesystem, the guest filesystem of the StorM experiments.
//!
//! The paper's tenant VMs format their volumes as Linux Ext2/3/4 and the
//! semantics-reconstruction middle-box parses the resulting metadata from
//! raw block traffic. This crate provides both sides:
//!
//! * [`ExtFs`] — a working filesystem (mkfs/mount, create/read/write,
//!   directories, rename, unlink, symlinks, single+double indirect
//!   blocks) over any [`storm_block::BlockDevice`]. Running it over a
//!   [`storm_block::RecordingDevice`] yields the exact block-access
//!   streams that Tables I–III analyse.
//! * [`FsView`] — the `dumpe2fs` equivalent: a layout snapshot
//!   (superblock geometry, per-group bitmap/inode-table extents) that
//!   classifies any raw block access, plus parsers for on-disk inodes and
//!   directory entries ([`Inode::from_bytes`], [`parse_dirents`]).
//!
//! The on-disk format keeps ext2's structure and field offsets for the
//! fields it uses (magic `0xEF53`, 4 KiB blocks, 128-byte inodes,
//! variable-length dirents), so the reconstruction code paths mirror what
//! the paper's prototype did against real Ext4 metadata.
//!
//! # Example
//!
//! ```
//! use storm_block::MemDisk;
//! use storm_extfs::ExtFs;
//!
//! # fn main() -> Result<(), storm_extfs::FsError> {
//! let disk = MemDisk::with_capacity_bytes(64 << 20);
//! let mut fs = ExtFs::mkfs(disk)?;
//! fs.mkdir("/logs")?;
//! fs.create("/logs/audit.txt")?;
//! fs.write_file("/logs/audit.txt", 0, b"access granted")?;
//! assert_eq!(fs.read_file_to_end("/logs/audit.txt")?, b"access granted");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dirent;
mod fs;
mod inode;
mod layout;
mod view;

pub use dirent::{parse_dirents, DirEntry, FileType};
pub use fs::{ExtFs, FsError, Stat};
pub use inode::Inode;
pub use layout::{
    GroupDesc, Superblock, BLOCK_SIZE, EXT_MAGIC, INODES_PER_GROUP, INODE_SIZE, ROOT_INO,
    SECTORS_PER_BLOCK,
};
pub use view::{FsView, Region};

//! On-disk inodes.

use crate::layout::{BLOCK_SIZE, INODE_SIZE};

/// Mode bits: file type mask and values (ext2 / POSIX).
pub const S_IFMT: u16 = 0xF000;
/// Regular file.
pub const S_IFREG: u16 = 0x8000;
/// Directory.
pub const S_IFDIR: u16 = 0x4000;
/// Symbolic link.
pub const S_IFLNK: u16 = 0xA000;

/// Direct block pointers per inode.
pub const DIRECT_BLOCKS: usize = 12;
/// Index of the single-indirect pointer.
pub const IND_SLOT: usize = 12;
/// Index of the double-indirect pointer.
pub const DIND_SLOT: usize = 13;
/// Block pointers per indirect block.
pub const PTRS_PER_BLOCK: usize = BLOCK_SIZE / 4;

/// An on-disk inode (128 bytes, ext2 field offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Inode {
    /// Type + permission bits.
    pub mode: u16,
    /// Owner uid.
    pub uid: u16,
    /// File size in bytes.
    pub size: u64,
    /// Modification time (simulation seconds).
    pub mtime: u32,
    /// Link count.
    pub links_count: u16,
    /// Allocated 512-byte sectors (ext2's `i_blocks`).
    pub blocks512: u32,
    /// Block pointers: 12 direct, 1 single-indirect, 1 double-indirect,
    /// slot 14 unused (ext2 reserves it for triple-indirect).
    pub block: [u32; 15],
}

impl Inode {
    /// A fresh regular-file inode.
    pub fn new_file() -> Inode {
        Inode {
            mode: S_IFREG | 0o644,
            links_count: 1,
            ..Default::default()
        }
    }

    /// A fresh directory inode.
    pub fn new_dir() -> Inode {
        Inode {
            mode: S_IFDIR | 0o755,
            links_count: 2,
            ..Default::default()
        }
    }

    /// A fresh symlink inode.
    pub fn new_symlink() -> Inode {
        Inode {
            mode: S_IFLNK | 0o777,
            links_count: 1,
            ..Default::default()
        }
    }

    /// Whether this inode is a directory.
    pub fn is_dir(&self) -> bool {
        self.mode & S_IFMT == S_IFDIR
    }

    /// Whether this inode is a regular file.
    pub fn is_file(&self) -> bool {
        self.mode & S_IFMT == S_IFREG
    }

    /// Whether this inode is a symlink.
    pub fn is_symlink(&self) -> bool {
        self.mode & S_IFMT == S_IFLNK
    }

    /// Whether this inode is unallocated.
    pub fn is_free(&self) -> bool {
        self.links_count == 0 && self.mode == 0
    }

    /// Serializes to a 128-byte inode-table slot.
    pub fn write_to(&self, slot: &mut [u8]) {
        slot[..INODE_SIZE].fill(0);
        slot[0..2].copy_from_slice(&self.mode.to_le_bytes());
        slot[2..4].copy_from_slice(&self.uid.to_le_bytes());
        slot[4..8].copy_from_slice(&(self.size as u32).to_le_bytes());
        slot[16..20].copy_from_slice(&self.mtime.to_le_bytes());
        slot[26..28].copy_from_slice(&self.links_count.to_le_bytes());
        slot[28..32].copy_from_slice(&self.blocks512.to_le_bytes());
        for (i, b) in self.block.iter().enumerate() {
            slot[40 + 4 * i..44 + 4 * i].copy_from_slice(&b.to_le_bytes());
        }
    }

    /// Parses a 128-byte inode-table slot.
    pub fn from_bytes(slot: &[u8]) -> Inode {
        let le16 = |off: usize| u16::from_le_bytes(slot[off..off + 2].try_into().expect("2 bytes"));
        let le32 = |off: usize| u32::from_le_bytes(slot[off..off + 4].try_into().expect("4 bytes"));
        let mut block = [0u32; 15];
        for (i, b) in block.iter_mut().enumerate() {
            *b = le32(40 + 4 * i);
        }
        Inode {
            mode: le16(0),
            uid: le16(2),
            size: le32(4) as u64,
            mtime: le32(16),
            links_count: le16(26),
            blocks512: le32(28),
            block,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut ino = Inode::new_file();
        ino.size = 123456;
        ino.mtime = 42;
        ino.blocks512 = 248;
        ino.block[0] = 77;
        ino.block[IND_SLOT] = 99;
        let mut slot = [0u8; INODE_SIZE];
        ino.write_to(&mut slot);
        assert_eq!(Inode::from_bytes(&slot), ino);
    }

    #[test]
    fn type_predicates() {
        assert!(Inode::new_file().is_file());
        assert!(!Inode::new_file().is_dir());
        assert!(Inode::new_dir().is_dir());
        assert!(Inode::new_symlink().is_symlink());
        assert!(Inode::default().is_free());
        assert!(!Inode::new_file().is_free());
    }

    #[test]
    fn fresh_dir_has_two_links() {
        // "." and the parent's entry.
        assert_eq!(Inode::new_dir().links_count, 2);
        assert_eq!(Inode::new_file().links_count, 1);
    }

    #[test]
    fn geometry_constants() {
        assert_eq!(PTRS_PER_BLOCK, 1024);
        // Slots 12 and 13 (indirect, double-indirect) must fit.
        #[allow(clippy::assertions_on_constants)]
        {
            assert!(DIRECT_BLOCKS + 2 < 15);
        }
    }
}

//! On-disk layout: constants, superblock and group descriptors.

/// Filesystem block size in bytes.
pub const BLOCK_SIZE: usize = 4096;
/// 512-byte sectors per filesystem block.
pub const SECTORS_PER_BLOCK: u64 = (BLOCK_SIZE / 512) as u64;
/// The ext magic number.
pub const EXT_MAGIC: u16 = 0xEF53;
/// Blocks per block group.
pub const BLOCKS_PER_GROUP: u64 = 8192;
/// Inodes per block group.
pub const INODES_PER_GROUP: u32 = 2048;
/// Bytes per on-disk inode.
pub const INODE_SIZE: usize = 128;
/// The root directory's inode number.
pub const ROOT_INO: u32 = 2;
/// First inode number available for user files (1..11 are reserved, as in
/// ext2).
pub const FIRST_FREE_INO: u32 = 11;
/// Blocks occupied by the inode table of one group.
pub const INODE_TABLE_BLOCKS: u64 = (INODES_PER_GROUP as usize * INODE_SIZE / BLOCK_SIZE) as u64;
/// Byte offset of the superblock within the volume.
pub const SUPERBLOCK_OFFSET: usize = 1024;

/// The superblock (fields kept at their ext2 offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superblock {
    /// Total inode count.
    pub inodes_count: u32,
    /// Total block count.
    pub blocks_count: u64,
    /// Free blocks.
    pub free_blocks_count: u64,
    /// Free inodes.
    pub free_inodes_count: u32,
    /// First data block (0 for 4 KiB blocks).
    pub first_data_block: u64,
    /// `log2(block_size) - 10`.
    pub log_block_size: u32,
    /// Blocks per group.
    pub blocks_per_group: u64,
    /// Inodes per group.
    pub inodes_per_group: u32,
    /// Magic (must be [`EXT_MAGIC`]).
    pub magic: u16,
}

impl Superblock {
    /// Number of block groups.
    pub fn group_count(&self) -> u64 {
        self.blocks_count.div_ceil(self.blocks_per_group)
    }

    /// Serializes into a [`BLOCK_SIZE`] buffer at the ext2 field offsets
    /// (relative to the 1024-byte superblock origin).
    pub fn write_to(&self, block0: &mut [u8]) {
        let sb = &mut block0[SUPERBLOCK_OFFSET..];
        sb[..96].fill(0);
        sb[0..4].copy_from_slice(&self.inodes_count.to_le_bytes());
        sb[4..8].copy_from_slice(&(self.blocks_count as u32).to_le_bytes());
        sb[12..16].copy_from_slice(&(self.free_blocks_count as u32).to_le_bytes());
        sb[16..20].copy_from_slice(&self.free_inodes_count.to_le_bytes());
        sb[20..24].copy_from_slice(&(self.first_data_block as u32).to_le_bytes());
        sb[24..28].copy_from_slice(&self.log_block_size.to_le_bytes());
        sb[32..36].copy_from_slice(&(self.blocks_per_group as u32).to_le_bytes());
        sb[40..44].copy_from_slice(&self.inodes_per_group.to_le_bytes());
        sb[56..58].copy_from_slice(&self.magic.to_le_bytes());
    }

    /// Parses from a block-0 buffer.
    ///
    /// # Errors
    ///
    /// Returns `None` when the magic is wrong.
    pub fn read_from(block0: &[u8]) -> Option<Superblock> {
        let sb = &block0[SUPERBLOCK_OFFSET..];
        let le32 = |off: usize| u32::from_le_bytes(sb[off..off + 4].try_into().expect("4 bytes"));
        let magic = u16::from_le_bytes(sb[56..58].try_into().expect("2 bytes"));
        if magic != EXT_MAGIC {
            return None;
        }
        Some(Superblock {
            inodes_count: le32(0),
            blocks_count: le32(4) as u64,
            free_blocks_count: le32(12) as u64,
            free_inodes_count: le32(16),
            first_data_block: le32(20) as u64,
            log_block_size: le32(24),
            blocks_per_group: le32(32) as u64,
            inodes_per_group: le32(40),
            magic,
        })
    }
}

/// A block-group descriptor (32 bytes on disk, ext2 field offsets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupDesc {
    /// Block number of the group's block bitmap.
    pub block_bitmap: u64,
    /// Block number of the group's inode bitmap.
    pub inode_bitmap: u64,
    /// First block of the group's inode table.
    pub inode_table: u64,
    /// Free blocks in the group.
    pub free_blocks_count: u16,
    /// Free inodes in the group.
    pub free_inodes_count: u16,
    /// Directories allocated in the group.
    pub used_dirs_count: u16,
}

impl GroupDesc {
    /// On-disk descriptor size.
    pub const SIZE: usize = 32;

    /// Serializes to a 32-byte slot.
    pub fn write_to(&self, slot: &mut [u8]) {
        slot[..Self::SIZE].fill(0);
        slot[0..4].copy_from_slice(&(self.block_bitmap as u32).to_le_bytes());
        slot[4..8].copy_from_slice(&(self.inode_bitmap as u32).to_le_bytes());
        slot[8..12].copy_from_slice(&(self.inode_table as u32).to_le_bytes());
        slot[12..14].copy_from_slice(&self.free_blocks_count.to_le_bytes());
        slot[14..16].copy_from_slice(&self.free_inodes_count.to_le_bytes());
        slot[16..18].copy_from_slice(&self.used_dirs_count.to_le_bytes());
    }

    /// Parses a 32-byte slot.
    pub fn read_from(slot: &[u8]) -> GroupDesc {
        let le32 =
            |off: usize| u32::from_le_bytes(slot[off..off + 4].try_into().expect("4 bytes")) as u64;
        let le16 = |off: usize| u16::from_le_bytes(slot[off..off + 2].try_into().expect("2 bytes"));
        GroupDesc {
            block_bitmap: le32(0),
            inode_bitmap: le32(4),
            inode_table: le32(8),
            free_blocks_count: le16(12),
            free_inodes_count: le16(14),
            used_dirs_count: le16(16),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_round_trip() {
        let sb = Superblock {
            inodes_count: 8192,
            blocks_count: 16384,
            free_blocks_count: 16000,
            free_inodes_count: 8000,
            first_data_block: 0,
            log_block_size: 2,
            blocks_per_group: BLOCKS_PER_GROUP,
            inodes_per_group: INODES_PER_GROUP,
            magic: EXT_MAGIC,
        };
        let mut block = vec![0u8; BLOCK_SIZE];
        sb.write_to(&mut block);
        assert_eq!(Superblock::read_from(&block), Some(sb));
        assert_eq!(sb.group_count(), 2);
    }

    #[test]
    fn bad_magic_rejected() {
        let block = vec![0u8; BLOCK_SIZE];
        assert_eq!(Superblock::read_from(&block), None);
    }

    #[test]
    fn magic_is_at_ext2_offset() {
        let sb = Superblock {
            inodes_count: 1,
            blocks_count: 1,
            free_blocks_count: 0,
            free_inodes_count: 0,
            first_data_block: 0,
            log_block_size: 2,
            blocks_per_group: BLOCKS_PER_GROUP,
            inodes_per_group: INODES_PER_GROUP,
            magic: EXT_MAGIC,
        };
        let mut block = vec![0u8; BLOCK_SIZE];
        sb.write_to(&mut block);
        // 0xEF53 little-endian at byte 1080 (1024 + 56) — where dumpe2fs
        // and the monitor look for it.
        assert_eq!(block[1080], 0x53);
        assert_eq!(block[1081], 0xEF);
    }

    #[test]
    fn group_desc_round_trip() {
        let g = GroupDesc {
            block_bitmap: 100,
            inode_bitmap: 101,
            inode_table: 102,
            free_blocks_count: 7000,
            free_inodes_count: 2000,
            used_dirs_count: 3,
        };
        let mut slot = [0u8; GroupDesc::SIZE];
        g.write_to(&mut slot);
        assert_eq!(GroupDesc::read_from(&slot), g);
    }

    #[test]
    fn derived_constants_consistent() {
        assert_eq!(INODE_TABLE_BLOCKS, 64);
        assert_eq!(SECTORS_PER_BLOCK, 8);
        // One bitmap block must cover a whole group.
        assert!(BLOCKS_PER_GROUP as usize <= BLOCK_SIZE * 8);
        assert!(INODES_PER_GROUP as usize <= BLOCK_SIZE * 8);
    }
}

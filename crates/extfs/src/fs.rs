//! The working filesystem: allocation, directories, file I/O.

use std::error::Error;
use std::fmt;

use storm_block::{BlockDevice, BlockError};

use crate::dirent::{parse_dirents, rec_len_for, write_dirent, DirEntry, FileType, MAX_NAME_LEN};
use crate::inode::{Inode, DIND_SLOT, DIRECT_BLOCKS, IND_SLOT, PTRS_PER_BLOCK};
use crate::layout::{
    GroupDesc, Superblock, BLOCKS_PER_GROUP, BLOCK_SIZE, EXT_MAGIC, FIRST_FREE_INO,
    INODES_PER_GROUP, INODE_SIZE, INODE_TABLE_BLOCKS, ROOT_INO, SECTORS_PER_BLOCK,
};

/// Filesystem errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// Path component does not exist.
    NotFound,
    /// A non-directory appeared mid-path (or readdir on a file).
    NotADirectory,
    /// Expected a file, found a directory.
    IsADirectory,
    /// Create/rename target already exists.
    AlreadyExists,
    /// Out of blocks or inodes.
    NoSpace,
    /// rmdir on a non-empty directory.
    DirNotEmpty,
    /// Malformed path or overlong name.
    InvalidPath,
    /// The device does not hold a valid filesystem.
    BadMagic,
    /// Device too small for even one block group.
    DeviceTooSmall,
    /// Underlying block device error.
    Block(BlockError),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound => write!(f, "no such file or directory"),
            FsError::NotADirectory => write!(f, "not a directory"),
            FsError::IsADirectory => write!(f, "is a directory"),
            FsError::AlreadyExists => write!(f, "file exists"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::DirNotEmpty => write!(f, "directory not empty"),
            FsError::InvalidPath => write!(f, "invalid path"),
            FsError::BadMagic => write!(f, "bad filesystem magic"),
            FsError::DeviceTooSmall => write!(f, "device too small"),
            FsError::Block(e) => write!(f, "block device error: {e}"),
        }
    }
}

impl Error for FsError {}

impl From<BlockError> for FsError {
    fn from(e: BlockError) -> Self {
        FsError::Block(e)
    }
}

/// File metadata returned by [`ExtFs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: u32,
    /// Size in bytes.
    pub size: u64,
    /// Whether it is a directory.
    pub is_dir: bool,
    /// Whether it is a symlink.
    pub is_symlink: bool,
    /// Link count.
    pub links: u16,
    /// Allocated 512-byte sectors.
    pub blocks512: u32,
}

/// An ext2-style filesystem over a block device.
///
/// Superblock/group-descriptor counters are cached in memory and written
/// back on [`ExtFs::sync`] (like a real kernel); bitmaps, inode tables and
/// directory blocks are written through immediately, so wire observers see
/// the metadata traffic the semantics-reconstruction engine depends on.
#[derive(Debug)]
pub struct ExtFs<D> {
    dev: D,
    sb: Superblock,
    groups: Vec<GroupDesc>,
    gdt_blocks: u64,
    clock: u32,
    sb_dirty: bool,
}

impl<D: BlockDevice> ExtFs<D> {
    /// Formats `dev` and mounts the fresh filesystem.
    ///
    /// # Errors
    ///
    /// [`FsError::DeviceTooSmall`] if the device cannot hold one group's
    /// metadata, or any underlying device error.
    pub fn mkfs(mut dev: D) -> Result<ExtFs<D>, FsError> {
        let total_blocks = dev.num_sectors() / SECTORS_PER_BLOCK;
        let groups = total_blocks.div_ceil(BLOCKS_PER_GROUP);
        if groups == 0 {
            return Err(FsError::DeviceTooSmall);
        }
        let gdt_blocks = (groups as usize * GroupDesc::SIZE).div_ceil(BLOCK_SIZE) as u64;
        // Group 0 must fit sb + gdt + bitmaps + inode table + >=1 data block.
        if total_blocks < 1 + gdt_blocks + 2 + INODE_TABLE_BLOCKS + 8 {
            return Err(FsError::DeviceTooSmall);
        }
        let mut gds = Vec::with_capacity(groups as usize);
        let mut free_blocks_total = 0u64;
        for g in 0..groups {
            let base = g * BLOCKS_PER_GROUP;
            let meta_start = if g == 0 { 1 + gdt_blocks } else { base };
            let block_bitmap = meta_start;
            let inode_bitmap = meta_start + 1;
            let inode_table = meta_start + 2;
            let data_start = inode_table + INODE_TABLE_BLOCKS;
            let group_end = (base + BLOCKS_PER_GROUP).min(total_blocks);
            // Build the block bitmap: everything before data_start (within
            // the group) is metadata; everything past group_end is padding.
            let mut bitmap = vec![0u8; BLOCK_SIZE];
            let mut free_in_group = 0u16;
            for b in base..base + BLOCKS_PER_GROUP {
                let used = b < data_start || b >= group_end;
                if used {
                    let idx = (b - base) as usize;
                    bitmap[idx / 8] |= 1 << (idx % 8);
                } else {
                    free_in_group += 1;
                }
            }
            dev.write(block_bitmap * SECTORS_PER_BLOCK, &bitmap)?;
            // Inode bitmap: group 0 reserves inodes 1..FIRST_FREE_INO
            // (bit index = ino - 1 within the group).
            let mut ibitmap = vec![0u8; BLOCK_SIZE];
            let mut free_inodes = INODES_PER_GROUP as u16;
            if g == 0 {
                for ino in 1..FIRST_FREE_INO {
                    let idx = (ino - 1) as usize;
                    ibitmap[idx / 8] |= 1 << (idx % 8);
                    free_inodes -= 1;
                }
            }
            // Inodes beyond the bitmap's group span never exist; mark the
            // tail of the bitmap used so allocation can't pick them.
            for idx in INODES_PER_GROUP as usize..BLOCK_SIZE * 8 {
                ibitmap[idx / 8] |= 1 << (idx % 8);
            }
            dev.write(inode_bitmap * SECTORS_PER_BLOCK, &ibitmap)?;
            // Zero the inode table.
            let zero = vec![0u8; BLOCK_SIZE];
            for b in 0..INODE_TABLE_BLOCKS {
                dev.write((inode_table + b) * SECTORS_PER_BLOCK, &zero)?;
            }
            free_blocks_total += free_in_group as u64;
            gds.push(GroupDesc {
                block_bitmap,
                inode_bitmap,
                inode_table,
                free_blocks_count: free_in_group,
                free_inodes_count: free_inodes,
                used_dirs_count: 0,
            });
        }
        let sb = Superblock {
            inodes_count: groups as u32 * INODES_PER_GROUP,
            blocks_count: total_blocks,
            free_blocks_count: free_blocks_total,
            free_inodes_count: groups as u32 * INODES_PER_GROUP - (FIRST_FREE_INO - 1),
            first_data_block: 0,
            log_block_size: 2,
            blocks_per_group: BLOCKS_PER_GROUP,
            inodes_per_group: INODES_PER_GROUP,
            magic: EXT_MAGIC,
        };
        let mut fs = ExtFs {
            dev,
            sb,
            groups: gds,
            gdt_blocks,
            clock: 1,
            sb_dirty: true,
        };
        // Root directory.
        let mut root = Inode::new_dir();
        let root_block = fs.alloc_block(0)?;
        root.block[0] = root_block;
        root.size = BLOCK_SIZE as u64;
        root.blocks512 = SECTORS_PER_BLOCK as u32;
        let mut dirblock = vec![0u8; BLOCK_SIZE];
        let r1 = rec_len_for(1);
        write_dirent(&mut dirblock, ROOT_INO, FileType::Directory, ".", r1);
        write_dirent(
            &mut dirblock[r1..],
            ROOT_INO,
            FileType::Directory,
            "..",
            BLOCK_SIZE - r1,
        );
        fs.write_block(root_block as u64, &dirblock)?;
        fs.write_inode(ROOT_INO, &root)?;
        fs.groups[0].used_dirs_count += 1;
        fs.sync()?;
        Ok(fs)
    }

    /// Mounts an existing filesystem.
    ///
    /// # Errors
    ///
    /// [`FsError::BadMagic`] when the superblock is absent or corrupt.
    pub fn mount(mut dev: D) -> Result<ExtFs<D>, FsError> {
        let mut block0 = vec![0u8; BLOCK_SIZE];
        dev.read(0, &mut block0)?;
        let sb = Superblock::read_from(&block0).ok_or(FsError::BadMagic)?;
        let groups = sb.group_count();
        let gdt_blocks = (groups as usize * GroupDesc::SIZE).div_ceil(BLOCK_SIZE) as u64;
        let mut gds = Vec::with_capacity(groups as usize);
        let mut gdt = vec![0u8; (gdt_blocks as usize) * BLOCK_SIZE];
        dev.read(SECTORS_PER_BLOCK, &mut gdt)?;
        for g in 0..groups as usize {
            gds.push(GroupDesc::read_from(&gdt[g * GroupDesc::SIZE..]));
        }
        Ok(ExtFs {
            dev,
            sb,
            groups: gds,
            gdt_blocks,
            clock: 1,
            sb_dirty: false,
        })
    }

    /// The cached superblock.
    pub fn superblock(&self) -> &Superblock {
        &self.sb
    }

    /// The cached group descriptors.
    pub fn group_descs(&self) -> &[GroupDesc] {
        &self.groups
    }

    /// Mutable access to the underlying device (e.g. to drain a
    /// recording log).
    pub fn device_mut(&mut self) -> &mut D {
        &mut self.dev
    }

    /// Unmounts, flushing caches, and returns the device.
    ///
    /// # Errors
    ///
    /// Propagates device errors from the final sync.
    pub fn into_device(mut self) -> Result<D, FsError> {
        self.sync()?;
        Ok(self.dev)
    }

    /// Writes back the superblock and group descriptors.
    ///
    /// # Errors
    ///
    /// Propagates device errors.
    pub fn sync(&mut self) -> Result<(), FsError> {
        if self.sb_dirty {
            let mut block0 = vec![0u8; BLOCK_SIZE];
            self.dev.read(0, &mut block0)?;
            self.sb.write_to(&mut block0);
            self.dev.write(0, &block0)?;
            let mut gdt = vec![0u8; (self.gdt_blocks as usize) * BLOCK_SIZE];
            for (g, gd) in self.groups.iter().enumerate() {
                gd.write_to(&mut gdt[g * GroupDesc::SIZE..]);
            }
            self.dev.write(SECTORS_PER_BLOCK, &gdt)?;
            self.sb_dirty = false;
        }
        self.dev.flush()?;
        Ok(())
    }

    // ---- low-level block / inode access ----

    fn read_block(&mut self, bno: u64) -> Result<Vec<u8>, FsError> {
        let mut buf = vec![0u8; BLOCK_SIZE];
        self.dev.read(bno * SECTORS_PER_BLOCK, &mut buf)?;
        Ok(buf)
    }

    fn write_block(&mut self, bno: u64, data: &[u8]) -> Result<(), FsError> {
        debug_assert_eq!(data.len(), BLOCK_SIZE);
        self.dev.write(bno * SECTORS_PER_BLOCK, data)?;
        Ok(())
    }

    fn inode_location(&self, ino: u32) -> (u64, usize) {
        let idx = (ino - 1) as u64;
        let group = (idx / INODES_PER_GROUP as u64) as usize;
        let within = (idx % INODES_PER_GROUP as u64) as usize;
        let block = self.groups[group].inode_table + (within * INODE_SIZE / BLOCK_SIZE) as u64;
        let offset = (within * INODE_SIZE) % BLOCK_SIZE;
        (block, offset)
    }

    fn read_inode(&mut self, ino: u32) -> Result<Inode, FsError> {
        let (block, offset) = self.inode_location(ino);
        let buf = self.read_block(block)?;
        Ok(Inode::from_bytes(&buf[offset..offset + INODE_SIZE]))
    }

    fn write_inode(&mut self, ino: u32, inode: &Inode) -> Result<(), FsError> {
        let (block, offset) = self.inode_location(ino);
        let mut buf = self.read_block(block)?;
        inode.write_to(&mut buf[offset..offset + INODE_SIZE]);
        self.write_block(block, &buf)
    }

    // ---- allocation ----

    fn alloc_from_bitmap(
        &mut self,
        bitmap_block: u64,
        limit: usize,
    ) -> Result<Option<usize>, FsError> {
        let mut bitmap = self.read_block(bitmap_block)?;
        for idx in 0..limit {
            let byte = idx / 8;
            let bit = 1u8 << (idx % 8);
            if bitmap[byte] & bit == 0 {
                bitmap[byte] |= bit;
                self.write_block(bitmap_block, &bitmap)?;
                return Ok(Some(idx));
            }
        }
        Ok(None)
    }

    fn alloc_block(&mut self, preferred_group: usize) -> Result<u32, FsError> {
        let n = self.groups.len();
        for i in 0..n {
            let g = (preferred_group + i) % n;
            if self.groups[g].free_blocks_count == 0 {
                continue;
            }
            let bitmap_block = self.groups[g].block_bitmap;
            if let Some(idx) = self.alloc_from_bitmap(bitmap_block, BLOCKS_PER_GROUP as usize)? {
                self.groups[g].free_blocks_count -= 1;
                self.sb.free_blocks_count -= 1;
                self.sb_dirty = true;
                return Ok((g as u64 * BLOCKS_PER_GROUP + idx as u64) as u32);
            }
        }
        Err(FsError::NoSpace)
    }

    fn free_block(&mut self, bno: u32) -> Result<(), FsError> {
        let g = (bno as u64 / BLOCKS_PER_GROUP) as usize;
        let idx = (bno as u64 % BLOCKS_PER_GROUP) as usize;
        let bitmap_block = self.groups[g].block_bitmap;
        let mut bitmap = self.read_block(bitmap_block)?;
        bitmap[idx / 8] &= !(1 << (idx % 8));
        self.write_block(bitmap_block, &bitmap)?;
        self.groups[g].free_blocks_count += 1;
        self.sb.free_blocks_count += 1;
        self.sb_dirty = true;
        Ok(())
    }

    fn alloc_inode(&mut self, preferred_group: usize, is_dir: bool) -> Result<u32, FsError> {
        let n = self.groups.len();
        for i in 0..n {
            let g = (preferred_group + i) % n;
            if self.groups[g].free_inodes_count == 0 {
                continue;
            }
            let bitmap_block = self.groups[g].inode_bitmap;
            if let Some(idx) = self.alloc_from_bitmap(bitmap_block, INODES_PER_GROUP as usize)? {
                self.groups[g].free_inodes_count -= 1;
                self.sb.free_inodes_count -= 1;
                if is_dir {
                    self.groups[g].used_dirs_count += 1;
                }
                self.sb_dirty = true;
                return Ok(g as u32 * INODES_PER_GROUP + idx as u32 + 1);
            }
        }
        Err(FsError::NoSpace)
    }

    fn free_inode(&mut self, ino: u32, was_dir: bool) -> Result<(), FsError> {
        let idx = (ino - 1) as usize;
        let g = idx / INODES_PER_GROUP as usize;
        let within = idx % INODES_PER_GROUP as usize;
        let bitmap_block = self.groups[g].inode_bitmap;
        let mut bitmap = self.read_block(bitmap_block)?;
        bitmap[within / 8] &= !(1 << (within % 8));
        self.write_block(bitmap_block, &bitmap)?;
        self.groups[g].free_inodes_count += 1;
        self.sb.free_inodes_count += 1;
        if was_dir {
            self.groups[g].used_dirs_count -= 1;
        }
        self.sb_dirty = true;
        // Clear the on-disk inode (dtime semantics).
        self.write_inode(ino, &Inode::default())
    }

    // ---- block mapping (direct + single/double indirect) ----

    fn bmap(&mut self, inode: &Inode, idx: usize) -> Result<Option<u32>, FsError> {
        if idx < DIRECT_BLOCKS {
            let b = inode.block[idx];
            return Ok(if b == 0 { None } else { Some(b) });
        }
        let idx = idx - DIRECT_BLOCKS;
        if idx < PTRS_PER_BLOCK {
            let ind = inode.block[IND_SLOT];
            if ind == 0 {
                return Ok(None);
            }
            let buf = self.read_block(ind as u64)?;
            let b = u32::from_le_bytes(buf[idx * 4..idx * 4 + 4].try_into().expect("4 bytes"));
            return Ok(if b == 0 { None } else { Some(b) });
        }
        let idx = idx - PTRS_PER_BLOCK;
        if idx < PTRS_PER_BLOCK * PTRS_PER_BLOCK {
            let dind = inode.block[DIND_SLOT];
            if dind == 0 {
                return Ok(None);
            }
            let outer = self.read_block(dind as u64)?;
            let slot = idx / PTRS_PER_BLOCK;
            let ind =
                u32::from_le_bytes(outer[slot * 4..slot * 4 + 4].try_into().expect("4 bytes"));
            if ind == 0 {
                return Ok(None);
            }
            let inner = self.read_block(ind as u64)?;
            let within = idx % PTRS_PER_BLOCK;
            let b = u32::from_le_bytes(
                inner[within * 4..within * 4 + 4]
                    .try_into()
                    .expect("4 bytes"),
            );
            return Ok(if b == 0 { None } else { Some(b) });
        }
        Ok(None) // beyond double-indirect reach
    }

    /// Maps `idx`, allocating data and indirect blocks as needed; returns
    /// `(block, freshly_allocated)`. Fresh data blocks may contain stale
    /// bytes from a previous owner — callers must fully overwrite or
    /// zero-fill them (as the kernel's page cache does). The caller must
    /// write the inode back.
    fn bmap_alloc(
        &mut self,
        inode: &mut Inode,
        idx: usize,
        group: usize,
    ) -> Result<(u32, bool), FsError> {
        if let Some(b) = self.bmap(inode, idx)? {
            return Ok((b, false));
        }
        let data = self.alloc_block(group)?;
        inode.blocks512 += SECTORS_PER_BLOCK as u32;
        if idx < DIRECT_BLOCKS {
            inode.block[idx] = data;
            return Ok((data, true));
        }
        let rel = idx - DIRECT_BLOCKS;
        if rel < PTRS_PER_BLOCK {
            if inode.block[IND_SLOT] == 0 {
                let ind = self.alloc_block(group)?;
                inode.blocks512 += SECTORS_PER_BLOCK as u32;
                self.write_block(ind as u64, &vec![0u8; BLOCK_SIZE])?;
                inode.block[IND_SLOT] = ind;
            }
            let ind = inode.block[IND_SLOT] as u64;
            let mut buf = self.read_block(ind)?;
            buf[rel * 4..rel * 4 + 4].copy_from_slice(&data.to_le_bytes());
            self.write_block(ind, &buf)?;
            return Ok((data, true));
        }
        let rel = rel - PTRS_PER_BLOCK;
        if rel >= PTRS_PER_BLOCK * PTRS_PER_BLOCK {
            // Beyond double-indirect: treat as a full file.
            self.free_block(data)?;
            inode.blocks512 -= SECTORS_PER_BLOCK as u32;
            return Err(FsError::NoSpace);
        }
        if inode.block[DIND_SLOT] == 0 {
            let dind = self.alloc_block(group)?;
            inode.blocks512 += SECTORS_PER_BLOCK as u32;
            self.write_block(dind as u64, &vec![0u8; BLOCK_SIZE])?;
            inode.block[DIND_SLOT] = dind;
        }
        let dind = inode.block[DIND_SLOT] as u64;
        let mut outer = self.read_block(dind)?;
        let slot = rel / PTRS_PER_BLOCK;
        let mut ind =
            u32::from_le_bytes(outer[slot * 4..slot * 4 + 4].try_into().expect("4 bytes"));
        if ind == 0 {
            ind = self.alloc_block(group)?;
            inode.blocks512 += SECTORS_PER_BLOCK as u32;
            self.write_block(ind as u64, &vec![0u8; BLOCK_SIZE])?;
            outer[slot * 4..slot * 4 + 4].copy_from_slice(&ind.to_le_bytes());
            self.write_block(dind, &outer)?;
        }
        let mut inner = self.read_block(ind as u64)?;
        let within = rel % PTRS_PER_BLOCK;
        inner[within * 4..within * 4 + 4].copy_from_slice(&data.to_le_bytes());
        self.write_block(ind as u64, &inner)?;
        Ok((data, true))
    }

    /// Frees every block reachable from `inode`.
    fn free_inode_blocks(&mut self, inode: &Inode) -> Result<(), FsError> {
        for &b in &inode.block[..DIRECT_BLOCKS] {
            if b != 0 {
                self.free_block(b)?;
            }
        }
        if inode.block[IND_SLOT] != 0 {
            let buf = self.read_block(inode.block[IND_SLOT] as u64)?;
            for i in 0..PTRS_PER_BLOCK {
                let b = u32::from_le_bytes(buf[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
                if b != 0 {
                    self.free_block(b)?;
                }
            }
            self.free_block(inode.block[IND_SLOT])?;
        }
        if inode.block[DIND_SLOT] != 0 {
            let outer = self.read_block(inode.block[DIND_SLOT] as u64)?;
            for s in 0..PTRS_PER_BLOCK {
                let ind = u32::from_le_bytes(outer[s * 4..s * 4 + 4].try_into().expect("4 bytes"));
                if ind == 0 {
                    continue;
                }
                let inner = self.read_block(ind as u64)?;
                for i in 0..PTRS_PER_BLOCK {
                    let b =
                        u32::from_le_bytes(inner[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
                    if b != 0 {
                        self.free_block(b)?;
                    }
                }
                self.free_block(ind)?;
            }
            self.free_block(inode.block[DIND_SLOT])?;
        }
        Ok(())
    }

    // ---- directories ----

    fn dir_blocks(&mut self, dir: &Inode) -> Result<Vec<u64>, FsError> {
        let count = (dir.size as usize).div_ceil(BLOCK_SIZE);
        let mut out = Vec::with_capacity(count);
        for i in 0..count {
            if let Some(b) = self.bmap(dir, i)? {
                out.push(b as u64);
            }
        }
        Ok(out)
    }

    fn dir_lookup(&mut self, dir_ino: u32, name: &str) -> Result<Option<DirEntry>, FsError> {
        let dir = self.read_inode(dir_ino)?;
        if !dir.is_dir() {
            return Err(FsError::NotADirectory);
        }
        for b in self.dir_blocks(&dir)? {
            let buf = self.read_block(b)?;
            if let Some(e) = parse_dirents(&buf).into_iter().find(|e| e.name == name) {
                return Ok(Some(e));
            }
        }
        Ok(None)
    }

    fn dir_add(&mut self, dir_ino: u32, name: &str, ino: u32, ft: FileType) -> Result<(), FsError> {
        if name.is_empty() || name.len() > MAX_NAME_LEN || name.contains('/') {
            return Err(FsError::InvalidPath);
        }
        let mut dir = self.read_inode(dir_ino)?;
        if !dir.is_dir() {
            return Err(FsError::NotADirectory);
        }
        let needed = rec_len_for(name.len());
        // Scan blocks for slack inside an existing record.
        for b in self.dir_blocks(&dir)? {
            let mut buf = self.read_block(b)?;
            let mut off = 0usize;
            while off + 8 <= BLOCK_SIZE {
                let entry_ino = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
                let rec_len =
                    u16::from_le_bytes(buf[off + 4..off + 6].try_into().expect("2 bytes")) as usize;
                if rec_len < 8 || off + rec_len > BLOCK_SIZE {
                    break;
                }
                let name_len = buf[off + 6] as usize;
                let used = if entry_ino == 0 {
                    0
                } else {
                    rec_len_for(name_len)
                };
                if rec_len - used >= needed {
                    // Split: shrink the existing record, place ours after.
                    if entry_ino != 0 {
                        buf[off + 4..off + 6].copy_from_slice(&(used as u16).to_le_bytes());
                    }
                    let new_off = off + used;
                    let new_len = rec_len - used;
                    write_dirent(&mut buf[new_off..], ino, ft, name, new_len);
                    self.write_block(b, &buf)?;
                    return Ok(());
                }
                off += rec_len;
            }
        }
        // No slack: append a fresh directory block.
        let group = ((dir_ino - 1) / INODES_PER_GROUP) as usize;
        let idx = (dir.size as usize) / BLOCK_SIZE;
        let (b, _fresh) = self.bmap_alloc(&mut dir, idx, group)?;
        let mut buf = vec![0u8; BLOCK_SIZE];
        write_dirent(&mut buf, ino, ft, name, BLOCK_SIZE);
        self.write_block(b as u64, &buf)?;
        dir.size += BLOCK_SIZE as u64;
        dir.mtime = self.tick();
        self.write_inode(dir_ino, &dir)?;
        Ok(())
    }

    fn dir_remove(&mut self, dir_ino: u32, name: &str) -> Result<(), FsError> {
        let dir = self.read_inode(dir_ino)?;
        for b in self.dir_blocks(&dir)? {
            let mut buf = self.read_block(b)?;
            let mut off = 0usize;
            let mut prev: Option<usize> = None;
            while off + 8 <= BLOCK_SIZE {
                let entry_ino = u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"));
                let rec_len =
                    u16::from_le_bytes(buf[off + 4..off + 6].try_into().expect("2 bytes")) as usize;
                if rec_len < 8 || off + rec_len > BLOCK_SIZE {
                    break;
                }
                let name_len = buf[off + 6] as usize;
                let entry_name =
                    std::str::from_utf8(&buf[off + 8..off + 8 + name_len]).unwrap_or("");
                if entry_ino != 0 && entry_name == name {
                    match prev {
                        Some(p) => {
                            // Merge into the previous record (classic ext2).
                            let prev_len =
                                u16::from_le_bytes(buf[p + 4..p + 6].try_into().expect("2 bytes"))
                                    as usize;
                            let merged = (prev_len + rec_len) as u16;
                            buf[p + 4..p + 6].copy_from_slice(&merged.to_le_bytes());
                        }
                        None => {
                            // First record: just clear its inode field.
                            buf[off..off + 4].copy_from_slice(&0u32.to_le_bytes());
                        }
                    }
                    self.write_block(b, &buf)?;
                    return Ok(());
                }
                prev = Some(off);
                off += rec_len;
            }
        }
        Err(FsError::NotFound)
    }

    // ---- path resolution ----

    fn split_path(path: &str) -> Result<Vec<&str>, FsError> {
        if !path.starts_with('/') {
            return Err(FsError::InvalidPath);
        }
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        if comps.iter().any(|c| c.len() > MAX_NAME_LEN) {
            return Err(FsError::InvalidPath);
        }
        Ok(comps)
    }

    fn namei(&mut self, path: &str) -> Result<u32, FsError> {
        let comps = Self::split_path(path)?;
        let mut ino = ROOT_INO;
        for c in comps {
            let entry = self.dir_lookup(ino, c)?.ok_or(FsError::NotFound)?;
            ino = entry.inode;
        }
        Ok(ino)
    }

    fn namei_parent<'p>(&mut self, path: &'p str) -> Result<(u32, &'p str), FsError> {
        let comps = Self::split_path(path)?;
        let (&last, parents) = comps.split_last().ok_or(FsError::InvalidPath)?;
        let mut ino = ROOT_INO;
        for c in parents {
            let entry = self.dir_lookup(ino, c)?.ok_or(FsError::NotFound)?;
            ino = entry.inode;
        }
        Ok((ino, last))
    }

    fn tick(&mut self) -> u32 {
        self.clock += 1;
        self.clock
    }

    // ---- public operations ----

    /// Creates an empty regular file.
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] if the name is taken, path errors, or
    /// allocation failure.
    pub fn create(&mut self, path: &str) -> Result<(), FsError> {
        let (parent, name) = self.namei_parent(path)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        let group = ((parent - 1) / INODES_PER_GROUP) as usize;
        let ino = self.alloc_inode(group, false)?;
        let mut inode = Inode::new_file();
        inode.mtime = self.tick();
        self.write_inode(ino, &inode)?;
        self.dir_add(parent, name, ino, FileType::Regular)
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExtFs::create`].
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        let (parent, name) = self.namei_parent(path)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        let group = ((parent - 1) / INODES_PER_GROUP) as usize;
        let ino = self.alloc_inode(group, true)?;
        let mut inode = Inode::new_dir();
        let b = self.alloc_block(group)?;
        inode.block[0] = b;
        inode.size = BLOCK_SIZE as u64;
        inode.blocks512 = SECTORS_PER_BLOCK as u32;
        inode.mtime = self.tick();
        let mut buf = vec![0u8; BLOCK_SIZE];
        let r1 = rec_len_for(1);
        write_dirent(&mut buf, ino, FileType::Directory, ".", r1);
        write_dirent(
            &mut buf[r1..],
            parent,
            FileType::Directory,
            "..",
            BLOCK_SIZE - r1,
        );
        self.write_block(b as u64, &buf)?;
        self.write_inode(ino, &inode)?;
        self.dir_add(parent, name, ino, FileType::Directory)?;
        // Parent gains a ".." link.
        let mut p = self.read_inode(parent)?;
        p.links_count += 1;
        self.write_inode(parent, &p)
    }

    /// Creates a symlink at `path` pointing to `target`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExtFs::create`].
    pub fn symlink(&mut self, path: &str, target: &str) -> Result<(), FsError> {
        let (parent, name) = self.namei_parent(path)?;
        if self.dir_lookup(parent, name)?.is_some() {
            return Err(FsError::AlreadyExists);
        }
        let group = ((parent - 1) / INODES_PER_GROUP) as usize;
        let ino = self.alloc_inode(group, false)?;
        let mut inode = Inode::new_symlink();
        inode.mtime = self.tick();
        self.write_inode(ino, &inode)?;
        self.dir_add(parent, name, ino, FileType::Symlink)?;
        // Store the target as file content (no fast symlinks: keeps the
        // on-wire traffic observable).
        self.write_ino(ino, 0, target.as_bytes())?;
        Ok(())
    }

    /// Reads a symlink's target.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::InvalidPath`] when `path` is not
    /// a symlink.
    pub fn readlink(&mut self, path: &str) -> Result<String, FsError> {
        let ino = self.namei(path)?;
        let inode = self.read_inode(ino)?;
        if !inode.is_symlink() {
            return Err(FsError::InvalidPath);
        }
        let data = self.read_ino(ino, 0, inode.size as usize)?;
        Ok(String::from_utf8_lossy(&data).into_owned())
    }

    /// Lists a directory (excluding `.` and `..`).
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] when `path` is not a directory.
    pub fn readdir(&mut self, path: &str) -> Result<Vec<DirEntry>, FsError> {
        let ino = self.namei(path)?;
        let dir = self.read_inode(ino)?;
        if !dir.is_dir() {
            return Err(FsError::NotADirectory);
        }
        let mut out = Vec::new();
        for b in self.dir_blocks(&dir)? {
            let buf = self.read_block(b)?;
            out.extend(
                parse_dirents(&buf)
                    .into_iter()
                    .filter(|e| e.name != "." && e.name != ".."),
            );
        }
        Ok(out)
    }

    /// Stats a path.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for missing paths.
    pub fn stat(&mut self, path: &str) -> Result<Stat, FsError> {
        let ino = self.namei(path)?;
        let inode = self.read_inode(ino)?;
        Ok(Stat {
            ino,
            size: inode.size,
            is_dir: inode.is_dir(),
            is_symlink: inode.is_symlink(),
            links: inode.links_count,
            blocks512: inode.blocks512,
        })
    }

    fn write_ino(&mut self, ino: u32, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let mut inode = self.read_inode(ino)?;
        let group = ((ino - 1) / INODES_PER_GROUP) as usize;
        let mut pos = offset;
        let mut remaining = data;
        while !remaining.is_empty() {
            let idx = (pos / BLOCK_SIZE as u64) as usize;
            let within = (pos % BLOCK_SIZE as u64) as usize;
            let n = (BLOCK_SIZE - within).min(remaining.len());
            let (b, fresh) = self.bmap_alloc(&mut inode, idx, group)?;
            let b = b as u64;
            if within == 0 && n == BLOCK_SIZE {
                self.write_block(b, &remaining[..n])?;
            } else if fresh {
                // A newly allocated block may hold a previous owner's
                // bytes; zero-fill around the written range.
                let mut buf = vec![0u8; BLOCK_SIZE];
                buf[within..within + n].copy_from_slice(&remaining[..n]);
                self.write_block(b, &buf)?;
            } else {
                let mut buf = self.read_block(b)?;
                buf[within..within + n].copy_from_slice(&remaining[..n]);
                self.write_block(b, &buf)?;
            }
            pos += n as u64;
            remaining = &remaining[n..];
        }
        inode.size = inode.size.max(offset + data.len() as u64);
        inode.mtime = self.tick();
        self.write_inode(ino, &inode)
    }

    fn read_ino(&mut self, ino: u32, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let inode = self.read_inode(ino)?;
        let end = (offset + len as u64).min(inode.size);
        if offset >= end {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut pos = offset;
        while pos < end {
            let idx = (pos / BLOCK_SIZE as u64) as usize;
            let within = (pos % BLOCK_SIZE as u64) as usize;
            let n = ((BLOCK_SIZE - within) as u64).min(end - pos) as usize;
            match self.bmap(&inode, idx)? {
                Some(b) => {
                    let buf = self.read_block(b as u64)?;
                    out.extend_from_slice(&buf[within..within + n]);
                }
                None => out.extend(std::iter::repeat_n(0u8, n)), // hole
            }
            pos += n as u64;
        }
        Ok(out)
    }

    /// Writes `data` into the file at byte `offset`, extending it as
    /// needed.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] when `path` is a directory, plus path and
    /// allocation errors.
    pub fn write_file(&mut self, path: &str, offset: u64, data: &[u8]) -> Result<(), FsError> {
        let ino = self.namei(path)?;
        let inode = self.read_inode(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory);
        }
        self.write_ino(ino, offset, data)
    }

    /// Reads up to `len` bytes from the file at byte `offset` (short reads
    /// at EOF; holes read as zeroes).
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] when `path` is a directory, plus path
    /// errors.
    pub fn read_file(&mut self, path: &str, offset: u64, len: usize) -> Result<Vec<u8>, FsError> {
        let ino = self.namei(path)?;
        let inode = self.read_inode(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory);
        }
        self.read_ino(ino, offset, len)
    }

    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExtFs::read_file`].
    pub fn read_file_to_end(&mut self, path: &str) -> Result<Vec<u8>, FsError> {
        let ino = self.namei(path)?;
        let inode = self.read_inode(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory);
        }
        self.read_ino(ino, 0, inode.size as usize)
    }

    /// Removes a file or symlink.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories (use [`ExtFs::rmdir`]).
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        let (parent, name) = self.namei_parent(path)?;
        let entry = self.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
        let mut inode = self.read_inode(entry.inode)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory);
        }
        self.dir_remove(parent, name)?;
        inode.links_count = inode.links_count.saturating_sub(1);
        if inode.links_count == 0 {
            self.free_inode_blocks(&inode)?;
            self.free_inode(entry.inode, false)?;
        } else {
            self.write_inode(entry.inode, &inode)?;
        }
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::DirNotEmpty`] if it has entries, [`FsError::NotADirectory`]
    /// for non-directories.
    pub fn rmdir(&mut self, path: &str) -> Result<(), FsError> {
        let (parent, name) = self.namei_parent(path)?;
        let entry = self.dir_lookup(parent, name)?.ok_or(FsError::NotFound)?;
        let inode = self.read_inode(entry.inode)?;
        if !inode.is_dir() {
            return Err(FsError::NotADirectory);
        }
        for b in self.dir_blocks(&inode)? {
            let buf = self.read_block(b)?;
            if parse_dirents(&buf)
                .iter()
                .any(|e| e.name != "." && e.name != "..")
            {
                return Err(FsError::DirNotEmpty);
            }
        }
        self.dir_remove(parent, name)?;
        self.free_inode_blocks(&inode)?;
        self.free_inode(entry.inode, true)?;
        let mut p = self.read_inode(parent)?;
        p.links_count = p.links_count.saturating_sub(1);
        self.write_inode(parent, &p)
    }

    /// Renames `from` to `to` (replacing an existing regular file at
    /// `to`).
    ///
    /// # Errors
    ///
    /// [`FsError::AlreadyExists`] if `to` names a directory; path errors
    /// otherwise.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        let (from_parent, from_name) = self.namei_parent(from)?;
        let entry = self
            .dir_lookup(from_parent, from_name)?
            .ok_or(FsError::NotFound)?;
        let (to_parent, to_name) = self.namei_parent(to)?;
        // POSIX: renaming a file onto itself is a no-op.
        if from_parent == to_parent && from_name == to_name {
            return Ok(());
        }
        if let Some(existing) = self.dir_lookup(to_parent, to_name)? {
            if existing.inode == entry.inode {
                // Same underlying file reached via both names: no-op.
                return Ok(());
            }
            let existing_inode = self.read_inode(existing.inode)?;
            if existing_inode.is_dir() {
                return Err(FsError::AlreadyExists);
            }
            self.unlink(to)?;
        }
        self.dir_add(to_parent, to_name, entry.inode, entry.file_type)?;
        self.dir_remove(from_parent, from_name)?;
        if entry.file_type == FileType::Directory && from_parent != to_parent {
            // Fix "..".
            let mut p_from = self.read_inode(from_parent)?;
            p_from.links_count = p_from.links_count.saturating_sub(1);
            self.write_inode(from_parent, &p_from)?;
            let mut p_to = self.read_inode(to_parent)?;
            p_to.links_count += 1;
            self.write_inode(to_parent, &p_to)?;
        }
        Ok(())
    }

    /// Truncates a file to zero length, freeing its blocks.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories.
    pub fn truncate(&mut self, path: &str) -> Result<(), FsError> {
        let ino = self.namei(path)?;
        let mut inode = self.read_inode(ino)?;
        if inode.is_dir() {
            return Err(FsError::IsADirectory);
        }
        self.free_inode_blocks(&inode)?;
        inode.block = [0; 15];
        inode.size = 0;
        inode.blocks512 = 0;
        inode.mtime = self.tick();
        self.write_inode(ino, &inode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_block::MemDisk;

    fn fs() -> ExtFs<MemDisk> {
        ExtFs::mkfs(MemDisk::with_capacity_bytes(128 << 20)).unwrap()
    }

    #[test]
    fn mkfs_then_mount_round_trip() {
        let mut f = fs();
        f.create("/hello.txt").unwrap();
        f.write_file("/hello.txt", 0, b"world").unwrap();
        let dev = f.into_device().unwrap();
        let mut f2 = ExtFs::mount(dev).unwrap();
        assert_eq!(f2.read_file_to_end("/hello.txt").unwrap(), b"world");
        assert_eq!(f2.superblock().magic, EXT_MAGIC);
    }

    #[test]
    fn mount_rejects_blank_device() {
        assert!(matches!(
            ExtFs::mount(MemDisk::with_capacity_bytes(16 << 20)),
            Err(FsError::BadMagic)
        ));
    }

    #[test]
    fn mkfs_rejects_tiny_device() {
        assert!(matches!(
            ExtFs::mkfs(MemDisk::with_capacity_bytes(64 * 1024)),
            Err(FsError::DeviceTooSmall)
        ));
    }

    #[test]
    fn create_write_read_small() {
        let mut f = fs();
        f.create("/a.txt").unwrap();
        f.write_file("/a.txt", 0, b"hello extfs").unwrap();
        assert_eq!(f.read_file_to_end("/a.txt").unwrap(), b"hello extfs");
        // Offsets and short reads.
        assert_eq!(f.read_file("/a.txt", 6, 100).unwrap(), b"extfs");
        let st = f.stat("/a.txt").unwrap();
        assert_eq!(st.size, 11);
        assert!(!st.is_dir);
    }

    #[test]
    fn large_file_uses_indirect_blocks() {
        let mut f = fs();
        f.create("/big").unwrap();
        // 100 blocks > 12 direct: exercises the single indirect path.
        let data: Vec<u8> = (0..100 * BLOCK_SIZE).map(|i| (i % 253) as u8).collect();
        f.write_file("/big", 0, &data).unwrap();
        assert_eq!(f.read_file_to_end("/big").unwrap(), data);
        let st = f.stat("/big").unwrap();
        assert_eq!(st.size, data.len() as u64);
        // i_blocks counts the indirect block too.
        assert!(st.blocks512 > (100 * BLOCK_SIZE / 512) as u32);
    }

    #[test]
    fn very_large_file_uses_double_indirect() {
        let mut f = ExtFs::mkfs(MemDisk::with_capacity_bytes(256 << 20)).unwrap();
        f.create("/huge").unwrap();
        // 12 + 1024 direct+indirect blocks = 4,240 KiB; go past it.
        let blocks = DIRECT_BLOCKS + PTRS_PER_BLOCK + 5;
        let chunk = vec![0xCDu8; BLOCK_SIZE];
        for i in 0..blocks {
            f.write_file("/huge", (i * BLOCK_SIZE) as u64, &chunk)
                .unwrap();
        }
        let st = f.stat("/huge").unwrap();
        assert_eq!(st.size, (blocks * BLOCK_SIZE) as u64);
        // Read back something in the double-indirect region.
        let off = ((DIRECT_BLOCKS + PTRS_PER_BLOCK + 2) * BLOCK_SIZE) as u64;
        assert_eq!(f.read_file("/huge", off, 16).unwrap(), vec![0xCD; 16]);
    }

    #[test]
    fn sparse_files_read_zeroes_in_holes() {
        let mut f = fs();
        f.create("/sparse").unwrap();
        f.write_file("/sparse", 1 << 20, b"tail").unwrap();
        let head = f.read_file("/sparse", 0, 16).unwrap();
        assert_eq!(head, vec![0u8; 16]);
        assert_eq!(f.read_file("/sparse", 1 << 20, 4).unwrap(), b"tail");
    }

    #[test]
    fn directories_nest_and_list() {
        let mut f = fs();
        f.mkdir("/box").unwrap();
        for d in 0..10 {
            f.mkdir(&format!("/box/name{d}")).unwrap();
            for i in 1..=10 {
                f.create(&format!("/box/name{d}/{i}.img")).unwrap();
            }
        }
        let top = f.readdir("/box").unwrap();
        assert_eq!(top.len(), 10);
        let files = f.readdir("/box/name9").unwrap();
        assert_eq!(files.len(), 10);
        assert!(files.iter().all(|e| e.file_type == FileType::Regular));
        assert!(f.stat("/box/name9/7.img").is_ok());
    }

    #[test]
    fn many_entries_overflow_into_second_dir_block() {
        let mut f = fs();
        f.mkdir("/lots").unwrap();
        // ~16 bytes/entry: >300 entries exceed one 4 KiB block.
        for i in 0..300 {
            f.create(&format!("/lots/file_number_{i:04}")).unwrap();
        }
        let entries = f.readdir("/lots").unwrap();
        assert_eq!(entries.len(), 300);
        let st = f.stat("/lots").unwrap();
        assert!(st.size >= 2 * BLOCK_SIZE as u64);
    }

    #[test]
    fn unlink_frees_space() {
        let mut f = fs();
        let free0 = f.superblock().free_blocks_count;
        f.create("/x").unwrap();
        f.write_file("/x", 0, &vec![1u8; 20 * BLOCK_SIZE]).unwrap();
        assert!(f.superblock().free_blocks_count < free0);
        f.unlink("/x").unwrap();
        assert_eq!(f.superblock().free_blocks_count, free0);
        assert_eq!(f.stat("/x"), Err(FsError::NotFound));
        // Name is reusable.
        f.create("/x").unwrap();
    }

    #[test]
    fn rmdir_semantics() {
        let mut f = fs();
        f.mkdir("/d").unwrap();
        f.create("/d/f").unwrap();
        assert_eq!(f.rmdir("/d"), Err(FsError::DirNotEmpty));
        f.unlink("/d/f").unwrap();
        f.rmdir("/d").unwrap();
        assert_eq!(f.stat("/d"), Err(FsError::NotFound));
        f.create("/file").unwrap();
        assert_eq!(f.rmdir("/file"), Err(FsError::NotADirectory));
        assert_eq!(f.unlink("/file"), Ok(()));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut f = fs();
        f.mkdir("/a").unwrap();
        f.mkdir("/b").unwrap();
        f.create("/a/f").unwrap();
        f.write_file("/a/f", 0, b"payload").unwrap();
        f.rename("/a/f", "/b/g").unwrap();
        assert_eq!(f.stat("/a/f"), Err(FsError::NotFound));
        assert_eq!(f.read_file_to_end("/b/g").unwrap(), b"payload");
        // Replace an existing file.
        f.create("/b/h").unwrap();
        f.write_file("/b/h", 0, b"old").unwrap();
        f.rename("/b/g", "/b/h").unwrap();
        assert_eq!(f.read_file_to_end("/b/h").unwrap(), b"payload");
        // Directories cannot be replaced.
        f.mkdir("/b/dir").unwrap();
        f.create("/c").unwrap();
        assert_eq!(f.rename("/c", "/b/dir"), Err(FsError::AlreadyExists));
    }

    #[test]
    fn symlink_round_trip() {
        let mut f = fs();
        f.mkdir("/etc").unwrap();
        f.mkdir("/etc/init.d").unwrap();
        f.create("/etc/init.d/DbSecuritySpt").unwrap();
        f.symlink("/etc/S97DbSecuritySpt", "/etc/init.d/DbSecuritySpt")
            .unwrap();
        assert_eq!(
            f.readlink("/etc/S97DbSecuritySpt").unwrap(),
            "/etc/init.d/DbSecuritySpt"
        );
        let st = f.stat("/etc/S97DbSecuritySpt").unwrap();
        assert!(st.is_symlink);
        assert_eq!(
            f.readlink("/etc/init.d/DbSecuritySpt"),
            Err(FsError::InvalidPath)
        );
    }

    #[test]
    fn truncate_frees_blocks() {
        let mut f = fs();
        f.create("/t").unwrap();
        f.write_file("/t", 0, &vec![9u8; 50 * BLOCK_SIZE]).unwrap();
        let free_before = f.superblock().free_blocks_count;
        f.truncate("/t").unwrap();
        assert!(f.superblock().free_blocks_count > free_before);
        assert_eq!(f.stat("/t").unwrap().size, 0);
        assert!(f.read_file_to_end("/t").unwrap().is_empty());
    }

    #[test]
    fn path_errors() {
        let mut f = fs();
        assert_eq!(f.create("relative"), Err(FsError::InvalidPath));
        assert_eq!(f.stat("/missing/deep"), Err(FsError::NotFound));
        f.create("/plain").unwrap();
        assert_eq!(f.create("/plain/under"), Err(FsError::NotADirectory));
        assert_eq!(f.readdir("/plain"), Err(FsError::NotADirectory));
        assert_eq!(f.read_file("/", 0, 1), Err(FsError::IsADirectory));
        let long = "x".repeat(300);
        assert_eq!(f.create(&format!("/{long}")), Err(FsError::InvalidPath));
    }

    #[test]
    fn overwrite_in_place() {
        let mut f = fs();
        f.create("/o").unwrap();
        f.write_file("/o", 0, b"aaaaaaaaaa").unwrap();
        f.write_file("/o", 3, b"BBB").unwrap();
        assert_eq!(f.read_file_to_end("/o").unwrap(), b"aaaBBBaaaa");
        assert_eq!(f.stat("/o").unwrap().size, 10);
    }

    #[test]
    fn fills_until_no_space() {
        let mut f = ExtFs::mkfs(MemDisk::with_capacity_bytes(40 << 20)).unwrap();
        f.create("/fill").unwrap();
        let chunk = vec![7u8; BLOCK_SIZE];
        let mut written = 0u64;
        let err = loop {
            match f.write_file("/fill", written, &chunk) {
                Ok(()) => written += BLOCK_SIZE as u64,
                Err(e) => break e,
            }
        };
        assert_eq!(err, FsError::NoSpace);
        assert!(written > 20 << 20, "only wrote {written} bytes");
        // The filesystem remains consistent: reads still work.
        assert_eq!(f.read_file("/fill", 0, 8).unwrap(), vec![7u8; 8]);
    }
}

//! Directory entries (variable-length ext2 dirents).

/// File type byte stored in directory entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

impl FileType {
    /// ext2 `file_type` encoding.
    pub fn to_byte(self) -> u8 {
        match self {
            FileType::Regular => 1,
            FileType::Directory => 2,
            FileType::Symlink => 7,
        }
    }

    /// Decodes the ext2 `file_type` byte.
    pub fn from_byte(b: u8) -> Option<FileType> {
        match b {
            1 => Some(FileType::Regular),
            2 => Some(FileType::Directory),
            7 => Some(FileType::Symlink),
            _ => None,
        }
    }
}

/// A parsed directory entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Inode number (0 = deleted placeholder).
    pub inode: u32,
    /// Entry type.
    pub file_type: FileType,
    /// File name.
    pub name: String,
}

/// Longest permitted file name.
pub const MAX_NAME_LEN: usize = 255;

/// On-disk size of an entry with an `n`-byte name (4-byte aligned).
pub fn rec_len_for(name_len: usize) -> usize {
    (8 + name_len).div_ceil(4) * 4
}

/// Serializes one dirent into `buf` with the given record length.
///
/// # Panics
///
/// Panics if `rec_len` cannot hold the name or exceeds `buf`.
pub fn write_dirent(buf: &mut [u8], inode: u32, file_type: FileType, name: &str, rec_len: usize) {
    assert!(rec_len >= rec_len_for(name.len()), "rec_len too small");
    assert!(rec_len <= buf.len(), "rec_len beyond buffer");
    assert!(name.len() <= MAX_NAME_LEN, "name too long");
    buf[..rec_len].fill(0);
    buf[0..4].copy_from_slice(&inode.to_le_bytes());
    buf[4..6].copy_from_slice(&(rec_len as u16).to_le_bytes());
    buf[6] = name.len() as u8;
    buf[7] = file_type.to_byte();
    buf[8..8 + name.len()].copy_from_slice(name.as_bytes());
}

/// Parses every live dirent in a directory data block.
///
/// Tolerant of garbage (stops at malformed records), because the
/// semantics-reconstruction engine parses blocks sniffed off the wire.
pub fn parse_dirents(block: &[u8]) -> Vec<DirEntry> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off + 8 <= block.len() {
        let inode = u32::from_le_bytes(block[off..off + 4].try_into().expect("4 bytes"));
        let rec_len =
            u16::from_le_bytes(block[off + 4..off + 6].try_into().expect("2 bytes")) as usize;
        let name_len = block[off + 6] as usize;
        if rec_len < 8 || off + rec_len > block.len() || 8 + name_len > rec_len {
            break;
        }
        if inode != 0 && name_len > 0 {
            if let (Some(ft), Ok(name)) = (
                FileType::from_byte(block[off + 7]),
                std::str::from_utf8(&block[off + 8..off + 8 + name_len]),
            ) {
                out.push(DirEntry {
                    inode,
                    file_type: ft,
                    name: name.to_owned(),
                });
            }
        }
        off += rec_len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::BLOCK_SIZE;

    #[test]
    fn single_entry_fills_block() {
        let mut block = vec![0u8; BLOCK_SIZE];
        write_dirent(&mut block, 2, FileType::Directory, ".", BLOCK_SIZE);
        let got = parse_dirents(&block);
        assert_eq!(
            got,
            vec![DirEntry {
                inode: 2,
                file_type: FileType::Directory,
                name: ".".into()
            }]
        );
    }

    #[test]
    fn packed_entries_parse_in_order() {
        let mut block = vec![0u8; BLOCK_SIZE];
        let r1 = rec_len_for(1);
        let r2 = rec_len_for(2);
        write_dirent(&mut block, 2, FileType::Directory, ".", r1);
        write_dirent(&mut block[r1..], 5, FileType::Directory, "..", r2);
        let rest = BLOCK_SIZE - r1 - r2;
        write_dirent(&mut block[r1 + r2..], 12, FileType::Regular, "1.img", rest);
        let names: Vec<String> = parse_dirents(&block).into_iter().map(|e| e.name).collect();
        assert_eq!(names, vec![".", "..", "1.img"]);
    }

    #[test]
    fn deleted_entries_are_skipped() {
        let mut block = vec![0u8; BLOCK_SIZE];
        let r1 = rec_len_for(5);
        write_dirent(&mut block, 0, FileType::Regular, "gone!", r1); // inode 0
        write_dirent(
            &mut block[r1..],
            9,
            FileType::Regular,
            "live",
            BLOCK_SIZE - r1,
        );
        let got = parse_dirents(&block);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].name, "live");
    }

    #[test]
    fn malformed_records_stop_parsing_safely() {
        let mut block = vec![0u8; 64];
        block[0..4].copy_from_slice(&7u32.to_le_bytes());
        block[4..6].copy_from_slice(&4u16.to_le_bytes()); // rec_len < 8
        assert!(parse_dirents(&block).is_empty());
        // rec_len points past the end.
        block[4..6].copy_from_slice(&1000u16.to_le_bytes());
        assert!(parse_dirents(&block).is_empty());
    }

    #[test]
    fn rec_len_alignment() {
        assert_eq!(rec_len_for(1), 12);
        assert_eq!(rec_len_for(4), 12);
        assert_eq!(rec_len_for(5), 16);
        assert_eq!(rec_len_for(0), 8);
    }

    #[test]
    fn file_type_round_trip() {
        for ft in [FileType::Regular, FileType::Directory, FileType::Symlink] {
            assert_eq!(FileType::from_byte(ft.to_byte()), Some(ft));
        }
        assert_eq!(FileType::from_byte(0), None);
    }
}

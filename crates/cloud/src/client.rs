//! The tenant VM's block I/O path: virtio-blk → host initiator → wire.
//!
//! A [`VolumeClient`] is the compute-host application that owns one block
//! session for one attached volume and drives it with a pluggable
//! [`Workload`] (Fio-like generators, PostMark, OLTP clients — see
//! `storm-workloads`). The wire protocol is pluggable too: the client
//! holds a `Box<dyn Transport>` and [`TransportKind`] in the config picks
//! iSCSI (the paper's deployment) or the nvmeq multi-queue protocol,
//! whose submission ring keeps up to `queue_depth` tagged commands in
//! flight and batches each burst into one doorbell frame. CPU spent
//! issuing and completing I/O is charged to the VM's label, which is how
//! the Figure-10 utilization breakdown gets its per-VM numbers.

use std::collections::HashMap;

use bytes::Bytes;

use storm_iscsi::{
    Initiator, InitiatorConfig, IoTag, IscsiTransport, ScsiStatus, Transport, TransportEvent,
    TransportKind,
};
use storm_net::{App, CloseReason, Cx, SendQueue, SockAddr, SockId};
use storm_nvmeq::{NvmeqConfig, NvmeqInitiator};
use storm_sim::metrics::{LatencyStats, Meter, Timeline};
use storm_sim::trace::{req_token, Hop, TraceEvent, TraceHook};
use storm_sim::{SimDuration, SimRng, SimTime};

/// A workload-chosen request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(pub u64);

/// Request direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Data from the volume.
    Read,
    /// Data to the volume.
    Write,
    /// Cache flush.
    Flush,
}

/// Completion of an I/O request.
#[derive(Debug, Clone)]
pub struct IoResult {
    /// Whether the SCSI status was GOOD.
    pub ok: bool,
    /// Read payload (empty for writes/flushes/errors).
    pub data: Bytes,
    /// Issue-to-completion latency.
    pub latency: SimDuration,
}

/// The interface a [`Workload`] uses to drive I/O.
///
/// Commands are queued during the callback and executed when it returns,
/// so workloads are plain state machines with no borrow gymnastics.
#[derive(Debug)]
pub struct IoCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// Number of requests currently in flight (before this callback's
    /// commands).
    pub in_flight: usize,
    rng: &'a mut SimRng,
    next_req: &'a mut u64,
    cmds: Vec<IoCmd>,
}

#[derive(Debug)]
enum IoCmd {
    Read { req: ReqId, lba: u64, sectors: u32 },
    Write { req: ReqId, lba: u64, data: Bytes },
    Flush { req: ReqId },
    Timer { delay: SimDuration, token: u64 },
    Charge { cost: SimDuration },
    Stop,
}

impl<'a> IoCtx<'a> {
    /// The workload's deterministic random source.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    fn req(&mut self) -> ReqId {
        let r = ReqId(*self.next_req);
        *self.next_req += 1;
        r
    }

    /// Queues a read of `sectors` sectors at `lba`.
    pub fn read(&mut self, lba: u64, sectors: u32) -> ReqId {
        let req = self.req();
        self.cmds.push(IoCmd::Read { req, lba, sectors });
        req
    }

    /// Queues a write of `data` at `lba`.
    pub fn write(&mut self, lba: u64, data: Bytes) -> ReqId {
        let req = self.req();
        self.cmds.push(IoCmd::Write { req, lba, data });
        req
    }

    /// Queues a flush.
    pub fn flush(&mut self) -> ReqId {
        let req = self.req();
        self.cmds.push(IoCmd::Flush { req });
        req
    }

    /// Schedules a workload timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.cmds.push(IoCmd::Timer { delay, token });
    }

    /// Charges guest CPU time (e.g. in-VM encryption) to the VM's label.
    pub fn charge_vm_cpu(&mut self, cost: SimDuration) {
        self.cmds.push(IoCmd::Charge { cost });
    }

    /// Declares the workload finished; no further I/O is issued.
    pub fn stop(&mut self) {
        self.cmds.push(IoCmd::Stop);
    }
}

/// A block workload run inside a tenant VM.
///
/// `Workload: Any` so harnesses can downcast a client's workload (via
/// [`VolumeClient::workload_ref`]) to read results after a run.
#[allow(unused_variables)]
pub trait Workload: std::any::Any {
    /// Called once when the volume becomes ready (login complete).
    fn start(&mut self, io: &mut IoCtx<'_>);
    /// Called when a request completes.
    fn completed(&mut self, io: &mut IoCtx<'_>, req: ReqId, kind: IoKind, result: IoResult);
    /// Called for timers set via [`IoCtx::set_timer`].
    fn timer(&mut self, io: &mut IoCtx<'_>, token: u64) {}
    /// Called if the session drops.
    fn disconnected(&mut self, io: &mut IoCtx<'_>) {}
}

impl dyn Workload {
    /// Downcasts to a concrete workload type.
    pub fn downcast_ref<T: Workload>(&self) -> Option<&T> {
        let any: &dyn std::any::Any = self;
        any.downcast_ref()
    }

    /// Downcasts to a concrete workload type (mutable).
    pub fn downcast_mut<T: Workload>(&mut self) -> Option<&mut T> {
        let any: &mut dyn std::any::Any = self;
        any.downcast_mut()
    }
}

/// Per-client measurement results.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Completed reads.
    pub reads: Meter,
    /// Completed writes.
    pub writes: Meter,
    /// Read latencies.
    pub read_latency: LatencyStats,
    /// Write latencies.
    pub write_latency: LatencyStats,
    /// All-request latencies.
    pub latency: LatencyStats,
    /// Completions per second (Figure-13 style timeline).
    pub timeline: Option<Timeline>,
    /// I/O errors observed.
    pub errors: u64,
}

impl ClientStats {
    /// Total completed operations.
    pub fn ops(&self) -> u64 {
        self.reads.count() + self.writes.count()
    }

    /// Operations per second over `window`.
    pub fn iops(&self, window: SimDuration) -> f64 {
        if window.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.ops() as f64 / window.as_secs_f64()
    }
}

/// Configuration for a [`VolumeClient`].
#[derive(Debug, Clone)]
pub struct VolumeClientConfig {
    /// The target portal (always the *real* storage address — StorM's
    /// splicing redirects transparently underneath).
    pub target: SockAddr,
    /// iSCSI initiator identity and parameters. The IQNs double as the
    /// nvmeq connect identities, so one config covers both protocols.
    pub initiator: InitiatorConfig,
    /// Wire protocol for the session.
    pub transport: TransportKind,
    /// Submission-ring depth for [`TransportKind::Nvmeq`]: commands
    /// beyond this park in the host's software queue. Ignored by iSCSI.
    pub queue_depth: u16,
    /// CPU label for this VM (e.g. `"vm:mysql"`).
    pub vm_label: String,
    /// Per-request virtio-blk + guest block-layer CPU cost.
    pub per_io_cpu: SimDuration,
    /// Workload RNG seed.
    pub seed: u64,
    /// Record a per-second completion timeline.
    pub timeline: bool,
    /// Telemetry hook; the guest initiator mints each request's
    /// [`storm_sim::trace::ReqToken`] here (source port + ITT).
    pub trace: TraceHook,
}

impl VolumeClientConfig {
    /// Sensible defaults for `target` and a label.
    pub fn new(target: SockAddr, initiator: InitiatorConfig, vm_label: impl Into<String>) -> Self {
        VolumeClientConfig {
            target,
            initiator,
            transport: TransportKind::Iscsi,
            queue_depth: 32,
            vm_label: vm_label.into(),
            per_io_cpu: SimDuration::from_micros(40),
            seed: 1,
            timeline: false,
            trace: TraceHook::none(),
        }
    }
}

/// The compute-host app owning one volume session + workload.
pub struct VolumeClient {
    cfg: VolumeClientConfig,
    ini: Box<dyn Transport>,
    sock: Option<SockId>,
    sendq: SendQueue,
    workload: Option<Box<dyn Workload>>,
    pending: HashMap<IoTag, (ReqId, IoKind, SimTime, usize)>,
    next_req: u64,
    rng: SimRng,
    /// Measurements (public for harnesses to read after a run).
    pub stats: ClientStats,
    stopped: bool,
    ready: bool,
    tuple: Option<storm_net::FourTuple>,
}

impl VolumeClient {
    /// Creates a client that will run `workload` once attached.
    pub fn new(cfg: VolumeClientConfig, workload: Box<dyn Workload>) -> Self {
        let rng = SimRng::seed_from_u64(cfg.seed);
        let ini: Box<dyn Transport> = match cfg.transport {
            TransportKind::Iscsi => {
                Box::new(IscsiTransport::new(Initiator::new(cfg.initiator.clone())))
            }
            TransportKind::Nvmeq => Box::new(NvmeqInitiator::new(NvmeqConfig {
                initiator_iqn: cfg.initiator.initiator_iqn.clone(),
                target_iqn: cfg.initiator.target_iqn.clone(),
                queue_depth: cfg.queue_depth,
            })),
        };
        let timeline = cfg
            .timeline
            .then(|| Timeline::new(SimDuration::from_secs(1)));
        VolumeClient {
            cfg,
            ini,
            sock: None,
            sendq: SendQueue::new(),
            workload: Some(workload),
            pending: HashMap::new(),
            next_req: 0,
            rng,
            stats: ClientStats {
                timeline,
                ..ClientStats::default()
            },
            stopped: false,
            ready: false,
            tuple: None,
        }
    }

    /// Whether the session reached full-feature phase.
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// The session's 4-tuple once connected — the initiator half of
    /// connection attribution (IQN ↔ source port, paper §III-A).
    pub fn tuple(&self) -> Option<storm_net::FourTuple> {
        self.tuple
    }

    /// Downcast-friendly access to the workload.
    pub fn workload_ref(&self) -> Option<&dyn Workload> {
        self.workload.as_deref()
    }

    /// The session's transport (ring/doorbell/coalescing counters).
    pub fn transport(&self) -> &dyn Transport {
        self.ini.as_ref()
    }

    fn flush_out(&mut self, cx: &mut Cx<'_>) {
        if let Some(sock) = self.sock {
            for c in self.ini.take_wire() {
                self.sendq.push_bytes(c);
            }
            self.sendq.pump(cx, sock);
        }
    }

    fn drive<F>(&mut self, cx: &mut Cx<'_>, f: F)
    where
        F: FnOnce(&mut dyn Workload, &mut IoCtx<'_>),
    {
        let Some(mut w) = self.workload.take() else {
            return;
        };
        let mut io = IoCtx {
            now: cx.now(),
            in_flight: self.pending.len(),
            rng: &mut self.rng,
            next_req: &mut self.next_req,
            cmds: Vec::new(),
        };
        f(w.as_mut(), &mut io);
        let cmds = io.cmds;
        self.workload = Some(w);
        for cmd in cmds {
            self.exec(cx, cmd);
        }
        self.flush_out(cx);
    }

    /// Mints the request's path-wide token: the session's source port
    /// (stable across NAT and the relay's port-preserving reconnect) plus
    /// the command's ITT.
    fn req_token_of(&self, tag: IoTag) -> Option<storm_sim::trace::ReqToken> {
        self.tuple.map(|t| req_token(t.src.port, tag.0))
    }

    /// Emits the issue-side trace events: the request's birth and the
    /// guest's virtio/initiator CPU stage.
    fn trace_issue(&self, now: SimTime, tag: IoTag, kind: u8, bytes: u32) {
        if !self.cfg.trace.is_armed() {
            return;
        }
        let Some(req) = self.req_token_of(tag) else {
            return;
        };
        self.cfg
            .trace
            .emit(now, TraceEvent::Issue { req, kind, bytes });
        self.cfg.trace.emit(
            now,
            TraceEvent::Stage {
                req,
                hop: Hop::Virtio,
                id: 0,
                dur: self.cfg.per_io_cpu,
            },
        );
    }

    fn exec(&mut self, cx: &mut Cx<'_>, cmd: IoCmd) {
        if self.stopped {
            return;
        }
        match cmd {
            IoCmd::Read { req, lba, sectors } => {
                if !self.ready {
                    return;
                }
                let _ = cx.charge(self.cfg.per_io_cpu, &self.cfg.vm_label);
                let tag = self.ini.read(lba, sectors);
                self.trace_issue(cx.now(), tag, 0, sectors * 512);
                self.pending
                    .insert(tag, (req, IoKind::Read, cx.now(), sectors as usize * 512));
            }
            IoCmd::Write { req, lba, data } => {
                if !self.ready {
                    return;
                }
                let _ = cx.charge(self.cfg.per_io_cpu, &self.cfg.vm_label);
                let bytes = data.len();
                let tag = self.ini.write(lba, data);
                self.trace_issue(cx.now(), tag, 1, bytes as u32);
                self.pending
                    .insert(tag, (req, IoKind::Write, cx.now(), bytes));
            }
            IoCmd::Flush { req } => {
                if !self.ready {
                    return;
                }
                let tag = self.ini.flush();
                self.trace_issue(cx.now(), tag, 2, 0);
                self.pending.insert(tag, (req, IoKind::Flush, cx.now(), 0));
            }
            IoCmd::Timer { delay, token } => cx.set_timer(delay, token),
            IoCmd::Charge { cost } => {
                let _ = cx.charge(cost, &self.cfg.vm_label);
            }
            IoCmd::Stop => self.stopped = true,
        }
    }

    /// Emits the completion-side trace events: the guest's completion CPU
    /// stage and the request's end-of-life marker.
    fn trace_complete(&self, now: SimTime, tag: IoTag, ok: bool) {
        if !self.cfg.trace.is_armed() {
            return;
        }
        let Some(req) = self.req_token_of(tag) else {
            return;
        };
        self.cfg.trace.emit(
            now,
            TraceEvent::Stage {
                req,
                hop: Hop::Virtio,
                id: 0,
                dur: self.cfg.per_io_cpu / 2,
            },
        );
        self.cfg.trace.emit(now, TraceEvent::Complete { req, ok });
    }

    fn record(&mut self, cx: &Cx<'_>, kind: IoKind, bytes: usize, issued: SimTime, ok: bool) {
        let lat = cx.now().since(issued);
        if !ok {
            self.stats.errors += 1;
        }
        match kind {
            IoKind::Read => {
                self.stats.reads.record(bytes as u64);
                self.stats.read_latency.record(lat);
            }
            IoKind::Write => {
                self.stats.writes.record(bytes as u64);
                self.stats.write_latency.record(lat);
            }
            IoKind::Flush => {}
        }
        if kind != IoKind::Flush {
            self.stats.latency.record(lat);
            if let Some(t) = &mut self.stats.timeline {
                t.record(cx.now());
            }
        }
    }
}

impl App for VolumeClient {
    fn on_start(&mut self, cx: &mut Cx<'_>) {
        self.sock = Some(cx.connect(self.cfg.target));
    }

    fn on_connected(&mut self, cx: &mut Cx<'_>, sock: SockId) {
        self.tuple = cx.tuple_of(sock);
        self.ini.start();
        self.flush_out(cx);
    }

    fn on_connect_failed(&mut self, cx: &mut Cx<'_>, _sock: SockId) {
        self.drive(cx, |w, io| w.disconnected(io));
    }

    fn on_data(&mut self, cx: &mut Cx<'_>, _sock: SockId, data: Bytes) {
        let events = self.ini.feed_bytes(data);
        for ev in events {
            match ev {
                TransportEvent::Ready => {
                    self.ready = true;
                    self.drive(cx, |w, io| w.start(io));
                }
                TransportEvent::ConnectFailed { .. } => {
                    self.drive(cx, |w, io| w.disconnected(io));
                }
                TransportEvent::ReadDone { tag, status, data } => {
                    if let Some((req, kind, issued, bytes)) = self.pending.remove(&tag) {
                        let _ = cx.charge(self.cfg.per_io_cpu / 2, &self.cfg.vm_label);
                        let ok = status == ScsiStatus::Good;
                        self.trace_complete(cx.now(), tag, ok);
                        self.record(cx, kind, bytes, issued, ok);
                        let latency = cx.now().since(issued);
                        self.drive(cx, move |w, io| {
                            w.completed(io, req, kind, IoResult { ok, data, latency })
                        });
                    }
                }
                TransportEvent::WriteDone { tag, status }
                | TransportEvent::FlushDone { tag, status } => {
                    if let Some((req, kind, issued, bytes)) = self.pending.remove(&tag) {
                        let _ = cx.charge(self.cfg.per_io_cpu / 2, &self.cfg.vm_label);
                        let ok = status == ScsiStatus::Good;
                        self.trace_complete(cx.now(), tag, ok);
                        self.record(cx, kind, bytes, issued, ok);
                        let latency = cx.now().since(issued);
                        self.drive(cx, move |w, io| {
                            w.completed(
                                io,
                                req,
                                kind,
                                IoResult {
                                    ok,
                                    data: Bytes::new(),
                                    latency,
                                },
                            )
                        });
                    }
                }
                TransportEvent::Closed => {
                    self.ready = false;
                }
                TransportEvent::ProtocolError(_) => {
                    if let Some(sock) = self.sock {
                        cx.abort(sock);
                    }
                }
            }
        }
        self.flush_out(cx);
    }

    fn on_writable(&mut self, cx: &mut Cx<'_>, sock: SockId) {
        self.sendq.pump(cx, sock);
    }

    fn on_timer(&mut self, cx: &mut Cx<'_>, token: u64) {
        self.drive(cx, |w, io| w.timer(io, token));
    }

    fn on_closed(&mut self, cx: &mut Cx<'_>, _sock: SockId, _reason: CloseReason) {
        self.ready = false;
        self.drive(cx, |w, io| w.disconnected(io));
    }
}

impl std::fmt::Debug for VolumeClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VolumeClient")
            .field("vm", &self.cfg.vm_label)
            .field("ready", &self.ready)
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

//! The storage host's disk service model.

use std::collections::BTreeMap;

use storm_sim::{SerialResource, SimDuration, SimTime};

/// Performance parameters of a storage host's backing disk (SATA-class by
/// default, like the paper's 1 TB SATA drive).
#[derive(Debug, Clone, Copy)]
pub struct DiskSpec {
    /// Positioning cost of a cache-missing access.
    pub seek: SimDuration,
    /// Media throughput in bytes/second.
    pub bytes_per_sec: u64,
    /// Service time of a cache hit (page-cache copy).
    pub cache_hit: SimDuration,
    /// Page-cache capacity in 4 KiB blocks (0 disables caching).
    pub cache_blocks: usize,
    /// Whether writes complete once cached (write-back page cache).
    pub write_back: bool,
    /// Treat the cache as already warm (repeated-run steady state, as in
    /// the paper's 10-repetition measurements).
    pub prewarmed: bool,
}

impl Default for DiskSpec {
    fn default() -> Self {
        DiskSpec {
            seek: SimDuration::from_micros(800),
            bytes_per_sec: 120_000_000,
            cache_hit: SimDuration::from_micros(400),
            // The paper's Cinder node has 32 GB of RAM: a freshly created
            // 20 GB test volume ends up largely page-cached after warmup.
            cache_blocks: 6_000_000, // ~24 GiB of page cache
            write_back: true,
            prewarmed: false,
        }
    }
}

impl DiskSpec {
    /// The fast provisioning tier: SSD-class service (no seek penalty to
    /// speak of, high media bandwidth). Uncached so tier choice — not
    /// page-cache luck — decides latency, as in IOArbiter's SLO study.
    pub fn fast_tier() -> Self {
        DiskSpec {
            seek: SimDuration::from_micros(60),
            bytes_per_sec: 500_000_000,
            cache_hit: SimDuration::from_micros(60),
            cache_blocks: 0,
            write_back: false,
            prewarmed: false,
        }
    }

    /// The slow provisioning tier: capacity spindle, uncached, long seek.
    pub fn slow_tier() -> Self {
        DiskSpec {
            seek: SimDuration::from_micros(800),
            bytes_per_sec: 120_000_000,
            cache_hit: SimDuration::from_micros(400),
            cache_blocks: 0,
            write_back: false,
            prewarmed: false,
        }
    }
}

/// A single-spindle disk with an LRU page cache and FIFO service queue.
///
/// `serve_*` returns the completion instant of the access; requests queue
/// behind one another like a real non-NCQ SATA disk.
#[derive(Debug)]
pub struct DiskModel {
    spec: DiskSpec,
    queue: SerialResource,
    // LRU cache over 4 KiB-aligned block numbers. BTreeMap so the
    // eviction sweep visits blocks in a fixed order: with a HashMap, an
    // LRU tie would evict whichever entry the hasher served first.
    cache: BTreeMap<u64, u64>, // block -> last-use stamp
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl DiskModel {
    /// Creates a disk with the given parameters.
    pub fn new(spec: DiskSpec) -> Self {
        DiskModel {
            spec,
            queue: SerialResource::new(),
            cache: BTreeMap::new(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// `(hits, misses)` counters.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Total busy time of the spindle.
    pub fn busy_total(&self) -> SimDuration {
        self.queue.busy_total()
    }

    fn touch(&mut self, block: u64) -> bool {
        if self.spec.cache_blocks == 0 {
            return false;
        }
        self.stamp += 1;
        let hit = self.cache.insert(block, self.stamp).is_some() || self.spec.prewarmed;
        if self.cache.len() > self.spec.cache_blocks {
            // Evict the least recently used entry.
            if let Some((&lru, _)) = self.cache.iter().min_by_key(|(_, &s)| s) {
                self.cache.remove(&lru);
            }
        }
        hit
    }

    fn transfer(&self, bytes: usize) -> SimDuration {
        SimDuration::transmission(bytes, self.spec.bytes_per_sec * 8)
    }

    /// Serves a read of `bytes` at sector `lba`; returns completion time.
    ///
    /// Page-cache hits are memory copies — they do not occupy the spindle
    /// and run in parallel across requests. Misses queue FIFO on the
    /// spindle.
    pub fn serve_read(&mut self, now: SimTime, lba: u64, bytes: usize) -> SimTime {
        let blocks = (lba / 8)..=((lba + (bytes as u64 / 512).max(1) - 1) / 8);
        let mut all_hit = true;
        for b in blocks {
            if !self.touch(b) {
                all_hit = false;
            }
        }
        if all_hit {
            self.hits += 1;
            now + self.spec.cache_hit + self.transfer(bytes) / 4
        } else {
            self.misses += 1;
            self.queue.serve(now, self.spec.seek + self.transfer(bytes))
        }
    }

    /// Serves a write of `bytes` at sector `lba`; returns completion time.
    ///
    /// Write-back writes land in the page cache (parallel memory copies);
    /// write-through queues on the spindle.
    pub fn serve_write(&mut self, now: SimTime, lba: u64, bytes: usize) -> SimTime {
        for b in (lba / 8)..=((lba + (bytes as u64 / 512).max(1) - 1) / 8) {
            self.touch(b);
        }
        if self.spec.write_back {
            now + self.spec.cache_hit + self.transfer(bytes) / 4
        } else {
            self.queue.serve(now, self.spec.seek + self.transfer(bytes))
        }
    }

    /// Serves a flush (drains write-back state as one seek).
    pub fn serve_flush(&mut self, now: SimTime) -> SimTime {
        self.queue.serve(now, self.spec.seek)
    }

    /// Occupies the spindle with `work` of bulk activity (tier-migration
    /// copy traffic); returns when the disk is free again.
    pub fn busy_for(&mut self, now: SimTime, work: SimDuration) -> SimTime {
        self.queue.serve(now, work)
    }

    /// Time to stream `bytes` sequentially off this disk (one seek plus
    /// the media transfer) — the cost model for a migration copy.
    pub fn bulk_copy_time(&self, bytes: u64) -> SimDuration {
        self.spec.seek + self.transfer(bytes as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(us: u64) -> SimTime {
        SimTime::from_nanos(us * 1000)
    }

    #[test]
    fn cache_hits_are_fast() {
        let mut d = DiskModel::new(DiskSpec::default());
        let t1 = d.serve_read(at(0), 0, 4096);
        // Second read of the same block hits the cache.
        let t2 = d.serve_read(t1, 0, 4096);
        assert!(
            t2 - t1 < t1 - at(0),
            "hit {:?} vs miss {:?}",
            t2 - t1,
            t1 - at(0)
        );
        let (hits, misses) = d.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn requests_queue_fifo() {
        let mut d = DiskModel::new(DiskSpec {
            cache_blocks: 0,
            ..DiskSpec::default()
        });
        let t1 = d.serve_read(at(0), 0, 4096);
        let t2 = d.serve_read(at(0), 1 << 20, 4096);
        assert!(t2 > t1);
        assert_eq!((t2 - t1).as_nanos(), (t1 - at(0)).as_nanos());
    }

    #[test]
    fn write_back_is_cheaper_than_write_through() {
        let mut wb = DiskModel::new(DiskSpec {
            write_back: true,
            ..DiskSpec::default()
        });
        let mut wt = DiskModel::new(DiskSpec {
            write_back: false,
            ..DiskSpec::default()
        });
        let t_wb = wb.serve_write(at(0), 0, 65536);
        let t_wt = wt.serve_write(at(0), 0, 65536);
        assert!(t_wb < t_wt);
    }

    #[test]
    fn cache_evicts_at_capacity() {
        let mut d = DiskModel::new(DiskSpec {
            cache_blocks: 4,
            ..DiskSpec::default()
        });
        for i in 0..8u64 {
            d.serve_read(at(i), i * 8, 4096);
        }
        // Early blocks were evicted: re-reading block 0 misses.
        let (_, misses_before) = d.cache_stats();
        d.serve_read(at(100), 0, 4096);
        let (_, misses_after) = d.cache_stats();
        assert_eq!(misses_after, misses_before + 1);
    }

    #[test]
    fn flush_busies_the_spindle() {
        let mut d = DiskModel::new(DiskSpec::default());
        let t = d.serve_flush(at(0));
        assert!(t > at(0));
        assert!(d.busy_total() > SimDuration::ZERO);
    }
}

//! SLO-driven backend provisioning: the IOArbiter-style control loop.
//!
//! The [`ProvisioningEngine`] sits above the fleet: volume creates pass
//! through its admission controller (accept / degrade / reject against
//! per-tier IOPS capacity), admitted volumes register with their storage
//! host's QoS scheduler on the chosen tier, and a periodic [`tick`]
//! watches each volume's target-side p99 against its SLO ceiling —
//! persistent violators get a copy-then-cutover migration to the fast
//! tier. Every decision is visible as a [`Hop::Qos`] trace event.
//!
//! [`tick`]: ProvisioningEngine::tick

use std::collections::BTreeMap;

use storm_iscsi::Iqn;
use storm_qos::{AdmissionController, AdmissionDecision, PlacementEngine, VolumeSlo};
use storm_sim::trace::{Hop, TraceEvent};
use storm_sim::SimTime;

use crate::topology::{Cloud, VolumeHandle};

/// One volume under SLO management.
#[derive(Debug, Clone)]
struct Managed {
    iqn: Iqn,
    storage_host: usize,
    tenant: u32,
}

/// A successfully provisioned volume and the ruling that admitted it.
#[derive(Debug, Clone)]
pub struct ProvisionedVolume {
    /// The created volume.
    pub handle: VolumeHandle,
    /// The admission ruling (accepted or degraded; rejects return no
    /// volume at all).
    pub decision: AdmissionDecision,
    /// The SLO actually in force (post-degrade).
    pub slo: VolumeSlo,
}

/// The fleet-level SLO control loop.
#[derive(Debug)]
pub struct ProvisioningEngine {
    admission: AdmissionController,
    placement: PlacementEngine,
    managed: BTreeMap<u64, Managed>,
    migrations_started: u64,
}

impl ProvisioningEngine {
    /// Creates an engine with per-tier IOPS capacities; a volume migrates
    /// after `strike_threshold` consecutive violating p99 observations.
    pub fn new(fast_capacity: u64, slow_capacity: u64, strike_threshold: u32) -> Self {
        ProvisioningEngine {
            admission: AdmissionController::new(fast_capacity, slow_capacity),
            placement: PlacementEngine::new(strike_threshold),
            managed: BTreeMap::new(),
            migrations_started: 0,
        }
    }

    /// Creates a volume of `bytes` on storage host `host` for `tenant`
    /// under the `requested` SLO. Returns `None` when admission rejects
    /// the request (no volume is created); otherwise the volume is
    /// registered with the host's QoS scheduler on the admitted tier.
    pub fn provision(
        &mut self,
        cloud: &mut Cloud,
        now: SimTime,
        bytes: u64,
        host: usize,
        tenant: u32,
        requested: VolumeSlo,
    ) -> Option<ProvisionedVolume> {
        let decision = self.admission.admit(requested);
        cloud.trace_hook().emit_with(now, || TraceEvent::Meta {
            hop: Hop::Qos,
            id: host as u32,
            name: format!("admit:{}:tenant{tenant}", decision.label()),
        });
        let slo = decision.slo()?;
        let handle = cloud.create_volume(bytes, host);
        cloud
            .target_mut(host)
            .register_qos_volume(&handle.iqn, tenant, slo.tier);
        let id = handle.id.0 as u64;
        self.placement.register(id, slo);
        self.managed.insert(
            id,
            Managed {
                iqn: handle.iqn.clone(),
                storage_host: host,
                tenant,
            },
        );
        Some(ProvisionedVolume {
            handle,
            decision,
            slo,
        })
    }

    /// One control epoch: read each managed volume's target-side p99 and
    /// start a copy-then-cutover migration for persistent SLO violators.
    /// Call periodically between [`storm_net::Network::run_until`]
    /// slices. Returns how many migrations this tick started.
    pub fn tick(&mut self, cloud: &mut Cloud, now: SimTime) -> u64 {
        let mut started = 0;
        let ids: Vec<u64> = self.managed.keys().copied().collect();
        for id in ids {
            let m = self.managed[&id].clone();
            // Commit any due cutover first so migration counts and tier
            // maps are current even for idle volumes.
            cloud.target_mut(m.storage_host).poll_migration(now, &m.iqn);
            let p99_us = match cloud.target_mut(m.storage_host).volume_latency(&m.iqn) {
                Some(h) if h.count() > 0 => h.percentile(99.0).as_micros(),
                _ => continue,
            };
            let Some(plan) = self.placement.observe_p99(now, id, p99_us) else {
                continue;
            };
            let cutover = cloud
                .target_mut(m.storage_host)
                .migrate_volume(now, &m.iqn, plan.to);
            if let Some(cutover) = cutover {
                self.migrations_started += 1;
                started += 1;
                let floor = self.placement.slo(id).map_or(0, |s| s.iops_floor);
                self.admission.transfer(plan.from, plan.to, floor);
                self.placement.complete_migration(&plan);
                cloud.trace_hook().emit_with(now, || TraceEvent::Meta {
                    hop: Hop::Qos,
                    id: m.storage_host as u32,
                    name: format!(
                        "migrate:tenant{}:{}->{}:cutover@{}",
                        m.tenant,
                        plan.from.label(),
                        plan.to.label(),
                        cutover.as_micros()
                    ),
                });
            }
        }
        started
    }

    /// Admission decision counts per label.
    pub fn decision_counts(&self) -> &BTreeMap<&'static str, u64> {
        self.admission.decision_counts()
    }

    /// Migrations the control loop has started.
    pub fn migrations_started(&self) -> u64 {
        self.migrations_started
    }

    /// The SLO currently in force for volume `id` (post-degrade,
    /// post-migration).
    pub fn slo(&self, id: u64) -> Option<VolumeSlo> {
        self.placement.slo(id)
    }
}

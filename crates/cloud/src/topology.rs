//! Cloud assembly: hosts, the two networks, volumes and guests.

use std::net::Ipv4Addr;

use storm_block::{SharedVolume, VolumeGroup, VolumeId};
use storm_iscsi::{InitiatorConfig, Iqn, SessionParams, TransportKind, ISCSI_PORT};
use storm_net::{AppId, HostId, IfaceId, LinkSpec, MacAddr, Network, PortNo, SockAddr, SwitchId};
use storm_sim::trace::TraceHook;
use storm_sim::SimDuration;

use crate::client::{VolumeClient, VolumeClientConfig, Workload};
use crate::target::{TargetHostApp, TargetHostConfig};

/// Cloud-wide build parameters.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Number of compute hosts.
    pub compute_hosts: usize,
    /// Number of storage hosts.
    pub storage_hosts: usize,
    /// CPU cores per host.
    pub cores: usize,
    /// Physical (1 GbE) link parameters.
    pub phys_link: LinkSpec,
    /// VM vif (virtio) link parameters.
    pub virtio_link: LinkSpec,
    /// Gateway-namespace veth link parameters (cheaper than virtio).
    pub veth_link: LinkSpec,
    /// Storage host configuration.
    pub target: TargetHostConfig,
    /// Bytes of backing disk per storage host.
    pub backing_bytes: u64,
    /// Wire protocol guest sessions speak (targets accept both on either
    /// portal — sessions are sniffed by magic byte).
    pub transport: TransportKind,
    /// Submission-ring depth for nvmeq sessions (ignored by iSCSI).
    pub queue_depth: u16,
    /// Simulation seed.
    pub seed: u64,
}

impl Default for CloudConfig {
    fn default() -> Self {
        CloudConfig {
            compute_hosts: 4,
            storage_hosts: 1,
            cores: 8,
            phys_link: LinkSpec::gigabit(),
            virtio_link: LinkSpec::virtio(),
            veth_link: LinkSpec {
                latency: SimDuration::from_nanos(300),
                bandwidth_bps: 10_000_000_000,
                per_packet: SimDuration::from_nanos(400),
                half_duplex: false,
            },
            target: TargetHostConfig::default(),
            backing_bytes: 8 << 30,
            transport: TransportKind::Iscsi,
            queue_depth: 32,
            seed: 42,
        }
    }
}

/// A compute host's identifiers.
#[derive(Debug, Clone, Copy)]
pub struct ComputeHost {
    /// The network node.
    pub host: HostId,
    /// Storage-network NIC address.
    pub storage_ip: Ipv4Addr,
    /// Instance-network NIC address.
    pub instance_ip: Ipv4Addr,
    /// This host's OVS bridge.
    pub ovs: SwitchId,
    /// Storage NIC interface id.
    pub storage_iface: IfaceId,
    /// The instance_sw port of this host's OVS uplink (for FDB seeding).
    pub uplink_port: PortNo,
}

/// A storage host's identifiers.
#[derive(Debug, Clone, Copy)]
pub struct StorageHost {
    /// The network node.
    pub host: HostId,
    /// Storage-network NIC address.
    pub storage_ip: Ipv4Addr,
    /// The target application.
    pub app: AppId,
}

/// A created volume.
#[derive(Debug, Clone)]
pub struct VolumeHandle {
    /// Cinder volume id.
    pub id: VolumeId,
    /// Export IQN.
    pub iqn: Iqn,
    /// Index into [`Cloud::storages`].
    pub storage_host: usize,
    /// The iSCSI portal.
    pub portal: SockAddr,
    /// Shared handle to the backing volume (the platform reads it at
    /// attach time for semantics reconstruction; tests verify contents).
    pub shared: SharedVolume,
    /// Capacity in sectors.
    pub sectors: u64,
}

/// A guest network node: a middle-box VM or a gateway namespace.
#[derive(Debug, Clone, Copy)]
pub struct GuestVm {
    /// The guest's own network node.
    pub node: HostId,
    /// Hosting compute host index.
    pub host_idx: usize,
    /// Instance-network (tenant subnet) address.
    pub instance_ip: Ipv4Addr,
    /// Instance-network vif MAC.
    pub mac: MacAddr,
    /// Storage-network leg address, if any.
    pub storage_ip: Option<Ipv4Addr>,
    /// Port on the hosting OVS.
    pub ovs_port: PortNo,
}

/// The assembled cloud.
pub struct Cloud {
    /// The simulated network (public: experiments drive it directly).
    pub net: Network,
    /// The storage-network switch.
    pub storage_sw: SwitchId,
    /// The instance-network core switch.
    pub instance_sw: SwitchId,
    /// Compute hosts.
    pub computes: Vec<ComputeHost>,
    /// Storage hosts.
    pub storages: Vec<StorageHost>,
    cfg: CloudConfig,
    vgs: Vec<VolumeGroup>,
    guest_count: u32,
    attachments: Vec<crate::attribution::AttachRecord>,
    trace: TraceHook,
}

impl std::fmt::Debug for Cloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cloud")
            .field("computes", &self.computes.len())
            .field("storages", &self.storages.len())
            .finish_non_exhaustive()
    }
}

impl Cloud {
    /// Builds the Figure-1 topology.
    pub fn build(cfg: CloudConfig) -> Cloud {
        let mut net = Network::new(cfg.seed);
        let storage_sw = net.add_switch("storage-sw", 64);
        let instance_sw = net.add_switch("instance-sw", 64);
        let mut computes = Vec::new();
        for i in 0..cfg.compute_hosts {
            let host = net.add_host(format!("compute{i}"), cfg.cores);
            let storage_ip = Ipv4Addr::new(10, 1, 0, 10 + i as u8);
            let instance_ip = Ipv4Addr::new(10, 2, 0, 10 + i as u8);
            let storage_iface = net.add_iface_with(host, storage_ip, 16);
            let instance_iface = net.add_iface_with(host, instance_ip, 16);
            net.link_host_switch(host, storage_iface, storage_sw, cfg.phys_link);
            // Per-host OVS bridge; the host NIC and uplink hang off it.
            let ovs = net.add_switch(format!("ovs-compute{i}"), 48);
            let nic_link = LinkSpec {
                latency: SimDuration::from_nanos(300),
                bandwidth_bps: 10_000_000_000,
                per_packet: SimDuration::from_nanos(200),
                half_duplex: false,
            };
            net.link_host_switch(host, instance_iface, ovs, nic_link);
            let (_l, _pa, uplink_port) = net.link_switches(ovs, instance_sw, cfg.phys_link);
            computes.push(ComputeHost {
                host,
                storage_ip,
                instance_ip,
                ovs,
                storage_iface,
                uplink_port,
            });
        }
        let mut storages = Vec::new();
        let mut vgs = Vec::new();
        for j in 0..cfg.storage_hosts {
            let host = net.add_host(format!("storage{j}"), cfg.cores);
            let storage_ip = Ipv4Addr::new(10, 1, 1, 10 + j as u8);
            let iface = net.add_iface_with(host, storage_ip, 16);
            net.link_host_switch(host, iface, storage_sw, cfg.phys_link);
            let app = net.add_app(host, Box::new(TargetHostApp::new(cfg.target.clone())));
            storages.push(StorageHost {
                host,
                storage_ip,
                app,
            });
            vgs.push(VolumeGroup::new(cfg.backing_bytes));
        }
        Cloud {
            net,
            storage_sw,
            instance_sw,
            computes,
            storages,
            cfg,
            vgs,
            guest_count: 0,
            attachments: Vec::new(),
            trace: TraceHook::none(),
        }
    }

    /// Arms the whole cloud with a trace hook: the network fabric (forward
    /// and tap stages), every storage target (target CPU and disk stages)
    /// and every volume attached *after* this call (issue/complete events).
    ///
    /// Call before [`Cloud::attach_volume`] so guest initiators inherit the
    /// hook. Middle-box apps deployed by the platform pick the hook up via
    /// [`Cloud::trace_hook`].
    pub fn set_trace_hook(&mut self, hook: TraceHook) {
        self.trace = hook.clone();
        self.net.set_trace_hook(hook.clone());
        for i in 0..self.storages.len() {
            self.target_mut(i).set_trace_hook(hook.clone(), i as u32);
        }
    }

    /// The currently armed trace hook (unarmed by default).
    pub fn trace_hook(&self) -> TraceHook {
        self.trace.clone()
    }

    /// The build configuration.
    pub fn config(&self) -> &CloudConfig {
        &self.cfg
    }

    /// Creates a volume of `bytes` on storage host `on_host`.
    ///
    /// # Panics
    ///
    /// Panics if the volume group is exhausted or the host index is out of
    /// range (configuration errors in experiment setup).
    pub fn create_volume(&mut self, bytes: u64, on_host: usize) -> VolumeHandle {
        let vol = self.vgs[on_host]
            .create_volume(bytes)
            .expect("volume group exhausted");
        let id = vol.id();
        let iqn = Iqn::for_volume(id.0);
        let shared = SharedVolume::new(vol);
        let sectors = {
            use storm_block::BlockDevice as _;
            shared.clone().num_sectors()
        };
        let sh = &self.storages[on_host];
        let app = sh.app;
        let host = sh.host;
        let portal = SockAddr::new(sh.storage_ip, ISCSI_PORT);
        self.net
            .app_mut(host, app)
            .expect("target app present")
            .downcast_mut::<TargetHostApp>()
            .expect("target app type")
            .register_volume(iqn.clone(), shared.clone());
        VolumeHandle {
            id,
            iqn,
            storage_host: on_host,
            portal,
            shared,
            sectors,
        }
    }

    /// Attaches `volume` to a VM on compute host `host_idx`, running
    /// `workload` against it. Returns the client app id.
    pub fn attach_volume(
        &mut self,
        host_idx: usize,
        vm_label: &str,
        volume: &VolumeHandle,
        workload: Box<dyn Workload>,
        seed: u64,
        timeline: bool,
    ) -> AppId {
        let initiator = InitiatorConfig {
            initiator_iqn: Iqn::for_host(&format!("compute{host_idx}-{vm_label}")),
            target_iqn: volume.iqn.clone(),
            params: SessionParams::default(),
            isid: [
                0x80,
                0,
                0,
                (host_idx + 1) as u8,
                0,
                (volume.id.0 % 256) as u8,
            ],
        };
        let mut cfg = VolumeClientConfig::new(volume.portal, initiator, vm_label);
        cfg.transport = self.cfg.transport;
        cfg.queue_depth = self.cfg.queue_depth;
        cfg.seed = seed;
        cfg.timeline = timeline;
        cfg.trace = self.trace.clone();
        let host = self.computes[host_idx].host;
        let app = self
            .net
            .add_app(host, Box::new(VolumeClient::new(cfg, workload)));
        self.attachments.push(crate::attribution::AttachRecord {
            host_idx,
            app,
            vm_label: vm_label.to_owned(),
            volume: volume.id,
            iqn: volume.iqn.clone(),
        });
        app
    }

    /// Reads a client app back out (to collect stats after a run).
    ///
    /// # Panics
    ///
    /// Panics if `(host_idx, app)` is not a [`VolumeClient`].
    pub fn client_mut(&mut self, host_idx: usize, app: AppId) -> &mut VolumeClient {
        self.net
            .app_mut(self.computes[host_idx].host, app)
            .expect("app present")
            .downcast_mut::<VolumeClient>()
            .expect("volume client app")
    }

    /// Reads a storage host's target app back out.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range.
    pub fn target_mut(&mut self, storage_idx: usize) -> &mut TargetHostApp {
        let sh = self.storages[storage_idx];
        self.net
            .app_mut(sh.host, sh.app)
            .expect("app present")
            .downcast_mut::<TargetHostApp>()
            .expect("target app")
    }

    /// Spawns a guest network node (middle-box VM or gateway namespace) on
    /// compute host `host_idx` inside tenant network `tenant`.
    ///
    /// Middle-box VMs attach with a virtio vif (per-packet copy cost);
    /// gateway namespaces use the cheaper veth profile and may carry a
    /// storage-network leg.
    pub fn spawn_guest(
        &mut self,
        name: &str,
        host_idx: usize,
        tenant: u32,
        is_namespace: bool,
        storage_leg: bool,
    ) -> GuestVm {
        self.guest_count += 1;
        let n = self.guest_count;
        let node = self.net.add_host(name.to_string(), 2);
        let instance_ip = Ipv4Addr::new(192, 168, tenant as u8, 10 + (n % 200) as u8);
        let iface = self.net.add_iface_with(node, instance_ip, 24);
        let ovs = self.computes[host_idx].ovs;
        let spec = if is_namespace {
            self.cfg.veth_link
        } else {
            self.cfg.virtio_link
        };
        let link = self.net.link_host_switch(node, iface, ovs, spec);
        let ovs_port = match self.net.fabric.link(link).ends()[1] {
            storm_net::Endpoint::Switch { port, .. } => port,
            _ => PortNo(0),
        };
        let mac = self.net.host(node).ifaces[iface.0 as usize].mac;
        // Tag the port with the tenant and seed the core switch's FDB so
        // steered frames reach this guest without flooding.
        self.net.fabric.switch_mut(ovs).set_tenant(ovs_port, tenant);
        let uplink = self.computes[host_idx].uplink_port;
        self.net
            .fabric
            .switch_mut(self.instance_sw)
            .learn(mac, uplink);
        let storage_ip = if storage_leg {
            let ip = Ipv4Addr::new(10, 1, 2, 10 + (n % 200) as u8);
            let siface = self.net.add_iface_with(node, ip, 16);
            self.net
                .link_host_switch(node, siface, self.storage_sw, self.cfg.veth_link);
            Some(ip)
        } else {
            None
        };
        GuestVm {
            node,
            host_idx,
            instance_ip,
            mac,
            storage_ip,
            ovs_port,
        }
    }

    /// Records of every attachment (the attribution registry's input).
    pub(crate) fn attachments(&self) -> &[crate::attribution::AttachRecord] {
        &self.attachments
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{IoCtx, IoKind, IoResult, ReqId};
    use bytes::Bytes;
    use storm_sim::SimTime;

    /// Writes one 4 KiB block, reads it back, verifies contents.
    struct SmokeWorkload {
        verified: bool,
        wrote: Option<ReqId>,
    }
    impl Workload for SmokeWorkload {
        fn start(&mut self, io: &mut IoCtx<'_>) {
            let data = Bytes::from(vec![0xA7u8; 4096]);
            self.wrote = Some(io.write(100, data));
        }
        fn completed(&mut self, io: &mut IoCtx<'_>, req: ReqId, kind: IoKind, result: IoResult) {
            assert!(result.ok, "I/O failed");
            if Some(req) == self.wrote && kind == IoKind::Write {
                io.read(100, 8);
            } else if kind == IoKind::Read {
                assert_eq!(result.data.len(), 4096);
                assert!(result.data.iter().all(|&b| b == 0xA7));
                self.verified = true;
                io.stop();
            }
        }
    }

    #[test]
    fn end_to_end_write_read_over_legacy_path() {
        let mut cloud = Cloud::build(CloudConfig::default());
        let vol = cloud.create_volume(64 << 20, 0);
        let app = cloud.attach_volume(
            0,
            "vm:smoke",
            &vol,
            Box::new(SmokeWorkload {
                verified: false,
                wrote: None,
            }),
            7,
            false,
        );
        cloud.net.run_until(SimTime::from_nanos(2_000_000_000));
        let client = cloud.client_mut(0, app);
        assert!(client.is_ready(), "login should complete");
        let verified = client.workload_ref().map(|_| ()).is_some();
        assert!(verified);
        assert_eq!(client.stats.reads.count(), 1);
        assert_eq!(client.stats.writes.count(), 1);
        assert_eq!(client.stats.errors, 0);
        assert!(client.stats.latency.mean() > storm_sim::SimDuration::ZERO);
        // The data really reached the backing volume.
        use storm_block::BlockDevice as _;
        let mut shared = vol.shared.clone();
        let mut buf = vec![0u8; 4096];
        shared.read(100, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xA7));
        // Attribution sees the login on the target side.
        let logins = cloud.target_mut(0).logins().to_vec();
        assert_eq!(logins.len(), 1);
        assert_eq!(logins[0].1.dst.port, ISCSI_PORT);
    }

    /// The same smoke cycle with the cloud speaking nvmeq: the target
    /// sniffs the protocol on the shared portal, the connect binds the
    /// volume, and the coalescing timer delivers completions.
    #[test]
    fn end_to_end_write_read_over_nvmeq() {
        let mut cloud = Cloud::build(CloudConfig {
            transport: TransportKind::Nvmeq,
            ..CloudConfig::default()
        });
        let vol = cloud.create_volume(64 << 20, 0);
        let app = cloud.attach_volume(
            0,
            "vm:nvmeq",
            &vol,
            Box::new(SmokeWorkload {
                verified: false,
                wrote: None,
            }),
            7,
            false,
        );
        cloud.net.run_until(SimTime::from_nanos(2_000_000_000));
        let client = cloud.client_mut(0, app);
        assert!(client.is_ready(), "connect should complete");
        assert_eq!(client.transport().kind(), TransportKind::Nvmeq);
        assert_eq!(client.stats.reads.count(), 1);
        assert_eq!(client.stats.writes.count(), 1);
        assert_eq!(client.stats.errors, 0);
        let (doorbells, sqes) = client.transport().doorbell_stats();
        assert!(doorbells >= 1 && sqes == 2, "both commands doorbelled");
        use storm_block::BlockDevice as _;
        let mut shared = vol.shared.clone();
        let mut buf = vec![0u8; 4096];
        shared.read(100, &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0xA7));
        // Connection attribution works unchanged: the connect carried the
        // initiator name over the shared portal.
        let (ticks, cmds, _) = cloud.target_mut(0).dispatch_stats();
        assert!(ticks >= 1 && cmds == 2);
        let logins = cloud.target_mut(0).logins().to_vec();
        assert_eq!(logins.len(), 1);
    }

    #[test]
    fn volumes_on_same_host_are_isolated() {
        let mut cloud = Cloud::build(CloudConfig::default());
        let v1 = cloud.create_volume(16 << 20, 0);
        let v2 = cloud.create_volume(16 << 20, 0);
        assert_ne!(v1.iqn, v2.iqn);
        use storm_block::BlockDevice as _;
        let mut a = v1.shared.clone();
        let mut b = v2.shared.clone();
        a.write(0, &[1u8; 512]).unwrap();
        let mut buf = [9u8; 512];
        b.read(0, &mut buf).unwrap();
        assert!(buf.iter().all(|&x| x == 0));
    }

    #[test]
    fn spawn_guest_wires_instance_and_storage_legs() {
        let mut cloud = Cloud::build(CloudConfig::default());
        let mb = cloud.spawn_guest("mb1", 3, 1, false, true);
        assert_eq!(mb.host_idx, 3);
        assert!(mb.storage_ip.is_some());
        assert!(cloud.net.host(mb.node).has_ip(mb.instance_ip));
        assert!(cloud.net.host(mb.node).has_ip(mb.storage_ip.unwrap()));
        let gw = cloud.spawn_guest("gw1", 0, 1, true, true);
        assert_ne!(gw.mac, mb.mac);
        assert_ne!(gw.instance_ip, mb.instance_ip);
    }
}

//! The storage host application: iSCSI targets over the disk model.
//!
//! One `TargetHostApp` per storage host listens on port 3260 and serves
//! every volume exported from that host (sessions select their volume by
//! `TargetName` at login). Reads and writes pass through the shared
//! [`DiskModel`] so concurrent sessions contend for the spindle, as on the
//! paper's Cinder node.

use std::collections::HashMap;

use bytes::Bytes;

use storm_block::{BlockDevice, SharedVolume};
use storm_iscsi::{
    Iqn, ScsiStatus, SessionParams, TargetConfig, TargetConn, TargetEvent, ISCSI_PORT,
};
use storm_net::{App, CloseReason, Cx, FourTuple, SendQueue, SockId};
use storm_sim::trace::{req_token, Hop, ReqToken, TraceEvent, TraceHook};
use storm_sim::{FaultAction, FaultHook, FaultSite, SimDuration, SimTime};

use crate::disk::{DiskModel, DiskSpec};

/// Configuration of a storage host's target service.
#[derive(Debug, Clone)]
pub struct TargetHostConfig {
    /// Disk performance parameters.
    pub disk: DiskSpec,
    /// Session parameters offered to initiators.
    pub params: SessionParams,
    /// Per-I/O target CPU cost (request parsing, SCSI dispatch).
    pub per_io_cpu: SimDuration,
    /// Per-byte target CPU cost (TCP + page-cache copies).
    pub per_byte_cpu: SimDuration,
}

impl Default for TargetHostConfig {
    fn default() -> Self {
        TargetHostConfig {
            disk: DiskSpec::default(),
            params: SessionParams::default(),
            per_io_cpu: SimDuration::from_micros(20),
            per_byte_cpu: SimDuration::from_nanos(4),
        }
    }
}

#[derive(Debug)]
struct Session {
    conn: TargetConn,
    volume: Option<SharedVolume>,
    sendq: SendQueue,
    /// The initiator name seen at login (connection attribution).
    initiator: Option<Iqn>,
    tuple: Option<FourTuple>,
}

#[derive(Debug)]
enum PendingDisk {
    Read {
        sock: SockId,
        itt: u32,
        lba: u64,
        sectors: u32,
    },
    Write {
        sock: SockId,
        itt: u32,
    },
    Flush {
        sock: SockId,
        itt: u32,
    },
}

/// The target application; add one per storage host with
/// [`storm_net::Network::add_app`] and register volumes via
/// [`TargetHostApp::register_volume`].
pub struct TargetHostApp {
    cfg: TargetHostConfig,
    volumes: HashMap<String, SharedVolume>,
    sessions: HashMap<SockId, Session>,
    disk: DiskModel,
    pending: HashMap<u64, PendingDisk>,
    next_token: u64,
    /// Completed (initiator IQN, 4-tuple) pairs for attribution queries.
    logins: Vec<(Iqn, FourTuple)>,
    fault: FaultHook,
    fault_host: u32,
    trace: TraceHook,
    trace_host: u32,
}

impl TargetHostApp {
    /// Creates the app.
    pub fn new(cfg: TargetHostConfig) -> Self {
        let disk = DiskModel::new(cfg.disk);
        TargetHostApp {
            cfg,
            volumes: HashMap::new(),
            sessions: HashMap::new(),
            disk,
            pending: HashMap::new(),
            next_token: 1,
            logins: Vec::new(),
            fault: FaultHook::none(),
            fault_host: 0,
            trace: TraceHook::none(),
            trace_host: 0,
        }
    }

    /// Arms this target's fault hook; `host` identifies this storage host
    /// in [`FaultSite::DiskServe`] / [`FaultSite::TargetRespond`] sites.
    pub fn set_fault_hook(&mut self, hook: FaultHook, host: u32) {
        self.fault = hook;
        self.fault_host = host;
    }

    /// Arms this target's trace hook; `host` identifies this storage host
    /// in [`Hop::TargetCpu`] / [`Hop::Disk`] stage events.
    pub fn set_trace_hook(&mut self, hook: TraceHook, host: u32) {
        self.trace = hook;
        self.trace_host = host;
    }

    /// The request token for `itt` on session `sock`: the connection's
    /// remote (initiator-side) source port plus the wire ITT — the same
    /// token the guest minted, because splicing preserves source ports.
    fn trace_req(&self, sock: SockId, itt: u32) -> Option<ReqToken> {
        let t = self.sessions.get(&sock)?.tuple?;
        Some(req_token(t.dst.port, itt))
    }

    /// Emits the target-side stages for one served request: request
    /// parsing/copy CPU and the disk model's service time.
    fn trace_serve(
        &self,
        now: SimTime,
        sock: SockId,
        itt: u32,
        cpu: SimDuration,
        disk: SimDuration,
    ) {
        if !self.trace.is_armed() {
            return;
        }
        let Some(req) = self.trace_req(sock, itt) else {
            return;
        };
        self.trace.emit(
            now,
            TraceEvent::Stage {
                req,
                hop: Hop::TargetCpu,
                id: self.trace_host,
                dur: cpu,
            },
        );
        self.trace.emit(
            now,
            TraceEvent::Stage {
                req,
                hop: Hop::Disk,
                id: self.trace_host,
                dur: disk,
            },
        );
    }

    /// Exports `volume` under `iqn`.
    pub fn register_volume(&mut self, iqn: Iqn, volume: SharedVolume) {
        self.volumes.insert(iqn.to_string(), volume);
    }

    /// Stops exporting `iqn`; established sessions keep their handle.
    pub fn unregister_volume(&mut self, iqn: &Iqn) {
        self.volumes.remove(iqn.as_str());
    }

    /// Login records observed so far: `(initiator IQN, on-wire tuple)` —
    /// the target half of connection attribution.
    pub fn logins(&self) -> &[(Iqn, FourTuple)] {
        &self.logins
    }

    /// The disk model (for utilization queries after a run).
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }

    /// Active session count.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Fault verdict for a disk access starting now.
    fn disk_verdict(&self, now: storm_sim::SimTime, write: bool) -> FaultAction {
        self.fault.decide(
            now,
            FaultSite::DiskServe {
                host: self.fault_host,
                write,
            },
        )
    }

    fn handle_events(&mut self, cx: &mut Cx<'_>, sock: SockId, events: Vec<TargetEvent>) {
        for ev in events {
            match ev {
                TargetEvent::LoggedIn { initiator_name } => {
                    let sess = self.sessions.get_mut(&sock).expect("session exists");
                    // The login carried the TargetName; our TargetConn
                    // negotiated already. Resolve the volume by the target
                    // IQN this connection was configured with.
                    sess.tuple = cx.tuple_of(sock);
                    if let Ok(iqn) = Iqn::parse(initiator_name.clone()) {
                        sess.initiator = Some(iqn.clone());
                        if let Some(t) = sess.tuple {
                            // Record in initiator -> target orientation.
                            self.logins.push((iqn, t.reversed()));
                        }
                    }
                }
                TargetEvent::ReadReady { itt, lba, sectors } => {
                    let now = cx.now();
                    let cpu = self.cfg.per_io_cpu + self.cfg.per_byte_cpu * (sectors as u64 * 512);
                    let _ = cx.charge(cpu, "target");
                    let extra = match self.disk_verdict(now, false) {
                        FaultAction::Proceed => SimDuration::ZERO,
                        FaultAction::Delay(d) => d,
                        // The request vanishes: an unresponsive target.
                        FaultAction::Drop => continue,
                        FaultAction::Fail => {
                            if let Some(sess) = self.sessions.get_mut(&sock) {
                                sess.conn.complete_read(
                                    itt,
                                    Bytes::new(),
                                    ScsiStatus::CheckCondition,
                                );
                            }
                            continue;
                        }
                    };
                    let done = self.disk.serve_read(now, lba, sectors as usize * 512) + extra;
                    let token = self.token();
                    self.pending.insert(
                        token,
                        PendingDisk::Read {
                            sock,
                            itt,
                            lba,
                            sectors,
                        },
                    );
                    cx.set_timer(done - now, token);
                    self.trace_serve(now, sock, itt, cpu, done - now);
                }
                TargetEvent::WriteReady { itt, lba, data } => {
                    let now = cx.now();
                    let cpu = self.cfg.per_io_cpu + self.cfg.per_byte_cpu * data.len() as u64;
                    let _ = cx.charge(cpu, "target");
                    // Functional write happens immediately; the response
                    // waits for the disk model.
                    let status = {
                        let sess = self.sessions.get_mut(&sock).expect("session exists");
                        match &mut sess.volume {
                            Some(vol) => match vol.write(lba, &data) {
                                Ok(()) => ScsiStatus::Good,
                                Err(_) => ScsiStatus::CheckCondition,
                            },
                            None => ScsiStatus::CheckCondition,
                        }
                    };
                    let mut extra = SimDuration::ZERO;
                    let status = match self.disk_verdict(now, true) {
                        FaultAction::Proceed => status,
                        FaultAction::Delay(d) => {
                            extra = d;
                            status
                        }
                        FaultAction::Drop => continue,
                        FaultAction::Fail => ScsiStatus::CheckCondition,
                    };
                    if status == ScsiStatus::Good {
                        let done = self.disk.serve_write(now, lba, data.len()) + extra;
                        let token = self.token();
                        self.pending.insert(token, PendingDisk::Write { sock, itt });
                        cx.set_timer(done - now, token);
                        self.trace_serve(now, sock, itt, cpu, done - now);
                    } else if let Some(sess) = self.sessions.get_mut(&sock) {
                        sess.conn.complete_write(itt, status);
                        for c in sess.conn.take_wire() {
                            sess.sendq.push_bytes(c);
                        }
                        sess.sendq.pump(cx, sock);
                    }
                }
                TargetEvent::FlushReady { itt } => {
                    let now = cx.now();
                    let extra = match self.disk_verdict(now, true) {
                        FaultAction::Proceed => SimDuration::ZERO,
                        FaultAction::Delay(d) => d,
                        FaultAction::Drop => continue,
                        FaultAction::Fail => {
                            if let Some(sess) = self.sessions.get_mut(&sock) {
                                sess.conn.complete_flush(itt, ScsiStatus::CheckCondition);
                            }
                            continue;
                        }
                    };
                    let done = self.disk.serve_flush(now) + extra;
                    let token = self.token();
                    self.pending.insert(token, PendingDisk::Flush { sock, itt });
                    cx.set_timer(done - now, token);
                    self.trace_serve(now, sock, itt, SimDuration::ZERO, done - now);
                }
                TargetEvent::LoggedOut => {
                    // Keep the session until the TCP close arrives.
                }
                TargetEvent::ProtocolError(e) => {
                    // Real targets drop offending connections.
                    let _ = e;
                    cx.abort(sock);
                    self.sessions.remove(&sock);
                }
            }
        }
        if let Some(sess) = self.sessions.get_mut(&sock) {
            for c in sess.conn.take_wire() {
                sess.sendq.push_bytes(c);
            }
            sess.sendq.pump(cx, sock);
        }
    }
}

impl App for TargetHostApp {
    fn on_start(&mut self, cx: &mut Cx<'_>) {
        cx.listen(ISCSI_PORT);
    }

    fn on_accepted(&mut self, _cx: &mut Cx<'_>, _port: u16, sock: SockId) {
        // The volume is bound after login (TargetName key); export the
        // largest registered capacity so READ CAPACITY during early login
        // phases is sane; per-session capacity is fixed at bind time.
        let conn = TargetConn::new(TargetConfig {
            target_iqn: Iqn::for_volume(0),
            params: self.cfg.params.clone(),
            num_sectors: 0,
            tsih: 1,
        });
        self.sessions.insert(
            sock,
            Session {
                conn,
                volume: None,
                sendq: SendQueue::new(),
                initiator: None,
                tuple: None,
            },
        );
    }

    fn on_data(&mut self, cx: &mut Cx<'_>, sock: SockId, data: Bytes) {
        // Bind the volume on the first bytes if not yet bound: peek the
        // login's TargetName. TargetConn handles parsing; we pre-scan for
        // the key (cheap linear scan over the login text).
        if let Some(sess) = self.sessions.get_mut(&sock) {
            if sess.volume.is_none() {
                if let Some(name) = scan_target_name(&data) {
                    if let Some(vol) = self.volumes.get(&name) {
                        let volume = vol.clone();
                        let sectors = volume.num_sectors();
                        sess.volume = Some(volume);
                        sess.conn = TargetConn::new(TargetConfig {
                            target_iqn: Iqn::parse(name).unwrap_or_else(|_| Iqn::for_volume(0)),
                            params: self.cfg.params.clone(),
                            num_sectors: sectors,
                            tsih: 1,
                        });
                    }
                }
            }
        }
        let events = match self.sessions.get_mut(&sock) {
            Some(sess) => sess.conn.feed_bytes(data),
            None => return,
        };
        self.handle_events(cx, sock, events);
    }

    fn on_writable(&mut self, cx: &mut Cx<'_>, sock: SockId) {
        if let Some(sess) = self.sessions.get_mut(&sock) {
            sess.sendq.pump(cx, sock);
        }
    }

    fn on_timer(&mut self, cx: &mut Cx<'_>, token: u64) {
        let Some(pending) = self.pending.remove(&token) else {
            return;
        };
        // Fault injection on the response path: a muted target swallows
        // the completion (the initiator sees an unresponsive replica).
        let mut force_error = false;
        match self.fault.decide(
            cx.now(),
            FaultSite::TargetRespond {
                host: self.fault_host,
            },
        ) {
            FaultAction::Proceed => {}
            FaultAction::Drop => return,
            FaultAction::Delay(d) => {
                let t = self.token();
                self.pending.insert(t, pending);
                cx.set_timer(d, t);
                return;
            }
            FaultAction::Fail => force_error = true,
        }
        match pending {
            PendingDisk::Read {
                sock,
                itt,
                lba,
                sectors,
            } => {
                if let Some(sess) = self.sessions.get_mut(&sock) {
                    let mut buf = vec![0u8; sectors as usize * 512];
                    let status = if force_error {
                        ScsiStatus::CheckCondition
                    } else {
                        match &mut sess.volume {
                            Some(vol) => match vol.read(lba, &mut buf) {
                                Ok(()) => ScsiStatus::Good,
                                Err(_) => ScsiStatus::CheckCondition,
                            },
                            None => ScsiStatus::CheckCondition,
                        }
                    };
                    sess.conn.complete_read(itt, Bytes::from(buf), status);
                    for c in sess.conn.take_wire() {
                        sess.sendq.push_bytes(c);
                    }
                    sess.sendq.pump(cx, sock);
                }
            }
            PendingDisk::Write { sock, itt } => {
                if let Some(sess) = self.sessions.get_mut(&sock) {
                    let status = if force_error {
                        ScsiStatus::CheckCondition
                    } else {
                        ScsiStatus::Good
                    };
                    sess.conn.complete_write(itt, status);
                    for c in sess.conn.take_wire() {
                        sess.sendq.push_bytes(c);
                    }
                    sess.sendq.pump(cx, sock);
                }
            }
            PendingDisk::Flush { sock, itt } => {
                if let Some(sess) = self.sessions.get_mut(&sock) {
                    let status = if force_error {
                        ScsiStatus::CheckCondition
                    } else {
                        match &mut sess.volume {
                            Some(vol) => match vol.flush() {
                                Ok(()) => ScsiStatus::Good,
                                Err(_) => ScsiStatus::CheckCondition,
                            },
                            None => ScsiStatus::CheckCondition,
                        }
                    };
                    sess.conn.complete_flush(itt, status);
                    for c in sess.conn.take_wire() {
                        sess.sendq.push_bytes(c);
                    }
                    sess.sendq.pump(cx, sock);
                }
            }
        }
    }

    fn on_closed(&mut self, _cx: &mut Cx<'_>, sock: SockId, _reason: CloseReason) {
        self.sessions.remove(&sock);
    }
}

impl std::fmt::Debug for TargetHostApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetHostApp")
            .field("volumes", &self.volumes.len())
            .field("sessions", &self.sessions.len())
            .finish_non_exhaustive()
    }
}

/// Scans raw login bytes for `TargetName=...` (NUL-terminated).
fn scan_target_name(data: &[u8]) -> Option<String> {
    let needle = b"TargetName=";
    let pos = data.windows(needle.len()).position(|w| w == needle)?;
    let rest = &data[pos + needle.len()..];
    let end = rest.iter().position(|&b| b == 0).unwrap_or(rest.len());
    Some(String::from_utf8_lossy(&rest[..end]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_target_name_finds_key() {
        let mut login = b"InitiatorName=iqn.2016-04.org.storm:host-a\0".to_vec();
        login.extend_from_slice(b"TargetName=iqn.2016-04.org.storm:volume-7\0");
        assert_eq!(
            scan_target_name(&login).as_deref(),
            Some("iqn.2016-04.org.storm:volume-7")
        );
        assert_eq!(scan_target_name(b"NoKeyHere\0"), None);
    }
}

//! The storage host application: block targets over the disk model.
//!
//! One `TargetHostApp` per storage host listens on the iSCSI (3260) and
//! nvmeq (4420) portals and serves every volume exported from that host
//! (sessions select their volume by `TargetName` at login/connect). The
//! wire protocol is sniffed per connection from the first byte — nvmeq
//! frames open with magic `0xB5`, iSCSI logins with opcode `0x43` — so
//! steering rules written for one portal cover both. Reads and writes
//! pass through the shared [`DiskModel`] so concurrent sessions contend
//! for the spindle, as on the paper's Cinder node.
//!
//! An nvmeq doorbell delivers a whole batch of submissions in one frame;
//! `handle_events` drains them in one dispatch tick (every command is
//! admitted to the disk model before the first completes), and held
//! completions go out when the connection's interrupt-moderation timer
//! fires ([`storm_iscsi::TargetTransport::cq_deadline_ns`]).

use std::collections::{BTreeMap, HashMap};

use bytes::Bytes;

use storm_block::{BlockDevice, SharedVolume};
use storm_iscsi::{
    Iqn, ScsiStatus, SessionParams, TargetConfig, TargetConn, TargetEvent, TargetTransport,
    ISCSI_PORT,
};
use storm_net::{App, CloseReason, Cx, FourTuple, SendQueue, SockId};
use storm_nvmeq::{scan_connect_payload, NvmeqTargetConfig, NvmeqTargetConn, MAGIC, NVMEQ_PORT};
use storm_qos::{DiskTier, RateLimitSpec, RateLimiter, WeightedFairQueue};
use storm_sim::trace::{req_token, Hop, ReqToken, TraceEvent, TraceHook};
use storm_sim::{FaultAction, FaultHook, FaultSite, Histogram, SimDuration, SimTime};

use crate::disk::{DiskModel, DiskSpec};

/// Configuration of a storage host's target service.
#[derive(Debug, Clone)]
pub struct TargetHostConfig {
    /// Disk performance parameters.
    pub disk: DiskSpec,
    /// Session parameters offered to initiators.
    pub params: SessionParams,
    /// Per-I/O target CPU cost (request parsing, SCSI dispatch).
    pub per_io_cpu: SimDuration,
    /// Per-byte target CPU cost (TCP + page-cache copies).
    pub per_byte_cpu: SimDuration,
    /// Ring size offered to nvmeq hosts in the connect ack.
    pub queue_depth: u16,
    /// nvmeq completion coalescing: flush once this many CQEs are held.
    pub cq_max_batch: usize,
    /// nvmeq interrupt-moderation window in nanoseconds.
    pub cq_window_ns: u64,
}

impl Default for TargetHostConfig {
    fn default() -> Self {
        TargetHostConfig {
            disk: DiskSpec::default(),
            params: SessionParams::default(),
            per_io_cpu: SimDuration::from_micros(20),
            per_byte_cpu: SimDuration::from_nanos(4),
            queue_depth: 32,
            cq_max_batch: 8,
            cq_window_ns: 20_000,
        }
    }
}

#[derive(Debug)]
struct Session {
    conn: Box<dyn TargetTransport>,
    volume: Option<SharedVolume>,
    /// IQN the session bound to (QoS tenant/tier lookups).
    iqn: Option<String>,
    sendq: SendQueue,
    /// The initiator name seen at login (connection attribution).
    initiator: Option<Iqn>,
    tuple: Option<FourTuple>,
    /// The coalescing deadline a timer is currently armed for, so one
    /// deadline never arms two timers.
    armed_cq: Option<u64>,
}

#[derive(Debug)]
enum PendingDisk {
    Read {
        sock: SockId,
        itt: u32,
        lba: u64,
        sectors: u32,
    },
    Write {
        sock: SockId,
        itt: u32,
    },
    Flush {
        sock: SockId,
        itt: u32,
    },
}

/// A disk job held back by the per-tier WFQ dispatch gate.
#[derive(Debug)]
enum QueuedKind {
    Read { lba: u64, sectors: u32 },
    Write { lba: u64, bytes: usize },
    Flush,
}

#[derive(Debug)]
struct QosJob {
    sock: SockId,
    itt: u32,
    kind: QueuedKind,
    /// Arrival instant (latency accounting starts here).
    arrived: SimTime,
    /// Earliest allowed start: arrival plus token-bucket shaping delay.
    earliest: SimTime,
    /// Fault-injected extra completion delay.
    extra: SimDuration,
    /// Volume the job belongs to.
    iqn: String,
    /// Target CPU already charged for this job (trace attribution).
    cpu: SimDuration,
}

fn tier_idx(tier: DiskTier) -> usize {
    match tier {
        DiskTier::Fast => 0,
        DiskTier::Slow => 1,
    }
}

/// Payload size of a queued disk job, for token-bucket draw and WFQ cost.
fn job_bytes(kind: &QueuedKind) -> u64 {
    match kind {
        QueuedKind::Read { sectors, .. } => *sectors as u64 * 512,
        QueuedKind::Write { bytes, .. } => *bytes as u64,
        QueuedKind::Flush => 512,
    }
}

/// Per-host QoS enforcement: tenant rate limiters, one WFQ dispatch gate
/// per disk tier, tiered disk models and the volume → tier map.
struct QosState {
    limiters: BTreeMap<u32, RateLimiter>,
    wfq: [WeightedFairQueue<QosJob>; 2],
    /// One job in service per tier; the next is popped at completion —
    /// the "dispatch queue" the WFQ actually orders.
    busy: [bool; 2],
    /// Tier disks indexed by [`tier_idx`]: fast then slow.
    disks: [DiskModel; 2],
    tier_of: BTreeMap<String, DiskTier>,
    tenant_of: BTreeMap<String, u32>,
    /// In-flight copy-then-cutover migrations: the tier flip commits
    /// lazily once the copy's cutover instant has passed.
    pending_cutover: BTreeMap<String, (DiskTier, SimTime)>,
    /// Per-volume service latency (arrival → completion) histograms.
    latency: BTreeMap<String, Histogram>,
    /// Committed tier migrations.
    migrations_done: u64,
}

impl QosState {
    /// Current tier of `iqn`, committing any cutover whose instant has
    /// passed. Unregistered volumes default to the slow tier.
    fn tier_of(&mut self, iqn: &str, now: SimTime) -> DiskTier {
        if let Some(&(to, at)) = self.pending_cutover.get(iqn) {
            if at <= now {
                self.pending_cutover.remove(iqn);
                self.tier_of.insert(iqn.to_string(), to);
                self.migrations_done += 1;
            }
        }
        self.tier_of.get(iqn).copied().unwrap_or(DiskTier::Slow)
    }
}

/// The target application; add one per storage host with
/// [`storm_net::Network::add_app`] and register volumes via
/// [`TargetHostApp::register_volume`].
pub struct TargetHostApp {
    cfg: TargetHostConfig,
    volumes: HashMap<String, SharedVolume>,
    sessions: HashMap<SockId, Session>,
    disk: DiskModel,
    pending: HashMap<u64, PendingDisk>,
    /// Tier owning each in-flight QoS job's dispatch slot (by timer
    /// token); the slot frees when the completion timer fires.
    qos_slot: HashMap<u64, DiskTier>,
    /// Jobs waiting out a shaping delay (by timer token). The shaper runs
    /// *before* the scheduler: a throttled job must not hold the dispatch
    /// gate or a WFQ tag while its token debt drains, or it head-of-line
    /// blocks every other tenant for its whole delay.
    qos_admit: HashMap<u64, QosJob>,
    qos: Option<QosState>,
    /// Interrupt-moderation timers: token → session whose completion
    /// queue should flush when it fires.
    cq_wait: HashMap<u64, SockId>,
    /// Submission-batch dispatch stats: `(ticks, commands, max batch)` —
    /// one tick per `handle_events` call that admitted commands.
    dispatch: (u64, u64, usize),
    next_token: u64,
    /// Completed (initiator IQN, 4-tuple) pairs for attribution queries.
    logins: Vec<(Iqn, FourTuple)>,
    fault: FaultHook,
    fault_host: u32,
    trace: TraceHook,
    trace_host: u32,
}

impl TargetHostApp {
    /// Creates the app.
    pub fn new(cfg: TargetHostConfig) -> Self {
        let disk = DiskModel::new(cfg.disk);
        TargetHostApp {
            cfg,
            volumes: HashMap::new(),
            sessions: HashMap::new(),
            disk,
            pending: HashMap::new(),
            qos_slot: HashMap::new(),
            qos_admit: HashMap::new(),
            qos: None,
            cq_wait: HashMap::new(),
            dispatch: (0, 0, 0),
            next_token: 1,
            logins: Vec::new(),
            fault: FaultHook::none(),
            fault_host: 0,
            trace: TraceHook::none(),
            trace_host: 0,
        }
    }

    /// Arms this target's fault hook; `host` identifies this storage host
    /// in [`FaultSite::DiskServe`] / [`FaultSite::TargetRespond`] sites.
    pub fn set_fault_hook(&mut self, hook: FaultHook, host: u32) {
        self.fault = hook;
        self.fault_host = host;
    }

    /// Arms this target's trace hook; `host` identifies this storage host
    /// in [`Hop::TargetCpu`] / [`Hop::Disk`] stage events.
    pub fn set_trace_hook(&mut self, hook: TraceHook, host: u32) {
        self.trace = hook;
        self.trace_host = host;
    }

    /// The request token for `itt` on session `sock`: the connection's
    /// remote (initiator-side) source port plus the wire ITT — the same
    /// token the guest minted, because splicing preserves source ports.
    fn trace_req(&self, sock: SockId, itt: u32) -> Option<ReqToken> {
        let t = self.sessions.get(&sock)?.tuple?;
        Some(req_token(t.dst.port, itt))
    }

    /// Emits the target-side stages for one served request: request
    /// parsing/copy CPU and the disk model's service time.
    fn trace_serve(
        &self,
        now: SimTime,
        sock: SockId,
        itt: u32,
        cpu: SimDuration,
        disk: SimDuration,
    ) {
        if !self.trace.is_armed() {
            return;
        }
        let Some(req) = self.trace_req(sock, itt) else {
            return;
        };
        self.trace.emit(
            now,
            TraceEvent::Stage {
                req,
                hop: Hop::TargetCpu,
                id: self.trace_host,
                dur: cpu,
            },
        );
        self.trace.emit(
            now,
            TraceEvent::Stage {
                req,
                hop: Hop::Disk,
                id: self.trace_host,
                dur: disk,
            },
        );
    }

    /// Exports `volume` under `iqn`.
    pub fn register_volume(&mut self, iqn: Iqn, volume: SharedVolume) {
        self.volumes.insert(iqn.to_string(), volume);
    }

    /// Stops exporting `iqn`; established sessions keep their handle.
    pub fn unregister_volume(&mut self, iqn: &Iqn) {
        self.volumes.remove(iqn.as_str());
    }

    /// Login records observed so far: `(initiator IQN, on-wire tuple)` —
    /// the target half of connection attribution.
    pub fn logins(&self) -> &[(Iqn, FourTuple)] {
        &self.logins
    }

    /// The disk model (for utilization queries after a run).
    pub fn disk(&self) -> &DiskModel {
        &self.disk
    }

    /// Turns on QoS enforcement with the given tier disks. Volumes then
    /// registered via [`Self::register_qos_volume`] are scheduled through
    /// per-tenant token buckets and a per-tier WFQ dispatch gate instead
    /// of the legacy shared disk; unregistered volumes keep the legacy
    /// path untouched.
    pub fn enable_qos(&mut self, fast: DiskSpec, slow: DiskSpec) {
        self.qos = Some(QosState {
            limiters: BTreeMap::new(),
            wfq: [WeightedFairQueue::new(), WeightedFairQueue::new()],
            busy: [false; 2],
            disks: [DiskModel::new(fast), DiskModel::new(slow)],
            tier_of: BTreeMap::new(),
            tenant_of: BTreeMap::new(),
            pending_cutover: BTreeMap::new(),
            latency: BTreeMap::new(),
            migrations_done: 0,
        });
    }

    /// Whether QoS enforcement is enabled.
    pub fn qos_enabled(&self) -> bool {
        self.qos.is_some()
    }

    /// Sets `tenant`'s rate limits (requires [`Self::enable_qos`] first).
    pub fn set_tenant_limit(&mut self, tenant: u32, spec: RateLimitSpec) {
        if let Some(qos) = &mut self.qos {
            qos.limiters.insert(tenant, RateLimiter::new(spec));
        }
    }

    /// Sets `tenant`'s WFQ weight on both tier queues.
    pub fn set_tenant_weight(&mut self, tenant: u32, weight: u64) {
        if let Some(qos) = &mut self.qos {
            for q in &mut qos.wfq {
                q.set_weight(tenant, weight);
            }
        }
    }

    /// Places `iqn` under QoS scheduling for `tenant` on `tier`.
    pub fn register_qos_volume(&mut self, iqn: &Iqn, tenant: u32, tier: DiskTier) {
        if let Some(qos) = &mut self.qos {
            qos.tier_of.insert(iqn.to_string(), tier);
            qos.tenant_of.insert(iqn.to_string(), tenant);
        }
    }

    /// Starts a copy-then-cutover migration of `iqn` to `to`: both tier
    /// disks are occupied streaming the volume's bytes, and the tier map
    /// flips once the copy finishes (in-flight jobs drain on the old
    /// tier). Returns the cutover instant, or `None` when QoS is off,
    /// the volume is unknown, or it is already on `to`.
    pub fn migrate_volume(&mut self, now: SimTime, iqn: &Iqn, to: DiskTier) -> Option<SimTime> {
        let bytes = {
            use storm_block::BlockDevice as _;
            self.volumes.get(iqn.as_str())?.clone().num_sectors() * 512
        };
        let qos = self.qos.as_mut()?;
        let from = qos.tier_of(iqn.as_str(), now);
        if from == to || qos.pending_cutover.contains_key(iqn.as_str()) {
            return None;
        }
        let src_work = qos.disks[tier_idx(from)].bulk_copy_time(bytes);
        let dst_work = qos.disks[tier_idx(to)].bulk_copy_time(bytes);
        let src_done = qos.disks[tier_idx(from)].busy_for(now, src_work);
        let dst_done = qos.disks[tier_idx(to)].busy_for(now, dst_work);
        let cutover = src_done.max(dst_done);
        qos.pending_cutover.insert(iqn.to_string(), (to, cutover));
        self.trace.emit_with(now, || TraceEvent::Meta {
            hop: Hop::Qos,
            id: self.trace_host,
            name: format!("migrate:{}:{}->{}", iqn, from.label(), to.label()),
        });
        Some(cutover)
    }

    /// Committed tier migrations so far.
    pub fn completed_migrations(&self) -> u64 {
        self.qos.as_ref().map_or(0, |q| q.migrations_done)
    }

    /// Forces any due cutover for `iqn` to commit at `now` (the control
    /// loop calls this so migration counts are visible without waiting
    /// for the volume's next I/O).
    pub fn poll_migration(&mut self, now: SimTime, iqn: &Iqn) -> DiskTier {
        match &mut self.qos {
            Some(qos) => qos.tier_of(iqn.as_str(), now),
            None => DiskTier::Slow,
        }
    }

    /// Per-volume service-latency histogram (arrival to completion at
    /// this target, including shaping and WFQ queueing).
    pub fn volume_latency(&self, iqn: &Iqn) -> Option<&Histogram> {
        self.qos.as_ref()?.latency.get(iqn.as_str())
    }

    /// `(throttled ops, total shaping delay)` summed over all tenants.
    pub fn qos_throttle_stats(&self) -> (u64, SimDuration) {
        let mut ops = 0;
        let mut total = SimDuration::ZERO;
        if let Some(qos) = &self.qos {
            for l in qos.limiters.values() {
                let (n, d) = l.throttle_stats();
                ops += n;
                total += d;
            }
        }
        (ops, total)
    }

    /// Active session count.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Submission-batch dispatch stats: `(dispatch ticks, commands
    /// admitted, largest single-tick batch)`. Commands/ticks is the
    /// realized batch size the disk model sees per drain.
    pub fn dispatch_stats(&self) -> (u64, u64, usize) {
        self.dispatch
    }

    /// Arms the interrupt-moderation timer for `sock`'s held
    /// completions, at most one timer per deadline. Stale timers no-op
    /// (a batch-full flush clears the deadline before they fire).
    fn arm_cq(&mut self, cx: &mut Cx<'_>, sock: SockId) {
        let deadline = match self.sessions.get_mut(&sock) {
            Some(sess) => match sess.conn.cq_deadline_ns() {
                Some(d) if sess.armed_cq != Some(d) => {
                    sess.armed_cq = Some(d);
                    d
                }
                Some(_) => return,
                None => {
                    sess.armed_cq = None;
                    return;
                }
            },
            None => return,
        };
        let token = self.token();
        self.cq_wait.insert(token, sock);
        let now_ns = cx.now().as_nanos();
        cx.set_timer(
            SimDuration::from_nanos(deadline.saturating_sub(now_ns)),
            token,
        );
    }

    fn token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Routes a disk job through the QoS scheduler when the session's
    /// volume is registered for it. Returns `true` when the job was taken
    /// over (the caller skips the legacy direct-dispatch path).
    fn qos_route(
        &mut self,
        cx: &mut Cx<'_>,
        sock: SockId,
        itt: u32,
        kind: QueuedKind,
        cpu: SimDuration,
        extra: SimDuration,
    ) -> bool {
        if self.qos.is_none() {
            return false;
        }
        let Some(iqn) = self.sessions.get(&sock).and_then(|s| s.iqn.clone()) else {
            return false;
        };
        let now = cx.now();
        let delay = {
            let qos = self.qos.as_mut().expect("checked above");
            if !qos.tenant_of.contains_key(&iqn) {
                return false;
            }
            let tenant = qos.tenant_of[&iqn];
            match qos.limiters.get_mut(&tenant) {
                Some(l) => l.admit(now, job_bytes(&kind)),
                None => SimDuration::ZERO,
            }
        };
        let job = QosJob {
            sock,
            itt,
            kind,
            arrived: now,
            earliest: now + delay,
            extra,
            iqn,
            cpu,
        };
        if delay > SimDuration::ZERO {
            // Shaper before scheduler: the job only becomes eligible for
            // the WFQ and the dispatch gate once its token debt clears.
            let token = self.token();
            self.qos_admit.insert(token, job);
            cx.set_timer(delay, token);
        } else {
            self.enqueue_qos(cx, job);
        }
        true
    }

    /// Hands an admission-eligible job to `tier`'s scheduler: straight
    /// into service if the dispatch gate is open, queued on the WFQ
    /// otherwise.
    fn enqueue_qos(&mut self, cx: &mut Cx<'_>, job: QosJob) {
        let now = cx.now();
        let (tier, ready) = {
            let qos = self.qos.as_mut().expect("enqueue requires qos");
            let tenant = qos.tenant_of.get(&job.iqn).copied().unwrap_or(0);
            let bytes = job_bytes(&job.kind);
            let tier = qos.tier_of(&job.iqn, now);
            let idx = tier_idx(tier);
            if qos.busy[idx] {
                // Fairness is byte-weighted: large ops cost more credit.
                qos.wfq[idx].push(tenant, bytes.max(512), job);
                (tier, None)
            } else {
                (tier, Some(job))
            }
        };
        if let Some(job) = ready {
            self.dispatch_qos(cx, tier, job);
        }
    }

    /// Puts `job` in service on `tier`'s disk and arms its completion
    /// timer. The tier's dispatch slot stays held until that timer fires.
    fn dispatch_qos(&mut self, cx: &mut Cx<'_>, tier: DiskTier, job: QosJob) {
        let now = cx.now();
        let QosJob {
            sock,
            itt,
            kind,
            arrived,
            earliest,
            extra,
            iqn,
            cpu,
        } = job;
        let start = earliest.max(now);
        let (done, pend) = {
            let qos = self.qos.as_mut().expect("dispatch requires qos");
            qos.busy[tier_idx(tier)] = true;
            let disk = &mut qos.disks[tier_idx(tier)];
            let done = match kind {
                QueuedKind::Read { lba, sectors } => {
                    disk.serve_read(start, lba, sectors as usize * 512)
                }
                QueuedKind::Write { lba, bytes } => disk.serve_write(start, lba, bytes),
                QueuedKind::Flush => disk.serve_flush(start),
            } + extra;
            qos.latency.entry(iqn).or_default().record(done - arrived);
            let pend = match kind {
                QueuedKind::Read { lba, sectors } => PendingDisk::Read {
                    sock,
                    itt,
                    lba,
                    sectors,
                },
                QueuedKind::Write { .. } => PendingDisk::Write { sock, itt },
                QueuedKind::Flush => PendingDisk::Flush { sock, itt },
            };
            (done, pend)
        };
        // Shaping + queueing wait shows up as its own cost center.
        let wait = start - arrived;
        if wait > SimDuration::ZERO && self.trace.is_armed() {
            if let Some(req) = self.trace_req(sock, itt) {
                self.trace.emit(
                    now,
                    TraceEvent::Stage {
                        req,
                        hop: Hop::Qos,
                        id: self.trace_host,
                        dur: wait,
                    },
                );
            }
        }
        self.trace_serve(now, sock, itt, cpu, done - start);
        let token = self.token();
        self.pending.insert(token, pend);
        self.qos_slot.insert(token, tier);
        cx.set_timer(done - now, token);
    }

    /// Frees `tier`'s dispatch slot: the next WFQ job goes into service,
    /// or the gate opens if the queue is dry.
    fn next_qos(&mut self, cx: &mut Cx<'_>, tier: DiskTier) {
        let popped = self.qos.as_mut().and_then(|q| q.wfq[tier_idx(tier)].pop());
        match popped {
            Some((_tenant, job)) => self.dispatch_qos(cx, tier, job),
            None => {
                if let Some(qos) = &mut self.qos {
                    qos.busy[tier_idx(tier)] = false;
                }
            }
        }
    }

    /// Fault verdict for a disk access starting now.
    fn disk_verdict(&self, now: storm_sim::SimTime, write: bool) -> FaultAction {
        self.fault.decide(
            now,
            FaultSite::DiskServe {
                host: self.fault_host,
                write,
            },
        )
    }

    fn handle_events(&mut self, cx: &mut Cx<'_>, sock: SockId, events: Vec<TargetEvent>) {
        // One call = one dispatch tick: a doorbell's whole submission
        // batch is admitted to the disk model before anything completes.
        let mut admitted = 0usize;
        for ev in events {
            match ev {
                TargetEvent::LoggedIn { initiator_name } => {
                    let sess = self.sessions.get_mut(&sock).expect("session exists");
                    // The login carried the TargetName; our TargetConn
                    // negotiated already. Resolve the volume by the target
                    // IQN this connection was configured with.
                    sess.tuple = cx.tuple_of(sock);
                    if let Ok(iqn) = Iqn::parse(initiator_name.clone()) {
                        sess.initiator = Some(iqn.clone());
                        if let Some(t) = sess.tuple {
                            // Record in initiator -> target orientation.
                            self.logins.push((iqn, t.reversed()));
                        }
                    }
                }
                TargetEvent::ReadReady { itt, lba, sectors } => {
                    let now = cx.now();
                    admitted += 1;
                    let cpu = self.cfg.per_io_cpu + self.cfg.per_byte_cpu * (sectors as u64 * 512);
                    let _ = cx.charge(cpu, "target");
                    let extra = match self.disk_verdict(now, false) {
                        FaultAction::Proceed => SimDuration::ZERO,
                        FaultAction::Delay(d) => d,
                        // The request vanishes: an unresponsive target.
                        FaultAction::Drop => continue,
                        FaultAction::Fail => {
                            if let Some(sess) = self.sessions.get_mut(&sock) {
                                sess.conn.complete_read(
                                    now.as_nanos(),
                                    itt,
                                    Bytes::new(),
                                    ScsiStatus::CheckCondition,
                                );
                            }
                            continue;
                        }
                    };
                    if self.qos_route(cx, sock, itt, QueuedKind::Read { lba, sectors }, cpu, extra)
                    {
                        continue;
                    }
                    let done = self.disk.serve_read(now, lba, sectors as usize * 512) + extra;
                    let token = self.token();
                    self.pending.insert(
                        token,
                        PendingDisk::Read {
                            sock,
                            itt,
                            lba,
                            sectors,
                        },
                    );
                    cx.set_timer(done - now, token);
                    self.trace_serve(now, sock, itt, cpu, done - now);
                }
                TargetEvent::WriteReady { itt, lba, data } => {
                    let now = cx.now();
                    admitted += 1;
                    let cpu = self.cfg.per_io_cpu + self.cfg.per_byte_cpu * data.len() as u64;
                    let _ = cx.charge(cpu, "target");
                    // Functional write happens immediately; the response
                    // waits for the disk model.
                    let status = {
                        let sess = self.sessions.get_mut(&sock).expect("session exists");
                        match &mut sess.volume {
                            Some(vol) => match vol.write(lba, &data) {
                                Ok(()) => ScsiStatus::Good,
                                Err(_) => ScsiStatus::CheckCondition,
                            },
                            None => ScsiStatus::CheckCondition,
                        }
                    };
                    let mut extra = SimDuration::ZERO;
                    let status = match self.disk_verdict(now, true) {
                        FaultAction::Proceed => status,
                        FaultAction::Delay(d) => {
                            extra = d;
                            status
                        }
                        FaultAction::Drop => continue,
                        FaultAction::Fail => ScsiStatus::CheckCondition,
                    };
                    if status == ScsiStatus::Good {
                        if self.qos_route(
                            cx,
                            sock,
                            itt,
                            QueuedKind::Write {
                                lba,
                                bytes: data.len(),
                            },
                            cpu,
                            extra,
                        ) {
                            continue;
                        }
                        let done = self.disk.serve_write(now, lba, data.len()) + extra;
                        let token = self.token();
                        self.pending.insert(token, PendingDisk::Write { sock, itt });
                        cx.set_timer(done - now, token);
                        self.trace_serve(now, sock, itt, cpu, done - now);
                    } else if let Some(sess) = self.sessions.get_mut(&sock) {
                        sess.conn.complete_write(now.as_nanos(), itt, status);
                        for c in sess.conn.take_wire() {
                            sess.sendq.push_bytes(c);
                        }
                        sess.sendq.pump(cx, sock);
                    }
                }
                TargetEvent::FlushReady { itt } => {
                    let now = cx.now();
                    admitted += 1;
                    let extra = match self.disk_verdict(now, true) {
                        FaultAction::Proceed => SimDuration::ZERO,
                        FaultAction::Delay(d) => d,
                        FaultAction::Drop => continue,
                        FaultAction::Fail => {
                            if let Some(sess) = self.sessions.get_mut(&sock) {
                                sess.conn.complete_flush(
                                    now.as_nanos(),
                                    itt,
                                    ScsiStatus::CheckCondition,
                                );
                            }
                            continue;
                        }
                    };
                    if self.qos_route(cx, sock, itt, QueuedKind::Flush, SimDuration::ZERO, extra) {
                        continue;
                    }
                    let done = self.disk.serve_flush(now) + extra;
                    let token = self.token();
                    self.pending.insert(token, PendingDisk::Flush { sock, itt });
                    cx.set_timer(done - now, token);
                    self.trace_serve(now, sock, itt, SimDuration::ZERO, done - now);
                }
                TargetEvent::LoggedOut => {
                    // Keep the session until the TCP close arrives.
                }
                TargetEvent::ProtocolError(e) => {
                    // Real targets drop offending connections.
                    let _ = e;
                    cx.abort(sock);
                    self.sessions.remove(&sock);
                }
            }
        }
        if admitted > 0 {
            self.dispatch.0 += 1;
            self.dispatch.1 += admitted as u64;
            self.dispatch.2 = self.dispatch.2.max(admitted);
        }
        if let Some(sess) = self.sessions.get_mut(&sock) {
            for c in sess.conn.take_wire() {
                sess.sendq.push_bytes(c);
            }
            sess.sendq.pump(cx, sock);
        }
        self.arm_cq(cx, sock);
    }
}

impl App for TargetHostApp {
    fn on_start(&mut self, cx: &mut Cx<'_>) {
        cx.listen(ISCSI_PORT);
        cx.listen(NVMEQ_PORT);
    }

    fn on_accepted(&mut self, _cx: &mut Cx<'_>, _port: u16, sock: SockId) {
        // The volume is bound after login (TargetName key); export the
        // largest registered capacity so READ CAPACITY during early login
        // phases is sane; per-session capacity is fixed at bind time. The
        // protocol is unknown until the first bytes arrive: start with an
        // iSCSI placeholder and swap in an nvmeq connection if the first
        // byte is the nvmeq magic.
        let conn = Box::new(TargetConn::new(TargetConfig {
            target_iqn: Iqn::for_volume(0),
            params: self.cfg.params.clone(),
            num_sectors: 0,
            tsih: 1,
        }));
        self.sessions.insert(
            sock,
            Session {
                conn,
                volume: None,
                iqn: None,
                sendq: SendQueue::new(),
                initiator: None,
                tuple: None,
                armed_cq: None,
            },
        );
    }

    fn on_data(&mut self, cx: &mut Cx<'_>, sock: SockId, data: Bytes) {
        // Bind the volume on the first bytes if not yet bound: sniff the
        // protocol by magic byte, then peek the login/connect TargetName.
        // The state machines handle real parsing; we pre-scan for the key
        // (cheap linear scan over the handshake text).
        if let Some(sess) = self.sessions.get_mut(&sock) {
            if sess.volume.is_none() {
                if data.first() == Some(&MAGIC) {
                    // nvmeq connect: bind and swap the protocol machine.
                    // An unknown TargetName gets a deliberately unbound
                    // connection, which refuses the connect itself.
                    let name = scan_connect_payload(&data, "TargetName");
                    let bound = name
                        .as_ref()
                        .and_then(|n| self.volumes.get(n))
                        .map(|v| (v.clone(), v.clone().num_sectors()));
                    let target_iqn = match (&bound, name) {
                        (Some(_), Some(n)) => {
                            sess.iqn = Some(n.clone());
                            Iqn::parse(n).unwrap_or_else(|_| Iqn::for_volume(0))
                        }
                        _ => Iqn::for_volume(u32::MAX),
                    };
                    let num_sectors = bound.as_ref().map_or(0, |(_, s)| *s);
                    sess.volume = bound.map(|(v, _)| v);
                    sess.conn = Box::new(NvmeqTargetConn::new(NvmeqTargetConfig {
                        target_iqn,
                        num_sectors,
                        queue_depth: self.cfg.queue_depth,
                        cq_max_batch: self.cfg.cq_max_batch,
                        cq_window_ns: self.cfg.cq_window_ns,
                    }));
                } else if let Some(name) = scan_target_name(&data) {
                    if let Some(vol) = self.volumes.get(&name) {
                        let volume = vol.clone();
                        let sectors = volume.num_sectors();
                        sess.volume = Some(volume);
                        sess.iqn = Some(name.clone());
                        sess.conn = Box::new(TargetConn::new(TargetConfig {
                            target_iqn: Iqn::parse(name).unwrap_or_else(|_| Iqn::for_volume(0)),
                            params: self.cfg.params.clone(),
                            num_sectors: sectors,
                            tsih: 1,
                        }));
                    }
                }
            }
        }
        let events = match self.sessions.get_mut(&sock) {
            Some(sess) => sess.conn.feed_bytes(data),
            None => return,
        };
        self.handle_events(cx, sock, events);
    }

    fn on_writable(&mut self, cx: &mut Cx<'_>, sock: SockId) {
        if let Some(sess) = self.sessions.get_mut(&sock) {
            sess.sendq.pump(cx, sock);
        }
    }

    fn on_timer(&mut self, cx: &mut Cx<'_>, token: u64) {
        // An interrupt-moderation timer firing flushes the session's held
        // completions (unless a batch-full flush already drained them, or
        // the deadline moved — then re-arm for the new instant).
        if let Some(sock) = self.cq_wait.remove(&token) {
            let now_ns = cx.now().as_nanos();
            if let Some(sess) = self.sessions.get_mut(&sock) {
                sess.armed_cq = None;
                if sess.conn.cq_deadline_ns().is_some_and(|d| d <= now_ns) {
                    sess.conn.flush_cq(now_ns);
                    for c in sess.conn.take_wire() {
                        sess.sendq.push_bytes(c);
                    }
                    sess.sendq.pump(cx, sock);
                }
            }
            self.arm_cq(cx, sock);
            return;
        }
        // A shaping delay elapsing makes its job scheduler-eligible.
        if let Some(job) = self.qos_admit.remove(&token) {
            self.enqueue_qos(cx, job);
            return;
        }
        let Some(pending) = self.pending.remove(&token) else {
            return;
        };
        // A QoS job finishing frees its tier's dispatch slot regardless
        // of response-path faults below: the disk really is done.
        if let Some(tier) = self.qos_slot.remove(&token) {
            self.next_qos(cx, tier);
        }
        // Fault injection on the response path: a muted target swallows
        // the completion (the initiator sees an unresponsive replica).
        let mut force_error = false;
        match self.fault.decide(
            cx.now(),
            FaultSite::TargetRespond {
                host: self.fault_host,
            },
        ) {
            FaultAction::Proceed => {}
            FaultAction::Drop => return,
            FaultAction::Delay(d) => {
                let t = self.token();
                self.pending.insert(t, pending);
                cx.set_timer(d, t);
                return;
            }
            FaultAction::Fail => force_error = true,
        }
        let now_ns = cx.now().as_nanos();
        let done_sock = match &pending {
            PendingDisk::Read { sock, .. }
            | PendingDisk::Write { sock, .. }
            | PendingDisk::Flush { sock, .. } => *sock,
        };
        match pending {
            PendingDisk::Read {
                sock,
                itt,
                lba,
                sectors,
            } => {
                if let Some(sess) = self.sessions.get_mut(&sock) {
                    let mut buf = vec![0u8; sectors as usize * 512];
                    let status = if force_error {
                        ScsiStatus::CheckCondition
                    } else {
                        match &mut sess.volume {
                            Some(vol) => match vol.read(lba, &mut buf) {
                                Ok(()) => ScsiStatus::Good,
                                Err(_) => ScsiStatus::CheckCondition,
                            },
                            None => ScsiStatus::CheckCondition,
                        }
                    };
                    sess.conn
                        .complete_read(now_ns, itt, Bytes::from(buf), status);
                    for c in sess.conn.take_wire() {
                        sess.sendq.push_bytes(c);
                    }
                    sess.sendq.pump(cx, sock);
                }
            }
            PendingDisk::Write { sock, itt } => {
                if let Some(sess) = self.sessions.get_mut(&sock) {
                    let status = if force_error {
                        ScsiStatus::CheckCondition
                    } else {
                        ScsiStatus::Good
                    };
                    sess.conn.complete_write(now_ns, itt, status);
                    for c in sess.conn.take_wire() {
                        sess.sendq.push_bytes(c);
                    }
                    sess.sendq.pump(cx, sock);
                }
            }
            PendingDisk::Flush { sock, itt } => {
                if let Some(sess) = self.sessions.get_mut(&sock) {
                    let status = if force_error {
                        ScsiStatus::CheckCondition
                    } else {
                        match &mut sess.volume {
                            Some(vol) => match vol.flush() {
                                Ok(()) => ScsiStatus::Good,
                                Err(_) => ScsiStatus::CheckCondition,
                            },
                            None => ScsiStatus::CheckCondition,
                        }
                    };
                    sess.conn.complete_flush(now_ns, itt, status);
                    for c in sess.conn.take_wire() {
                        sess.sendq.push_bytes(c);
                    }
                    sess.sendq.pump(cx, sock);
                }
            }
        }
        self.arm_cq(cx, done_sock);
    }

    fn on_closed(&mut self, _cx: &mut Cx<'_>, sock: SockId, _reason: CloseReason) {
        self.sessions.remove(&sock);
    }
}

impl std::fmt::Debug for TargetHostApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TargetHostApp")
            .field("volumes", &self.volumes.len())
            .field("sessions", &self.sessions.len())
            .finish_non_exhaustive()
    }
}

/// Scans raw login bytes for `TargetName=...` (NUL-terminated).
fn scan_target_name(data: &[u8]) -> Option<String> {
    let needle = b"TargetName=";
    let pos = data.windows(needle.len()).position(|w| w == needle)?;
    let rest = &data[pos + needle.len()..];
    let end = rest.iter().position(|&b| b == 0).unwrap_or(rest.len());
    Some(String::from_utf8_lossy(&rest[..end]).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migrate_volume_copies_then_cuts_over() {
        use storm_block::{SharedVolume, VolumeGroup};
        let mut app = TargetHostApp::new(TargetHostConfig::default());
        let mut vg = VolumeGroup::new(64 << 20);
        let vol = vg.create_volume(16 << 20).unwrap();
        let iqn = Iqn::for_volume(vol.id().0);
        app.register_volume(iqn.clone(), SharedVolume::new(vol));
        app.enable_qos(DiskSpec::fast_tier(), DiskSpec::slow_tier());
        app.register_qos_volume(&iqn, 1, DiskTier::Slow);
        let now = SimTime::from_millis(10);
        let cutover = app
            .migrate_volume(now, &iqn, DiskTier::Fast)
            .expect("starts");
        assert!(cutover > now, "copy takes time");
        // Before the cutover instant the volume still serves from slow.
        assert_eq!(app.poll_migration(now, &iqn), DiskTier::Slow);
        assert_eq!(app.completed_migrations(), 0);
        // Re-migrating while one is in flight is refused.
        assert!(app.migrate_volume(now, &iqn, DiskTier::Fast).is_none());
        // After the cutover instant the tier flips and the count commits.
        assert_eq!(app.poll_migration(cutover, &iqn), DiskTier::Fast);
        assert_eq!(app.completed_migrations(), 1);
        // Migrating to the tier it is already on is a no-op.
        assert!(app.migrate_volume(cutover, &iqn, DiskTier::Fast).is_none());
    }

    #[test]
    fn scan_target_name_finds_key() {
        let mut login = b"InitiatorName=iqn.2016-04.org.storm:host-a\0".to_vec();
        login.extend_from_slice(b"TargetName=iqn.2016-04.org.storm:volume-7\0");
        assert_eq!(
            scan_target_name(&login).as_deref(),
            Some("iqn.2016-04.org.storm:volume-7")
        );
        assert_eq!(scan_target_name(b"NoKeyHere\0"), None);
    }
}

//! The OpenStack-like cloud under StorM.
//!
//! Builds the paper's Figure-1 testbed in the simulator: compute hosts and
//! storage hosts, each with NICs on two isolated networks (the *storage
//! network* and the *instance network*), per-host OVS switches for VM
//! vifs, a Cinder-like volume service exporting iSCSI targets, and a
//! Nova-like facility for spawning middle-box VMs and gateway namespaces.
//!
//! Key pieces:
//!
//! * [`Cloud`] / [`CloudConfig`] — topology assembly.
//! * [`TargetHostApp`] — the storage host: iSCSI target + disk model
//!   ([`DiskSpec`]) with seek/transfer costs and an LRU cache.
//! * [`VolumeClient`] + [`Workload`] — a tenant VM's virtio-blk path: the
//!   host-side iSCSI initiator driven by a pluggable workload, with
//!   per-VM CPU labels feeding the Figure-10 utilization breakdown.
//! * [`sdn`] — the SDN controller primitives that install Figure-3 chain
//!   rules.
//! * [`Attribution`] — connection attribution: which VM owns which iSCSI
//!   4-tuple (paper §III-A).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attribution;
mod client;
mod disk;
mod provision;
pub mod sdn;
mod target;
mod topology;

pub use attribution::Attribution;
pub use client::{
    ClientStats, IoCtx, IoKind, IoResult, ReqId, VolumeClient, VolumeClientConfig, Workload,
};
pub use disk::{DiskModel, DiskSpec};
pub use provision::{ProvisionedVolume, ProvisioningEngine};
pub use target::{TargetHostApp, TargetHostConfig};
pub use topology::{Cloud, CloudConfig, ComputeHost, GuestVm, StorageHost, VolumeHandle};

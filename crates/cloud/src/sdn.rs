//! The SDN controller: installing Figure-3 forwarding chains.
//!
//! StorM "relies on a centralized SDN controller that controls a set of
//! virtual switches, to which middle-box VMs are connected". A chain is a
//! sequence of middle-boxes between the ingress and egress storage
//! gateways; the controller programs each hop's local OVS with a rule that
//! rewrites the destination MAC to the next middle-box (`mod_dst_mac`) and
//! falls through to normal L2 forwarding — exactly the rule structure the
//! paper's Figure 3 shows. Removing the rules detaches middle-boxes from
//! an existing flow (on-demand service scaling).

use storm_net::{steering_rule, FlowMatch, MacAddr, Network, SwitchId};

/// One middle-box hop in a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainHop {
    /// The middle-box vif MAC.
    pub mac: MacAddr,
    /// The OVS bridge of the middle-box's compute host.
    pub ovs: SwitchId,
}

/// A full chain description for one steered storage flow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainSpec {
    /// The flow's source port inside the instance network (the VM's
    /// connection attribution port). `None` matches any port — used when a
    /// whole gateway pair is dedicated to one volume.
    pub vm_port: Option<u16>,
    /// iSCSI destination port (3260).
    pub iscsi_port: u16,
    /// Ingress gateway vif (where steered traffic enters the instance
    /// network).
    pub ingress_mac: MacAddr,
    /// The ingress gateway host's OVS.
    pub ingress_ovs: SwitchId,
    /// Egress gateway vif (traffic exits back to the storage network).
    pub egress_mac: MacAddr,
    /// The egress gateway host's OVS.
    pub egress_ovs: SwitchId,
    /// Middle-boxes, in traversal order.
    pub hops: Vec<ChainHop>,
    /// Rule priority.
    pub priority: u16,
}

impl ChainSpec {
    /// The forward-direction rules as `(switch, match, next_mac)`.
    pub fn forward_rules(&self) -> Vec<(SwitchId, FlowMatch, MacAddr)> {
        let mut rules = Vec::new();
        let mut prev_mac = self.ingress_mac;
        let mut prev_ovs = self.ingress_ovs;
        for hop in &self.hops {
            let mut m = FlowMatch::any()
                .src_mac(prev_mac)
                .dst_mac(self.egress_mac)
                .dst_port(self.iscsi_port);
            if let Some(p) = self.vm_port {
                m = m.src_port(p);
            }
            rules.push((prev_ovs, m, hop.mac));
            prev_mac = hop.mac;
            prev_ovs = hop.ovs;
        }
        rules
    }

    /// The reverse-direction rules (target → VM path, Figure 3 right).
    pub fn reverse_rules(&self) -> Vec<(SwitchId, FlowMatch, MacAddr)> {
        let mut rules = Vec::new();
        let mut prev_mac = self.egress_mac;
        let mut prev_ovs = self.egress_ovs;
        for hop in self.hops.iter().rev() {
            let mut m = FlowMatch::any()
                .src_mac(prev_mac)
                .dst_mac(self.ingress_mac)
                .src_port(self.iscsi_port);
            if let Some(p) = self.vm_port {
                m = m.dst_port(p);
            }
            rules.push((prev_ovs, m, hop.mac));
            prev_mac = hop.mac;
            prev_ovs = hop.ovs;
        }
        rules
    }

    /// Total rules this chain installs.
    pub fn rule_count(&self) -> usize {
        2 * self.hops.len()
    }
}

/// Installs a chain's rules into the fabric.
pub fn install_chain(net: &mut Network, chain: &ChainSpec) {
    install_rules(net, chain.priority, chain.forward_rules());
    install_rules(net, chain.priority, chain.reverse_rules());
}

/// Installs only the forward-direction rules (used when active relays
/// split the chain into per-segment reverse paths).
pub fn install_forward(net: &mut Network, chain: &ChainSpec) {
    install_rules(net, chain.priority, chain.forward_rules());
}

/// Installs only the reverse-direction rules for one segment.
pub fn install_reverse(net: &mut Network, chain: &ChainSpec) {
    install_rules(net, chain.priority, chain.reverse_rules());
}

fn install_rules(net: &mut Network, priority: u16, rules: Vec<(SwitchId, FlowMatch, MacAddr)>) {
    for (ovs, m, next) in rules {
        net.fabric
            .switch_mut(ovs)
            .flows_mut()
            .install(steering_rule(priority, m, next));
    }
}

/// Removes a chain's rules; established flows immediately revert to the
/// shorter path (dynamic middle-box removal).
pub fn remove_chain(net: &mut Network, chain: &ChainSpec) -> usize {
    let mut removed = 0;
    for (ovs, m, _) in chain
        .forward_rules()
        .into_iter()
        .chain(chain.reverse_rules())
    {
        removed += net.fabric.switch_mut(ovs).flows_mut().remove(&m);
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_net::Network;

    fn chain(hops: usize, vm_port: Option<u16>) -> (Network, ChainSpec) {
        let mut net = Network::new(0);
        let ingress_ovs = net.add_switch("ovs1", 8);
        let egress_ovs = net.add_switch("ovs2", 8);
        let mb_ovs = net.add_switch("ovs-mb", 8);
        let spec = ChainSpec {
            vm_port,
            iscsi_port: 3260,
            ingress_mac: MacAddr::nth(1),
            ingress_ovs,
            egress_mac: MacAddr::nth(2),
            egress_ovs,
            hops: (0..hops)
                .map(|i| ChainHop {
                    mac: MacAddr::nth(10 + i as u64),
                    ovs: mb_ovs,
                })
                .collect(),
            priority: 100,
        };
        (net, spec)
    }

    #[test]
    fn installs_two_rules_per_hop() {
        let (mut net, spec) = chain(2, Some(40001));
        assert_eq!(spec.rule_count(), 4);
        install_chain(&mut net, &spec);
        // Forward rule for hop 1 lives on the ingress OVS.
        assert_eq!(net.fabric.switch(spec.ingress_ovs).flows().len(), 1);
        // Hop-2 forward + both reverse-direction rules live on the MB OVS
        // (both hops share it here) and the egress OVS.
        assert_eq!(net.fabric.switch(spec.egress_ovs).flows().len(), 1);
        assert_eq!(net.fabric.switch(spec.hops[0].ovs).flows().len(), 2);
    }

    #[test]
    fn forward_chain_links_hops_in_order() {
        let (_net, spec) = chain(3, Some(5));
        let rules = spec.forward_rules();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[0].1.src_mac, Some(spec.ingress_mac));
        assert_eq!(rules[0].2, spec.hops[0].mac);
        assert_eq!(rules[1].1.src_mac, Some(spec.hops[0].mac));
        assert_eq!(rules[1].2, spec.hops[1].mac);
        assert_eq!(rules[2].2, spec.hops[2].mac);
        // All match the VM's port and the egress MAC.
        assert!(rules.iter().all(|(_, m, _)| m.src_port == Some(5)));
        assert!(rules
            .iter()
            .all(|(_, m, _)| m.dst_mac == Some(spec.egress_mac)));
    }

    #[test]
    fn reverse_chain_is_mirrored() {
        let (_net, spec) = chain(2, Some(7));
        let rules = spec.reverse_rules();
        assert_eq!(rules[0].1.src_mac, Some(spec.egress_mac));
        assert_eq!(
            rules[0].2, spec.hops[1].mac,
            "reverse hits the last MB first"
        );
        assert_eq!(rules[1].2, spec.hops[0].mac);
        assert!(rules.iter().all(|(_, m, _)| m.src_port == Some(3260)));
        assert!(rules.iter().all(|(_, m, _)| m.dst_port == Some(7)));
    }

    #[test]
    fn remove_chain_uninstalls_everything() {
        let (mut net, spec) = chain(2, None);
        install_chain(&mut net, &spec);
        assert_eq!(remove_chain(&mut net, &spec), 4);
        assert!(net.fabric.switch(spec.ingress_ovs).flows().is_empty());
        assert!(net.fabric.switch(spec.hops[0].ovs).flows().is_empty());
        // Idempotent.
        assert_eq!(remove_chain(&mut net, &spec), 0);
    }

    #[test]
    fn empty_chain_installs_nothing() {
        let (mut net, spec) = chain(0, None);
        install_chain(&mut net, &spec);
        assert_eq!(spec.rule_count(), 0);
        assert!(net.fabric.switch(spec.ingress_ovs).flows().is_empty());
    }
}

//! Connection attribution: which VM owns which iSCSI connection.
//!
//! Paper §III-A: "Connection attribution refers to the process of
//! automatically identifying which VM is attached to which persistent
//! storage connection". Because every VM on a host shares the host
//! initiator's IP, the 4-tuple alone names only the host; StorM combines
//!
//! 1. the hypervisor's IQN ↔ VM map (which virtual block device each VM
//!    has attached), and
//! 2. the modified iSCSI login path exposing each session's TCP source
//!    port,
//!
//! to bind 4-tuples to VMs. Here (1) is the cloud's attachment registry
//! and (2) is read from the client session (initiator side) and the
//! target's login log.

use storm_block::VolumeId;
use storm_iscsi::Iqn;
use storm_net::{AppId, FourTuple};

use crate::topology::Cloud;

/// One attachment record (the hypervisor's IQN ↔ VM knowledge).
#[derive(Debug, Clone)]
pub(crate) struct AttachRecord {
    pub host_idx: usize,
    pub app: AppId,
    pub vm_label: String,
    pub volume: VolumeId,
    pub iqn: Iqn,
}

/// A resolved attribution entry: VM ↔ volume ↔ connection 4-tuple.
#[derive(Debug, Clone)]
pub struct Attribution {
    /// The VM's label.
    pub vm_label: String,
    /// The attached volume.
    pub volume: VolumeId,
    /// The volume's IQN.
    pub iqn: Iqn,
    /// The connection tuple as seen at the initiator (`None` until the
    /// session connects).
    pub tuple: Option<FourTuple>,
}

impl Cloud {
    /// Resolves the current attribution table by joining the attachment
    /// registry with live session tuples.
    pub fn attributions(&mut self) -> Vec<Attribution> {
        let records: Vec<AttachRecord> = self.attachments().to_vec();
        records
            .into_iter()
            .map(|r| {
                let tuple = self
                    .net
                    .app_mut(self.computes[r.host_idx].host, r.app)
                    .and_then(|a| a.downcast_ref::<crate::client::VolumeClient>())
                    .and_then(|c| c.tuple());
                Attribution {
                    vm_label: r.vm_label,
                    volume: r.volume,
                    iqn: r.iqn,
                    tuple,
                }
            })
            .collect()
    }

    /// Finds the VM label owning a given on-wire source port (the lookup
    /// StorM's platform performs when installing per-flow rules).
    pub fn vm_for_port(&mut self, src_port: u16) -> Option<String> {
        self.attributions()
            .into_iter()
            .find(|a| a.tuple.is_some_and(|t| t.src.port == src_port))
            .map(|a| a.vm_label)
    }
}

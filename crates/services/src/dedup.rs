//! Content-defined-chunk deduplication on the active relay.
//!
//! The service chunks every write payload with a Gear rolling hash
//! (content-defined boundaries, so an insertion early in a stream does
//! not reshuffle every later chunk), fingerprints each chunk and keeps a
//! fingerprint → chunk index. Writes are *inspected, never modified* —
//! the same PDU value is forwarded, so the relay's verbatim zero-copy
//! fast path survives even with dedup armed. What the index buys is the
//! data-reduction ledger (`logical_bytes` / `unique_bytes`, the ratio a
//! thin backing store would see) and the CPU cost model: chunking and
//! fingerprinting are charged per byte, so the Fig-10 per-service
//! attribution breaks dedup's cost out of the relay total.

use std::collections::BTreeMap;

use bytes::Bytes;

use storm_core::{Dir, StorageService, SvcCtx};
use storm_iscsi::Pdu;
use storm_sim::{SimDuration, SimRng};

/// Counters for the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Bytes chunked (every write payload byte seen).
    pub logical_bytes: u64,
    /// Bytes of chunks seen for the first time (what a deduplicating
    /// store would actually hold).
    pub unique_bytes: u64,
    /// Chunks produced by the content-defined chunker.
    pub chunks: u64,
    /// Chunks whose fingerprint (and bytes) matched an indexed chunk.
    pub duplicate_chunks: u64,
    /// Fingerprint collisions caught by the verify-on-match byte compare.
    pub collisions: u64,
}

impl DedupStats {
    /// Logical over unique bytes — the headline data-reduction ratio.
    /// 1.0 when nothing has been chunked yet.
    pub fn reduction_ratio(&self) -> f64 {
        if self.unique_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.unique_bytes as f64
    }
}

/// Content-defined-chunking dedup service.
pub struct DedupService {
    armed: bool,
    gear: [u64; 256],
    boundary_mask: u64,
    min_chunk: usize,
    max_chunk: usize,
    index: BTreeMap<u128, Bytes>,
    per_byte: SimDuration,
    /// Measurements.
    pub stats: DedupStats,
}

impl DedupService {
    /// Creates the service. The Gear table is derived from `seed`, so
    /// equal-seed runs chunk identically; `boundary_bits` sets the mean
    /// chunk size (`2^boundary_bits` bytes between boundaries).
    pub fn new(seed: u64, boundary_bits: u32) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xCDC0_CDC0);
        let mut gear = [0u64; 256];
        for g in gear.iter_mut() {
            let mut b = [0u8; 8];
            rng.fill(&mut b);
            *g = u64::from_le_bytes(b);
        }
        let bits = boundary_bits.clamp(6, 20);
        DedupService {
            armed: true,
            gear,
            boundary_mask: (1u64 << bits) - 1,
            min_chunk: 1usize << (bits - 2),
            max_chunk: 4usize << bits,
            index: BTreeMap::new(),
            // ~1 GB/s chunk+fingerprint on one core.
            per_byte: SimDuration::from_nanos(1),
            stats: DedupStats::default(),
        }
    }

    /// Installs the service disabled: PDUs pass through uninspected and
    /// uncharged until [`DedupService::arm`].
    pub fn disarmed(seed: u64, boundary_bits: u32) -> Self {
        let mut s = Self::new(seed, boundary_bits);
        s.armed = false;
        s
    }

    /// Enables or disables inspection.
    pub fn arm(&mut self, armed: bool) {
        self.armed = armed;
    }

    /// Unique chunks currently indexed.
    pub fn indexed_chunks(&self) -> usize {
        self.index.len()
    }

    /// Sets the per-byte CPU cost charged for chunking + fingerprinting.
    pub fn set_per_byte_cost(&mut self, cost: SimDuration) {
        self.per_byte = cost;
    }

    /// Content-defined chunk boundaries of `data` (end offsets).
    fn boundaries(&self, data: &[u8]) -> Vec<usize> {
        let mut cuts = Vec::new();
        let mut start = 0;
        let mut hash = 0u64;
        for (i, &b) in data.iter().enumerate() {
            hash = (hash << 1).wrapping_add(self.gear[b as usize]);
            let len = i + 1 - start;
            if (len >= self.min_chunk && hash & self.boundary_mask == 0) || len >= self.max_chunk {
                cuts.push(i + 1);
                start = i + 1;
                hash = 0;
            }
        }
        if start < data.len() {
            cuts.push(data.len());
        }
        cuts
    }

    /// 128-bit chunk fingerprint: two independent FNV-1a lanes.
    fn fingerprint(chunk: &[u8]) -> u128 {
        let mut a: u64 = 0xcbf2_9ce4_8422_2325;
        let mut b: u64 = 0x6c62_272e_07bb_0142;
        for &byte in chunk {
            a = (a ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
            b = (b ^ (byte as u64).rotate_left(17)).wrapping_mul(0x0000_0100_0000_01b3);
        }
        ((a as u128) << 64) | b as u128
    }

    /// Chunks and indexes one write payload.
    fn ingest(&mut self, cx: &mut SvcCtx, data: &Bytes) {
        if data.is_empty() {
            return;
        }
        cx.charge(self.per_byte * data.len() as u64);
        let mut start = 0;
        for end in self.boundaries(data) {
            let chunk = data.slice(start..end);
            start = end;
            self.stats.chunks += 1;
            self.stats.logical_bytes += chunk.len() as u64;
            let fp = Self::fingerprint(&chunk);
            match self.index.get(&fp) {
                Some(existing) if existing == &chunk => {
                    self.stats.duplicate_chunks += 1;
                }
                Some(_) => {
                    // Verified fingerprint collision: count the chunk as
                    // unique but keep the first occupant of the slot.
                    self.stats.collisions += 1;
                    self.stats.unique_bytes += chunk.len() as u64;
                }
                None => {
                    self.stats.unique_bytes += chunk.len() as u64;
                    self.index.insert(fp, chunk);
                }
            }
        }
    }
}

impl StorageService for DedupService {
    fn name(&self) -> &str {
        "dedup"
    }

    fn on_pdu(&mut self, cx: &mut SvcCtx, dir: Dir, pdu: Pdu) {
        if self.armed && dir == Dir::ToTarget {
            match &pdu {
                Pdu::ScsiCommand(c) if c.write => self.ingest(cx, &c.data),
                Pdu::DataOut(d) => self.ingest(cx, &d.data),
                _ => {}
            }
        }
        // Inspection only: the received PDU value is forwarded untouched,
        // preserving the relay's verbatim zero-copy fast path.
        cx.forward(pdu);
    }

    fn per_byte_cost(&self) -> SimDuration {
        if self.armed {
            self.per_byte
        } else {
            SimDuration::ZERO
        }
    }
}

impl std::fmt::Debug for DedupService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DedupService")
            .field("armed", &self.armed)
            .field("indexed_chunks", &self.index.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_core::service::SvcAction;
    use storm_iscsi::{Cdb, ScsiCommand};
    use storm_sim::SimTime;

    fn write_pdu(itt: u32, data: Vec<u8>) -> Pdu {
        let sectors = (data.len() / 512) as u32;
        Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: true,
            lun: 0,
            itt,
            edtl: data.len() as u32,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: Cdb::Write { lba: 0, sectors }.to_bytes(),
            data: Bytes::from(data),
        })
    }

    fn run(svc: &mut DedupService, pdu: Pdu) -> Vec<SvcAction> {
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_pdu(&mut cx, Dir::ToTarget, pdu);
        cx.take_actions()
    }

    fn patterned(len: usize, phase: u8) -> Vec<u8> {
        (0..len)
            .map(|i| ((i * 7) as u8).wrapping_add(phase))
            .collect()
    }

    #[test]
    fn chunking_is_deterministic_for_equal_seeds() {
        let a = DedupService::new(42, 10);
        let b = DedupService::new(42, 10);
        let mut data = vec![0u8; 64 * 1024];
        SimRng::seed_from_u64(5).fill(&mut data);
        assert_eq!(a.boundaries(&data), b.boundaries(&data));
        let c = DedupService::new(43, 10);
        assert_ne!(a.boundaries(&data), c.boundaries(&data));
    }

    #[test]
    fn boundaries_respect_min_and_max() {
        let svc = DedupService::new(7, 10);
        let data = patterned(256 * 1024, 0);
        let cuts = svc.boundaries(&data);
        let mut start = 0;
        for &end in &cuts {
            let len = end - start;
            assert!(len <= svc.max_chunk, "chunk of {len} exceeds max");
            // Every chunk except the trailing remainder honours min_chunk.
            if end != data.len() {
                assert!(len >= svc.min_chunk, "chunk of {len} under min");
            }
            start = end;
        }
        assert_eq!(start, data.len());
    }

    #[test]
    fn duplicate_writes_dedup_and_forward_same_pdu() {
        let mut svc = DedupService::new(1, 10);
        let mut block = vec![0u8; 8192];
        SimRng::seed_from_u64(77).fill(&mut block);
        for itt in 0..4 {
            let pdu = write_pdu(itt, block.clone());
            let acts = run(&mut svc, pdu.clone());
            // The identical PDU value is forwarded (plus a CPU charge).
            assert!(
                acts.iter()
                    .any(|a| matches!(a, SvcAction::Forward(p) if *p == pdu)),
                "write must be forwarded untouched"
            );
        }
        assert_eq!(svc.stats.logical_bytes, 4 * 8192);
        assert_eq!(svc.stats.unique_bytes, 8192);
        assert!(svc.stats.reduction_ratio() > 3.9);
        assert!(svc.stats.duplicate_chunks > 0);
        assert_eq!(svc.stats.collisions, 0);
    }

    #[test]
    fn unique_writes_stay_near_ratio_one() {
        let mut svc = DedupService::new(1, 10);
        let mut rng = SimRng::seed_from_u64(99);
        for itt in 0..4 {
            let mut block = vec![0u8; 8192];
            rng.fill(&mut block);
            run(&mut svc, write_pdu(itt, block));
        }
        assert!(svc.stats.reduction_ratio() < 1.05);
    }

    #[test]
    fn insertion_shifts_only_local_chunks() {
        // Content-defined boundaries: prepending bytes must not change
        // most chunk fingerprints (a fixed-size chunker would shift all).
        let mut base = DedupService::new(5, 9);
        let data = patterned(128 * 1024, 1);
        run(&mut base, write_pdu(1, data.clone()));
        let unique_before = base.stats.unique_bytes;
        let mut shifted = Vec::with_capacity(data.len() + 64);
        shifted.extend_from_slice(&[0xEEu8; 64]);
        shifted.extend_from_slice(&data);
        run(&mut base, write_pdu(2, shifted));
        // Far less than half the bytes re-indexed as new.
        let added = base.stats.unique_bytes - unique_before;
        assert!(
            added < data.len() as u64 / 2,
            "CDC failed to realign: {added} new bytes"
        );
    }

    #[test]
    fn disarmed_service_charges_and_indexes_nothing() {
        let mut svc = DedupService::disarmed(1, 10);
        let pdu = write_pdu(1, patterned(4096, 2));
        let acts = run(&mut svc, pdu.clone());
        assert!(matches!(&acts[..], [SvcAction::Forward(p)] if *p == pdu));
        assert_eq!(svc.stats, DedupStats::default());
        assert_eq!(svc.per_byte_cost(), SimDuration::ZERO);
        svc.arm(true);
        run(&mut svc, write_pdu(2, patterned(4096, 2)));
        assert!(svc.stats.chunks > 0);
    }
}

//! Case 1: the storage access monitor.
//!
//! "The goal of the storage access monitor is to allow tenants to set an
//! alert on sensitive files and directories, and the middle-box will log
//! all accesses made to these marked resources." The engine runs the three
//! phases of §V-B1: **Classification** (file content vs metadata, via the
//! [`Reconstructor`]'s system view), **Update** (metadata writes refresh
//! the view) and **Analysis** (logging + watch-list alerts).

use std::collections::HashMap;

use bytes::BytesMut;

use storm_core::{Dir, FsAccess, FsOp, FsTargetKind, Reconstructor, StorageService, SvcCtx};
use storm_iscsi::{Cdb, Pdu};
use storm_sim::SimDuration;

/// Monitor configuration.
#[derive(Debug, Clone, Default)]
pub struct MonitorConfig {
    /// Path prefixes to alert on (e.g. `/mnt/box/secrets`).
    pub watch: Vec<String>,
    /// Per-byte classification cost charged to the middle-box.
    pub per_byte_cost: SimDuration,
}

/// A log entry: sequential access id + reconstructed row (a Table I line).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumberedAccess {
    /// Sequential access id (Table I column 1).
    pub id: u64,
    /// The reconstructed access.
    pub row: FsAccess,
}

impl std::fmt::Display for NumberedAccess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:>4}  {}", self.id, self.row)
    }
}

#[derive(Debug)]
struct WriteAssembly {
    lba: u64,
    buf: BytesMut,
    received: usize,
    expected: usize,
}

/// The storage access monitor service (active relay).
pub struct MonitorService {
    cfg: MonitorConfig,
    recon: Reconstructor,
    log: Vec<NumberedAccess>,
    next_id: u64,
    writes: HashMap<u32, WriteAssembly>,
    reads: HashMap<u32, (u64, u32)>,
}

impl MonitorService {
    /// Creates a monitor over a bootstrapped reconstructor.
    pub fn new(cfg: MonitorConfig, recon: Reconstructor) -> Self {
        MonitorService {
            cfg,
            recon,
            log: Vec::new(),
            next_id: 1,
            writes: HashMap::new(),
            reads: HashMap::new(),
        }
    }

    /// The raw access log (classification-time targets).
    pub fn log(&self) -> &[NumberedAccess] {
        &self.log
    }

    /// Analysis phase: the access log with late re-classification applied
    /// (fresh files resolve to their paths once metadata was seen).
    pub fn analysis(&self) -> Vec<NumberedAccess> {
        self.log
            .iter()
            .map(|e| NumberedAccess {
                id: e.id,
                row: self.recon.reclassify(&e.row),
            })
            .collect()
    }

    /// High-level create/unlink events inferred so far.
    pub fn events(&mut self) -> Vec<storm_core::semantics::FsEvent> {
        self.recon.take_events()
    }

    /// The reconstruction engine (e.g. for path queries).
    pub fn reconstructor(&self) -> &Reconstructor {
        &self.recon
    }

    fn watch_hit(&self, row: &FsAccess) -> Option<String> {
        let path = match &row.target {
            FsTargetKind::File { path } | FsTargetKind::Dir { path } => path,
            _ => return None,
        };
        self.cfg
            .watch
            .iter()
            .find(|w| path.starts_with(w.as_str()))
            .map(|_| path.clone())
    }

    fn record(&mut self, cx: &mut SvcCtx, rows: Vec<FsAccess>) {
        for row in rows {
            if let Some(path) = self.watch_hit(&row) {
                cx.alert(format!("watched path accessed: {} ({})", path, row.op));
            }
            self.log.push(NumberedAccess {
                id: self.next_id,
                row,
            });
            self.next_id += 1;
        }
    }

    fn observe_write(&mut self, cx: &mut SvcCtx, lba: u64, data: &[u8]) {
        cx.charge(self.cfg.per_byte_cost * data.len() as u64);
        let rows = self.recon.observe(FsOp::Write, lba, data.len(), Some(data));
        self.record(cx, rows);
    }
}

impl StorageService for MonitorService {
    fn name(&self) -> &str {
        "monitor"
    }

    fn on_pdu(&mut self, cx: &mut SvcCtx, dir: Dir, pdu: Pdu) {
        match (&pdu, dir) {
            (Pdu::ScsiCommand(c), Dir::ToTarget) => {
                if let Ok(cdb) = Cdb::parse(&c.cdb) {
                    match cdb {
                        Cdb::Read { lba, sectors } => {
                            self.reads.insert(c.itt, (lba, sectors));
                            let rows =
                                self.recon
                                    .observe(FsOp::Read, lba, sectors as usize * 512, None);
                            self.record(cx, rows);
                        }
                        Cdb::Write { lba, .. } => {
                            let expected = c.edtl as usize;
                            let mut asm = WriteAssembly {
                                lba,
                                buf: BytesMut::zeroed(expected),
                                received: 0,
                                expected,
                            };
                            let imm = c.data.len().min(expected);
                            asm.buf[..imm].copy_from_slice(&c.data[..imm]);
                            asm.received = imm;
                            if asm.received >= asm.expected {
                                let data = asm.buf.freeze();
                                self.observe_write(cx, lba, &data);
                            } else {
                                self.writes.insert(c.itt, asm);
                            }
                        }
                        _ => {}
                    }
                }
            }
            (Pdu::DataOut(d), Dir::ToTarget) => {
                let complete = if let Some(asm) = self.writes.get_mut(&d.itt) {
                    let off = d.buffer_offset as usize;
                    let end = (off + d.data.len()).min(asm.expected);
                    if off < end {
                        asm.buf[off..end].copy_from_slice(&d.data[..end - off]);
                        asm.received += end - off;
                    }
                    asm.received >= asm.expected
                } else {
                    false
                };
                if complete {
                    if let Some(asm) = self.writes.remove(&d.itt) {
                        let data = asm.buf.freeze();
                        self.observe_write(cx, asm.lba, &data);
                    }
                }
            }
            (Pdu::ScsiResponse(r), Dir::ToInitiator) => {
                self.reads.remove(&r.itt);
                self.writes.remove(&r.itt);
            }
            _ => {}
        }
        cx.forward(pdu);
    }

    fn per_byte_cost(&self) -> SimDuration {
        self.cfg.per_byte_cost
    }
}

impl std::fmt::Debug for MonitorService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MonitorService")
            .field("log_len", &self.log.len())
            .field("watch", &self.cfg.watch)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use storm_block::{AccessKind, MemDisk, RecordingDevice};
    use storm_core::service::SvcAction;
    use storm_extfs::ExtFs;
    use storm_iscsi::ScsiCommand;
    use storm_sim::SimTime;

    fn monitored_fs() -> (ExtFs<RecordingDevice<MemDisk>>, MonitorService) {
        let dev = RecordingDevice::new(MemDisk::with_capacity_bytes(64 << 20));
        let mut fs = ExtFs::mkfs(dev).unwrap();
        fs.mkdir("/box").unwrap();
        fs.create("/box/secret.txt").unwrap();
        fs.write_file("/box/secret.txt", 0, b"classified").unwrap();
        fs.sync().unwrap();
        fs.device_mut().take_log();
        let recon = Reconstructor::from_device(fs.device_mut().inner_mut(), "/mnt/box").unwrap();
        let cfg = MonitorConfig {
            watch: vec!["/mnt/box/box/secret.txt".into()],
            per_byte_cost: SimDuration::ZERO,
        };
        (fs, MonitorService::new(cfg, recon))
    }

    /// Feeds the fs's recorded accesses to the monitor as PDUs.
    fn feed_log(mon: &mut MonitorService, log: Vec<storm_block::AccessRecord>) -> Vec<SvcAction> {
        let mut actions = Vec::new();
        for (itt, rec) in (101u32..).zip(log) {
            let mut cx = SvcCtx::new(SimTime::ZERO);
            let (read, write, cdb, data) = match rec.kind {
                AccessKind::Read => (
                    true,
                    false,
                    Cdb::Read {
                        lba: rec.lba,
                        sectors: rec.sectors as u32,
                    },
                    Bytes::new(),
                ),
                AccessKind::Write => (
                    false,
                    true,
                    Cdb::Write {
                        lba: rec.lba,
                        sectors: rec.sectors as u32,
                    },
                    Bytes::from(rec.data.clone()),
                ),
            };
            let pdu = Pdu::ScsiCommand(ScsiCommand {
                immediate: false,
                final_pdu: true,
                read,
                write,
                lun: 0,
                itt,
                edtl: (rec.sectors * 512) as u32,
                cmd_sn: itt,
                exp_stat_sn: 1,
                cdb: cdb.to_bytes(),
                data,
            });
            mon.on_pdu(&mut cx, Dir::ToTarget, pdu);
            actions.extend(cx.take_actions());
        }
        actions
    }

    #[test]
    fn logs_accesses_with_sequential_ids() {
        let (mut fs, mut mon) = monitored_fs();
        let _ = fs.read_file_to_end("/box/secret.txt").unwrap();
        let actions = feed_log(&mut mon, fs.device_mut().take_log());
        assert!(!mon.log().is_empty());
        let ids: Vec<u64> = mon.log().iter().map(|e| e.id).collect();
        assert!(ids.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(ids[0], 1);
        // Every PDU was forwarded (the monitor is transparent).
        let forwards = actions
            .iter()
            .filter(|a| matches!(a, SvcAction::Forward(_)))
            .count();
        assert!(forwards > 0);
    }

    #[test]
    fn watch_list_raises_alerts() {
        let (mut fs, mut mon) = monitored_fs();
        let _ = fs.read_file_to_end("/box/secret.txt").unwrap();
        let actions = feed_log(&mut mon, fs.device_mut().take_log());
        let alerts: Vec<&SvcAction> = actions
            .iter()
            .filter(|a| matches!(a, SvcAction::Alert(_)))
            .collect();
        assert!(!alerts.is_empty(), "reading a watched file must alert");
    }

    #[test]
    fn unwatched_access_does_not_alert() {
        let (mut fs, mut mon) = monitored_fs();
        fs.create("/box/benign.txt").unwrap();
        fs.write_file("/box/benign.txt", 0, b"nothing to see")
            .unwrap();
        fs.sync().unwrap();
        let actions = feed_log(&mut mon, fs.device_mut().take_log());
        assert!(!actions.iter().any(|a| matches!(a, SvcAction::Alert(_))));
        // But analysis attributes the write to the right path.
        let rows = mon.analysis();
        assert!(rows.iter().any(|e| {
            e.row.op == FsOp::Write
                && matches!(&e.row.target, FsTargetKind::File { path } if path == "/mnt/box/box/benign.txt")
        }), "rows: {rows:?}");
    }

    #[test]
    fn detects_file_creation_events() {
        let (mut fs, mut mon) = monitored_fs();
        fs.mkdir("/etc").unwrap();
        fs.mkdir("/etc/init.d").unwrap();
        fs.create("/etc/init.d/DbSecuritySpt").unwrap();
        fs.sync().unwrap();
        let _ = feed_log(&mut mon, fs.device_mut().take_log());
        let events = mon.events();
        assert!(
            events.iter().any(|e| matches!(
                e,
                storm_core::semantics::FsEvent::Created { path, .. }
                if path == "/mnt/box/etc/init.d/DbSecuritySpt"
            )),
            "events: {events:?}"
        );
    }
}

//! The provider's service catalogue: tenant policy → concrete services.
//!
//! Paper §III-D: "StorM provides an interface for tenants to submit these
//! policies to the cloud provider, and the StorM platform, accordingly,
//! parses the policies and deploys the middle-box services." This module
//! is the parsing half: it instantiates the bundled service
//! implementations from a validated [`ServiceSpec`].

use storm_core::policy::{RelayModeSpec, ServiceSpec};
use storm_core::service::PassthroughService;
use storm_core::{Reconstructor, RelayMode, StorageService};
use storm_sim::SimDuration;

use crate::{EncryptionService, MonitorConfig, MonitorService, ReplicationService};

/// Errors instantiating a service from a policy entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The kind is not in the catalogue.
    UnknownKind(String),
    /// A required parameter is missing or malformed.
    BadParam {
        /// Parameter name.
        param: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The monitor needs a bootstrapped reconstructor.
    MissingReconstructor,
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownKind(k) => write!(f, "unknown service kind {k}"),
            CatalogError::BadParam { param, reason } => write!(f, "parameter {param}: {reason}"),
            CatalogError::MissingReconstructor => {
                write!(f, "monitor requires the volume's filesystem view")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// Maps the policy's relay mode to the platform's.
pub fn relay_mode(spec: RelayModeSpec) -> RelayMode {
    match spec {
        RelayModeSpec::Active => RelayMode::Active,
        RelayModeSpec::Passive => RelayMode::Passive,
        RelayModeSpec::Forward => RelayMode::Forward,
    }
}

/// Derives a 64-byte XTS master key from a policy-supplied passphrase.
///
/// Key material handling is out of the paper's scope; this is a simple
/// expansion, not a KDF.
fn expand_key(passphrase: &str) -> [u8; 64] {
    let mut key = [0u8; 64];
    let bytes = passphrase.as_bytes();
    for (i, k) in key.iter_mut().enumerate() {
        *k = bytes[i % bytes.len().max(1)]
            .wrapping_mul(167)
            .wrapping_add(i as u8);
    }
    key
}

/// Instantiates a bundled service from a validated [`ServiceSpec`].
///
/// `recon` supplies the volume's bootstrapped filesystem view for
/// monitor services (built by the platform at attach time).
///
/// # Errors
///
/// See [`CatalogError`].
pub fn build_service(
    spec: &ServiceSpec,
    recon: Option<Reconstructor>,
) -> Result<Box<dyn StorageService>, CatalogError> {
    match spec.kind.as_str() {
        "monitor" => {
            let recon = recon.ok_or(CatalogError::MissingReconstructor)?;
            let watch = spec
                .params
                .get("watch")
                .map(|w| w.split(',').map(|s| s.trim().to_owned()).collect())
                .unwrap_or_default();
            Ok(Box::new(MonitorService::new(
                MonitorConfig {
                    watch,
                    per_byte_cost: SimDuration::from_nanos(1),
                },
                recon,
            )))
        }
        "encryption" => {
            let passphrase = spec
                .params
                .get("key")
                .map(String::as_str)
                .unwrap_or("default");
            let cipher = spec
                .params
                .get("cipher")
                .map(String::as_str)
                .unwrap_or("aes-256-xts");
            match cipher {
                "aes-256-xts" => Ok(Box::new(EncryptionService::aes_xts(&expand_key(
                    passphrase,
                )))),
                "chacha20" | "stream" => {
                    let key64 = expand_key(passphrase);
                    let mut key = [0u8; 32];
                    key.copy_from_slice(&key64[..32]);
                    let mut nonce = [0u8; 12];
                    nonce.copy_from_slice(&key64[32..44]);
                    Ok(Box::new(EncryptionService::stream_cipher(&key, &nonce)))
                }
                other => Err(CatalogError::BadParam {
                    param: "cipher",
                    reason: format!("unsupported cipher {other}"),
                }),
            }
        }
        "replication" => {
            let replicas: usize = spec
                .params
                .get("replicas")
                .map(|v| {
                    v.parse().map_err(|_| CatalogError::BadParam {
                        param: "replicas",
                        reason: format!("not a number: {v}"),
                    })
                })
                .transpose()?
                .unwrap_or(2);
            if replicas == 0 {
                return Err(CatalogError::BadParam {
                    param: "replicas",
                    reason: "at least one replica required".into(),
                });
            }
            let stripe = spec
                .params
                .get("stripe_reads")
                .map(|v| v.eq_ignore_ascii_case("true") || v == "1")
                .unwrap_or(true);
            Ok(Box::new(ReplicationService::new(replicas, stripe)))
        }
        "passthrough" => Ok(Box::new(PassthroughService::new())),
        other => Err(CatalogError::UnknownKind(other.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_block::MemDisk;
    use storm_extfs::ExtFs;

    fn recon() -> Reconstructor {
        let fs = ExtFs::mkfs(MemDisk::with_capacity_bytes(48 << 20)).unwrap();
        let mut dev = fs.into_device().unwrap();
        Reconstructor::from_device(&mut dev, "/mnt").unwrap()
    }

    #[test]
    fn builds_every_known_kind() {
        let enc = build_service(&ServiceSpec::new("encryption"), None).unwrap();
        assert_eq!(enc.name(), "encryption");
        let rep = build_service(
            &ServiceSpec::new("replication").param("replicas", "3"),
            None,
        )
        .unwrap();
        assert_eq!(rep.name(), "replication");
        let mon = build_service(
            &ServiceSpec::new("monitor").param("watch", "/mnt/a, /mnt/b"),
            Some(recon()),
        )
        .unwrap();
        assert_eq!(mon.name(), "monitor");
        let pt = build_service(&ServiceSpec::new("passthrough"), None).unwrap();
        assert_eq!(pt.name(), "passthrough");
    }

    #[test]
    fn monitor_without_view_is_rejected() {
        assert_eq!(
            build_service(&ServiceSpec::new("monitor"), None).err(),
            Some(CatalogError::MissingReconstructor)
        );
    }

    #[test]
    fn bad_params_are_rejected() {
        assert!(matches!(
            build_service(
                &ServiceSpec::new("encryption").param("cipher", "rot13"),
                None
            ),
            Err(CatalogError::BadParam {
                param: "cipher",
                ..
            })
        ));
        assert!(matches!(
            build_service(
                &ServiceSpec::new("replication").param("replicas", "many"),
                None
            ),
            Err(CatalogError::BadParam {
                param: "replicas",
                ..
            })
        ));
        assert!(matches!(
            build_service(
                &ServiceSpec::new("replication").param("replicas", "0"),
                None
            ),
            Err(CatalogError::BadParam {
                param: "replicas",
                ..
            })
        ));
        assert!(matches!(
            build_service(&ServiceSpec::new("dedupe"), None),
            Err(CatalogError::UnknownKind(_))
        ));
    }

    #[test]
    fn relay_modes_map() {
        assert_eq!(relay_mode(RelayModeSpec::Active), RelayMode::Active);
        assert_eq!(relay_mode(RelayModeSpec::Passive), RelayMode::Passive);
        assert_eq!(relay_mode(RelayModeSpec::Forward), RelayMode::Forward);
    }

    #[test]
    fn key_expansion_is_deterministic_and_distinct() {
        assert_eq!(expand_key("alpha"), expand_key("alpha"));
        assert_ne!(expand_key("alpha"), expand_key("beta"));
    }
}

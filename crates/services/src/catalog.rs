//! The provider's service catalogue: tenant policy → concrete services.
//!
//! Paper §III-D: "StorM provides an interface for tenants to submit these
//! policies to the cloud provider, and the StorM platform, accordingly,
//! parses the policies and deploys the middle-box services." This module
//! is the parsing half: it instantiates the bundled service
//! implementations from a validated [`ServiceSpec`].

use storm_core::policy::{RelayModeSpec, ServiceSpec};
use storm_core::service::PassthroughService;
use storm_core::{Reconstructor, RelayMode, StorageService};
use storm_sim::SimDuration;

use crate::{
    CacheConfig, CompressService, DedupService, EncryptionService, MonitorConfig, MonitorService,
    ReplicationService, SnapshotService, WriteBackCacheService,
};

/// Errors instantiating a service from a policy entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// The kind is not in the catalogue.
    UnknownKind(String),
    /// A required parameter is missing or malformed.
    BadParam {
        /// Parameter name.
        param: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The monitor needs a bootstrapped reconstructor.
    MissingReconstructor,
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::UnknownKind(k) => write!(f, "unknown service kind {k}"),
            CatalogError::BadParam { param, reason } => write!(f, "parameter {param}: {reason}"),
            CatalogError::MissingReconstructor => {
                write!(f, "monitor requires the volume's filesystem view")
            }
        }
    }
}

impl std::error::Error for CatalogError {}

/// Maps the policy's relay mode to the platform's.
pub fn relay_mode(spec: RelayModeSpec) -> RelayMode {
    match spec {
        RelayModeSpec::Active => RelayMode::Active,
        RelayModeSpec::Passive => RelayMode::Passive,
        RelayModeSpec::Forward => RelayMode::Forward,
    }
}

/// Derives a 64-byte XTS master key from a policy-supplied passphrase.
///
/// Key material handling is out of the paper's scope; this is a simple
/// expansion, not a KDF.
fn expand_key(passphrase: &str) -> [u8; 64] {
    let mut key = [0u8; 64];
    let bytes = passphrase.as_bytes();
    for (i, k) in key.iter_mut().enumerate() {
        *k = bytes[i % bytes.len().max(1)]
            .wrapping_mul(167)
            .wrapping_add(i as u8);
    }
    key
}

/// Instantiates a bundled service from a validated [`ServiceSpec`].
///
/// `recon` supplies the volume's bootstrapped filesystem view for
/// monitor services (built by the platform at attach time).
///
/// # Errors
///
/// See [`CatalogError`].
pub fn build_service(
    spec: &ServiceSpec,
    recon: Option<Reconstructor>,
) -> Result<Box<dyn StorageService>, CatalogError> {
    match spec.kind.as_str() {
        "monitor" => {
            let recon = recon.ok_or(CatalogError::MissingReconstructor)?;
            let watch = spec
                .params
                .get("watch")
                .map(|w| w.split(',').map(|s| s.trim().to_owned()).collect())
                .unwrap_or_default();
            Ok(Box::new(MonitorService::new(
                MonitorConfig {
                    watch,
                    per_byte_cost: SimDuration::from_nanos(1),
                },
                recon,
            )))
        }
        "encryption" => {
            let passphrase = spec
                .params
                .get("key")
                .map(String::as_str)
                .unwrap_or("default");
            let cipher = spec
                .params
                .get("cipher")
                .map(String::as_str)
                .unwrap_or("aes-256-xts");
            match cipher {
                "aes-256-xts" => Ok(Box::new(EncryptionService::aes_xts(&expand_key(
                    passphrase,
                )))),
                "chacha20" | "stream" => {
                    let key64 = expand_key(passphrase);
                    let mut key = [0u8; 32];
                    key.copy_from_slice(&key64[..32]);
                    let mut nonce = [0u8; 12];
                    nonce.copy_from_slice(&key64[32..44]);
                    Ok(Box::new(EncryptionService::stream_cipher(&key, &nonce)))
                }
                other => Err(CatalogError::BadParam {
                    param: "cipher",
                    reason: format!("unsupported cipher {other}"),
                }),
            }
        }
        "replication" => {
            let replicas: usize = spec
                .params
                .get("replicas")
                .map(|v| {
                    v.parse().map_err(|_| CatalogError::BadParam {
                        param: "replicas",
                        reason: format!("not a number: {v}"),
                    })
                })
                .transpose()?
                .unwrap_or(2);
            if replicas == 0 {
                return Err(CatalogError::BadParam {
                    param: "replicas",
                    reason: "at least one replica required".into(),
                });
            }
            let stripe = spec
                .params
                .get("stripe_reads")
                .map(|v| v.eq_ignore_ascii_case("true") || v == "1")
                .unwrap_or(true);
            Ok(Box::new(ReplicationService::new(replicas, stripe)))
        }
        "cache" => {
            let mut cfg = CacheConfig::default();
            if let Some(v) = spec.params.get("capacity_mb") {
                let mb: u64 = v.parse().map_err(|_| CatalogError::BadParam {
                    param: "capacity_mb",
                    reason: format!("not a number: {v}"),
                })?;
                if mb == 0 {
                    return Err(CatalogError::BadParam {
                        param: "capacity_mb",
                        reason: "cache capacity must be positive".into(),
                    });
                }
                cfg.capacity_sectors = mb * 2048;
            }
            if let Some(v) = spec.params.get("flush_ms") {
                let ms: u64 = v.parse().map_err(|_| CatalogError::BadParam {
                    param: "flush_ms",
                    reason: format!("not a number: {v}"),
                })?;
                cfg.flush_delay = SimDuration::from_millis(ms.max(1));
            }
            if let Some(v) = spec.params.get("journal_mb") {
                let mb: u64 = v.parse().map_err(|_| CatalogError::BadParam {
                    param: "journal_mb",
                    reason: format!("not a number: {v}"),
                })?;
                cfg.journal_sectors = mb.max(1) * 2048;
            }
            Ok(Box::new(WriteBackCacheService::new(cfg)))
        }
        "dedup" => {
            let seed: u64 = spec
                .params
                .get("seed")
                .map(|v| {
                    v.parse().map_err(|_| CatalogError::BadParam {
                        param: "seed",
                        reason: format!("not a number: {v}"),
                    })
                })
                .transpose()?
                .unwrap_or(0);
            let bits: u32 = spec
                .params
                .get("chunk_bits")
                .map(|v| {
                    v.parse().map_err(|_| CatalogError::BadParam {
                        param: "chunk_bits",
                        reason: format!("not a number: {v}"),
                    })
                })
                .transpose()?
                .unwrap_or(12);
            Ok(Box::new(DedupService::new(seed, bits)))
        }
        "compress" => {
            let extent: usize = spec
                .params
                .get("extent_bytes")
                .map(|v| {
                    v.parse().map_err(|_| CatalogError::BadParam {
                        param: "extent_bytes",
                        reason: format!("not a number: {v}"),
                    })
                })
                .transpose()?
                .unwrap_or(4096);
            if extent < 512 || !extent.is_multiple_of(512) {
                return Err(CatalogError::BadParam {
                    param: "extent_bytes",
                    reason: "extent must be a positive multiple of 512".into(),
                });
            }
            Ok(Box::new(CompressService::new(extent)))
        }
        "snapshot" => {
            let extent: u64 = spec
                .params
                .get("extent_sectors")
                .map(|v| {
                    v.parse().map_err(|_| CatalogError::BadParam {
                        param: "extent_sectors",
                        reason: format!("not a number: {v}"),
                    })
                })
                .transpose()?
                .unwrap_or(128);
            if extent == 0 {
                return Err(CatalogError::BadParam {
                    param: "extent_sectors",
                    reason: "extent must be positive".into(),
                });
            }
            Ok(Box::new(SnapshotService::new(extent)))
        }
        "passthrough" => Ok(Box::new(PassthroughService::new())),
        other => Err(CatalogError::UnknownKind(other.to_owned())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_block::MemDisk;
    use storm_extfs::ExtFs;

    fn recon() -> Reconstructor {
        let fs = ExtFs::mkfs(MemDisk::with_capacity_bytes(48 << 20)).unwrap();
        let mut dev = fs.into_device().unwrap();
        Reconstructor::from_device(&mut dev, "/mnt").unwrap()
    }

    #[test]
    fn builds_every_known_kind() {
        let enc = build_service(&ServiceSpec::new("encryption"), None).unwrap();
        assert_eq!(enc.name(), "encryption");
        let rep = build_service(
            &ServiceSpec::new("replication").param("replicas", "3"),
            None,
        )
        .unwrap();
        assert_eq!(rep.name(), "replication");
        let mon = build_service(
            &ServiceSpec::new("monitor").param("watch", "/mnt/a, /mnt/b"),
            Some(recon()),
        )
        .unwrap();
        assert_eq!(mon.name(), "monitor");
        let pt = build_service(&ServiceSpec::new("passthrough"), None).unwrap();
        assert_eq!(pt.name(), "passthrough");
        let cache = build_service(
            &ServiceSpec::new("cache")
                .param("capacity_mb", "8")
                .param("flush_ms", "10"),
            None,
        )
        .unwrap();
        assert_eq!(cache.name(), "cache");
        let dedup = build_service(
            &ServiceSpec::new("dedup")
                .param("seed", "7")
                .param("chunk_bits", "11"),
            None,
        )
        .unwrap();
        assert_eq!(dedup.name(), "dedup");
        let comp = build_service(
            &ServiceSpec::new("compress").param("extent_bytes", "4096"),
            None,
        )
        .unwrap();
        assert_eq!(comp.name(), "compress");
        let snap = build_service(
            &ServiceSpec::new("snapshot").param("extent_sectors", "64"),
            None,
        )
        .unwrap();
        assert_eq!(snap.name(), "snapshot");
    }

    #[test]
    fn monitor_without_view_is_rejected() {
        assert_eq!(
            build_service(&ServiceSpec::new("monitor"), None).err(),
            Some(CatalogError::MissingReconstructor)
        );
    }

    #[test]
    fn bad_params_are_rejected() {
        assert!(matches!(
            build_service(
                &ServiceSpec::new("encryption").param("cipher", "rot13"),
                None
            ),
            Err(CatalogError::BadParam {
                param: "cipher",
                ..
            })
        ));
        assert!(matches!(
            build_service(
                &ServiceSpec::new("replication").param("replicas", "many"),
                None
            ),
            Err(CatalogError::BadParam {
                param: "replicas",
                ..
            })
        ));
        assert!(matches!(
            build_service(
                &ServiceSpec::new("replication").param("replicas", "0"),
                None
            ),
            Err(CatalogError::BadParam {
                param: "replicas",
                ..
            })
        ));
        assert!(matches!(
            build_service(&ServiceSpec::new("cache").param("capacity_mb", "0"), None),
            Err(CatalogError::BadParam {
                param: "capacity_mb",
                ..
            })
        ));
        assert!(matches!(
            build_service(
                &ServiceSpec::new("compress").param("extent_bytes", "1000"),
                None
            ),
            Err(CatalogError::BadParam {
                param: "extent_bytes",
                ..
            })
        ));
        assert!(matches!(
            build_service(&ServiceSpec::new("defragment"), None),
            Err(CatalogError::UnknownKind(_))
        ));
    }

    #[test]
    fn relay_modes_map() {
        assert_eq!(relay_mode(RelayModeSpec::Active), RelayMode::Active);
        assert_eq!(relay_mode(RelayModeSpec::Passive), RelayMode::Passive);
        assert_eq!(relay_mode(RelayModeSpec::Forward), RelayMode::Forward);
    }

    #[test]
    fn key_expansion_is_deterministic_and_distinct() {
        assert_eq!(expand_key("alpha"), expand_key("alpha"));
        assert_ne!(expand_key("alpha"), expand_key("beta"));
    }
}

//! Write-back block cache on the active relay.
//!
//! The cache absorbs tenant writes entirely: it stages the data transfer
//! itself (emitting its own R2Ts for jumbo writes, mirroring the target's
//! solicitation state machine), journals each completed write to a
//! dedicated journal volume (replica session 0) with a two-phase
//! append — payload first, commit record second — and only acknowledges
//! the initiator once the commit record is durable. Dirty sectors are
//! then flushed lazily to the primary volume (replica session 1) on a
//! configurable timer. Burst absorption comes from acks at journal
//! latency; crash consistency comes from the commit-before-ack rule:
//! [`recover_journal`] replays exactly the committed prefix of the
//! journal, so an acknowledged write is never lost and a torn append is
//! never applied.
//!
//! Reads are served from cache on a full hit; misses forward to the
//! target and the returning Data-In both populates the cache and is
//! patched with any dirty sectors the cache holds (the cache is the
//! point of truth until a flush lands).
//!
//! Deployment: the cache must be the *first* service in the chain (its
//! synthesized replies and acks travel straight back to the initiator)
//! and its middle-box needs two replica targets — index 0 the journal
//! volume, index 1 the primary volume itself for flush traffic.

use std::collections::BTreeMap;

use bytes::{Bytes, BytesMut};

use storm_block::{BlockDevice, BlockError, SECTOR_SIZE};
use storm_core::{Dir, StorageService, SvcCtx};
use storm_iscsi::{Cdb, DataIn, Pdu, R2t, ScsiResponse, ScsiStatus};
use storm_sim::SimDuration;

/// Journal entry header magic ("SJH1").
const HDR_MAGIC: u32 = 0x534A_4831;
/// Journal commit record magic ("SJC1").
const COMMIT_MAGIC: u32 = 0x534A_4331;
/// Journal checkpoint magic ("SCK1").
const CKPT_MAGIC: u32 = 0x5343_4B31;

/// Replica session index of the journal volume.
const JOURNAL: usize = 0;
/// Replica session index of the primary volume (flush path).
const PRIMARY: usize = 1;

// Completion-context kinds (high byte of the ctx token).
const CTX_JOURNAL_DATA: u64 = 1 << 56;
const CTX_JOURNAL_COMMIT: u64 = 2 << 56;
const CTX_FLUSH: u64 = 3 << 56;
const CTX_CHECKPOINT: u64 = 4 << 56;
const CTX_KIND: u64 = 0xFF << 56;

/// Tuning knobs for the write-back cache.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Cache capacity in sectors.
    pub capacity_sectors: u64,
    /// Journal volume size in sectors (sector 0 is the checkpoint).
    pub journal_sectors: u64,
    /// Delay between flush rounds while dirty data exists.
    pub flush_delay: SimDuration,
    /// Dirty sectors flushed per round.
    pub flush_batch: usize,
    /// Negotiated unsolicited-data limit (FirstBurstLength).
    pub first_burst: usize,
    /// Per-R2T solicitation limit (MaxBurstLength).
    pub max_burst: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_sectors: 32 * 1024, // 16 MiB
            journal_sectors: 16 * 1024,  // 8 MiB
            flush_delay: SimDuration::from_millis(5),
            flush_batch: 256,
            first_burst: 64 * 1024,
            max_burst: 256 * 1024,
        }
    }
}

/// Counters for the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served entirely from cache.
    pub read_hits: u64,
    /// Reads forwarded to the target.
    pub read_misses: u64,
    /// Forwarded reads that still had dirty sectors patched in.
    pub dirty_patches: u64,
    /// Writes absorbed (acked from the journal, never forwarded).
    pub writes_absorbed: u64,
    /// Bytes absorbed.
    pub bytes_absorbed: u64,
    /// Journal appends committed.
    pub journal_commits: u64,
    /// Writes parked because the journal was full.
    pub journal_parks: u64,
    /// Flush rounds issued to the primary volume.
    pub flushes: u64,
    /// Bytes flushed to the primary volume.
    pub flushed_bytes: u64,
    /// Clean sectors evicted to respect capacity.
    pub evictions: u64,
    /// Writes forwarded in write-through mode (journal failed).
    pub write_through: u64,
}

impl CacheStats {
    /// Read hit rate over all cache-handled reads; 1.0 before any read.
    pub fn hit_rate(&self) -> f64 {
        let total = self.read_hits + self.read_misses;
        if total == 0 {
            return 1.0;
        }
        self.read_hits as f64 / total as f64
    }
}

/// One cached sector.
#[derive(Debug, Clone)]
struct Sector {
    data: Bytes,
    dirty: bool,
    flushing: bool,
    /// Bumped on every overwrite; a flush only cleans the generation it
    /// captured, so a re-dirtied sector stays dirty.
    gen: u64,
    tick: u64,
}

/// An in-flight staged write transfer (the cache's own R2T machine).
#[derive(Debug)]
struct WriteStage {
    lba: u64,
    buf: BytesMut,
    received: usize,
    expected: usize,
    unsolicited: usize,
    next_ttt: u32,
}

/// A fully received write waiting on (or parked for) the journal.
#[derive(Debug, Clone)]
struct CompletedWrite {
    itt: u32,
    lba: u64,
    data: Bytes,
}

/// The write-back cache service.
pub struct WriteBackCacheService {
    armed: bool,
    cfg: CacheConfig,
    per_byte: SimDuration,
    sectors: BTreeMap<u64, Sector>,
    lru: BTreeMap<u64, u64>,
    dirty_count: u64,
    tick: u64,
    gen: u64,
    stages: BTreeMap<u32, WriteStage>,
    pending_reads: BTreeMap<u32, (u64, u32)>,
    /// Journal cursor: next free sector (sector 0 is the checkpoint).
    tail: u64,
    next_seq: u64,
    /// Oldest seq the current journal generation may contain.
    seq_floor: u64,
    next_io: u64,
    /// io id -> (write, seq, reserved journal base sector).
    journal_waits: BTreeMap<u64, (CompletedWrite, u64, u64)>,
    flush_waits: BTreeMap<u64, Vec<(u64, u64)>>,
    checkpoint_pending: bool,
    parked_writes: Vec<CompletedWrite>,
    parked_syncs: Vec<Pdu>,
    timer_armed: bool,
    /// Journal declared dead: degrade to write-through.
    journal_failed: bool,
    /// Measurements.
    pub stats: CacheStats,
}

impl WriteBackCacheService {
    /// Creates the cache with the given tuning.
    pub fn new(cfg: CacheConfig) -> Self {
        WriteBackCacheService {
            armed: true,
            cfg,
            // Hash-table lookup plus slice bookkeeping per byte.
            per_byte: SimDuration::from_nanos(1),
            sectors: BTreeMap::new(),
            lru: BTreeMap::new(),
            dirty_count: 0,
            tick: 0,
            gen: 0,
            stages: BTreeMap::new(),
            pending_reads: BTreeMap::new(),
            tail: 1,
            next_seq: 1,
            seq_floor: 1,
            next_io: 1,
            journal_waits: BTreeMap::new(),
            flush_waits: BTreeMap::new(),
            checkpoint_pending: false,
            parked_writes: Vec::new(),
            parked_syncs: Vec::new(),
            timer_armed: false,
            journal_failed: false,
            stats: CacheStats::default(),
        }
    }

    /// Installs the service disabled: PDUs pass through untouched until
    /// [`WriteBackCacheService::arm`].
    pub fn disarmed(cfg: CacheConfig) -> Self {
        let mut s = Self::new(cfg);
        s.armed = false;
        s
    }

    /// Enables or disables the cache.
    pub fn arm(&mut self, armed: bool) {
        self.armed = armed;
    }

    /// Sets the per-byte CPU cost charged for cache processing.
    pub fn set_per_byte_cost(&mut self, cost: SimDuration) {
        self.per_byte = cost;
    }

    /// Sectors currently cached.
    pub fn cached_sectors(&self) -> u64 {
        self.sectors.len() as u64
    }

    /// Sectors dirty (journaled but not yet flushed).
    pub fn dirty_sectors(&self) -> u64 {
        self.dirty_count
    }

    /// Whether every acknowledged write has reached the primary volume.
    pub fn is_clean(&self) -> bool {
        self.dirty_count == 0 && self.journal_waits.is_empty() && self.parked_writes.is_empty()
    }

    fn next_io_id(&mut self) -> u64 {
        let id = self.next_io;
        self.next_io += 1;
        id
    }

    fn touch(&mut self, lba: u64) {
        self.tick += 1;
        if let Some(s) = self.sectors.get_mut(&lba) {
            self.lru.remove(&s.tick);
            s.tick = self.tick;
            self.lru.insert(self.tick, lba);
        }
    }

    /// Inserts or overwrites one cached sector.
    fn put_sector(&mut self, lba: u64, data: Bytes, dirty: bool) {
        self.tick += 1;
        self.gen += 1;
        match self.sectors.get_mut(&lba) {
            Some(s) => {
                self.lru.remove(&s.tick);
                if dirty && !s.dirty {
                    self.dirty_count += 1;
                }
                // A clean overwrite of a dirty sector must not lose the
                // dirty bit (populate-on-read never downgrades).
                s.dirty = s.dirty || dirty;
                s.data = data;
                s.gen = self.gen;
                s.tick = self.tick;
                self.lru.insert(self.tick, lba);
            }
            None => {
                if dirty {
                    self.dirty_count += 1;
                }
                self.sectors.insert(
                    lba,
                    Sector {
                        data,
                        dirty,
                        flushing: false,
                        gen: self.gen,
                        tick: self.tick,
                    },
                );
                self.lru.insert(self.tick, lba);
            }
        }
    }

    /// Evicts least-recently-used *clean* sectors down to capacity.
    fn enforce_capacity(&mut self) {
        while self.sectors.len() as u64 > self.cfg.capacity_sectors {
            let victim = self.lru.values().copied().find(|lba| {
                self.sectors
                    .get(lba)
                    .is_some_and(|s| !s.dirty && !s.flushing)
            });
            match victim {
                Some(lba) => {
                    if let Some(s) = self.sectors.remove(&lba) {
                        self.lru.remove(&s.tick);
                        self.stats.evictions += 1;
                    }
                }
                // Everything over budget is dirty: wait for the flusher.
                None => break,
            }
        }
    }

    /// All sectors of `[lba, lba+sectors)` cached?
    fn full_hit(&self, lba: u64, sectors: u32) -> bool {
        (lba..lba + sectors as u64).all(|s| self.sectors.contains_key(&s))
    }

    /// Synthesizes the Data-In + status train for a cache-served read.
    fn synth_read_reply(cx: &mut SvcCtx, itt: u32, data: Bytes) {
        let total = data.len();
        let chunk = 64 * 1024;
        let mut off = 0;
        let mut data_sn = 0;
        loop {
            let end = (off + chunk).min(total);
            let last = end == total;
            cx.reply(Pdu::DataIn(DataIn {
                final_pdu: last,
                status_present: last,
                status: ScsiStatus::Good,
                lun: 0,
                itt,
                ttt: 0xFFFF_FFFF,
                stat_sn: 0,
                exp_cmd_sn: 0,
                max_cmd_sn: 0,
                data_sn,
                buffer_offset: off as u32,
                residual: 0,
                data: data.slice(off..end),
            }));
            if last {
                break;
            }
            data_sn += 1;
            off = end;
        }
    }

    fn ack_write(cx: &mut SvcCtx, itt: u32) {
        cx.reply(Pdu::ScsiResponse(ScsiResponse {
            itt,
            response: 0,
            status: ScsiStatus::Good,
            stat_sn: 0,
            exp_cmd_sn: 0,
            max_cmd_sn: 0,
            residual: 0,
            data: Bytes::new(),
        }));
    }

    /// Emits the next R2T for a staged write.
    fn solicit(cx: &mut SvcCtx, cfg: &CacheConfig, itt: u32, stage: &mut WriteStage) {
        let remaining = stage.expected - stage.received;
        let burst = remaining.min(cfg.max_burst);
        let r2t_sn = stage.next_ttt;
        stage.next_ttt += 1;
        cx.reply(Pdu::R2t(R2t {
            lun: 0,
            itt,
            ttt: stage.next_ttt,
            stat_sn: 0,
            exp_cmd_sn: 0,
            max_cmd_sn: 0,
            r2t_sn,
            buffer_offset: stage.received as u32,
            desired_length: burst as u32,
        }));
    }

    /// A write transfer is fully received: journal it (or park / fall
    /// back to write-through).
    fn complete_write(&mut self, cx: &mut SvcCtx, write: CompletedWrite) {
        cx.charge(self.per_byte * write.data.len() as u64);
        if self.journal_failed {
            self.write_through(cx, write);
            return;
        }
        let needed = 2 + (write.data.len() / SECTOR_SIZE) as u64;
        if self.tail + needed > self.cfg.journal_sectors {
            // Journal full: park until the flusher drains the cache and
            // the journal resets. The write is not acked while parked,
            // so a crash here loses nothing acknowledged.
            self.stats.journal_parks += 1;
            self.parked_writes.push(write);
            self.kick_flush(cx);
            return;
        }
        self.journal_append(cx, write, needed);
    }

    fn journal_append(&mut self, cx: &mut SvcCtx, write: CompletedWrite, needed: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let at = self.tail;
        self.tail += needed;
        let sectors = (write.data.len() / SECTOR_SIZE) as u32;
        // Header sector + payload in one append, commit record second.
        let mut rec = BytesMut::with_capacity(SECTOR_SIZE + write.data.len());
        let mut hdr = [0u8; SECTOR_SIZE];
        put_field(&mut hdr, 0, &HDR_MAGIC.to_le_bytes());
        put_field(&mut hdr, 4, &seq.to_le_bytes());
        put_field(&mut hdr, 12, &write.lba.to_le_bytes());
        put_field(&mut hdr, 20, &sectors.to_le_bytes());
        put_field(&mut hdr, 24, &fnv32(&write.data).to_le_bytes());
        // storm-lint: allow(no-hot-path-copy): journal record assembly on
        // the armed write path; idle caches never journal.
        rec.extend_from_slice(&hdr);
        // storm-lint: allow(no-hot-path-copy): journal payload staging on
        // the armed write path (durability copy, counted in the journal).
        rec.extend_from_slice(&write.data);
        let id = self.next_io_id();
        self.journal_waits.insert(id, (write, seq, at));
        cx.replica_write(JOURNAL, at, rec.freeze(), CTX_JOURNAL_DATA | id);
    }

    /// Journal is gone: degrade to write-through. The cached copy is
    /// updated in place (keeping any dirty bit) before forwarding, so a
    /// later flush of an overlapping dirty sector rewrites these same
    /// bytes instead of resurrecting stale data.
    fn write_through(&mut self, cx: &mut SvcCtx, write: CompletedWrite) {
        self.stats.write_through += 1;
        let n = write.data.len() / SECTOR_SIZE;
        for i in 0..n {
            let lba = write.lba + i as u64;
            if self.sectors.contains_key(&lba) {
                self.put_sector(
                    lba,
                    write.data.slice(i * SECTOR_SIZE..(i + 1) * SECTOR_SIZE),
                    false,
                );
            }
        }
        let sectors = (write.data.len() / SECTOR_SIZE) as u32;
        cx.forward(Pdu::ScsiCommand(storm_iscsi::ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: true,
            lun: 0,
            itt: write.itt,
            edtl: write.data.len() as u32,
            cmd_sn: 0,
            exp_stat_sn: 0,
            cdb: Cdb::Write {
                lba: write.lba,
                sectors,
            }
            .to_bytes(),
            data: write.data,
        }));
    }

    /// Installs a committed write into the cache as dirty sectors.
    fn apply_committed(&mut self, cx: &mut SvcCtx, write: &CompletedWrite) {
        self.stats.journal_commits += 1;
        self.stats.writes_absorbed += 1;
        self.stats.bytes_absorbed += write.data.len() as u64;
        let sectors = write.data.len() / SECTOR_SIZE;
        for i in 0..sectors {
            self.put_sector(
                write.lba + i as u64,
                write.data.slice(i * SECTOR_SIZE..(i + 1) * SECTOR_SIZE),
                true,
            );
        }
        self.enforce_capacity();
        if !self.timer_armed {
            self.timer_armed = true;
            cx.set_timer(self.cfg.flush_delay, 0);
        }
    }

    /// Issues one flush round: up to `flush_batch` dirty sectors,
    /// coalesced into contiguous runs.
    fn kick_flush(&mut self, cx: &mut SvcCtx) {
        let mut picked: Vec<u64> = Vec::new();
        for (lba, s) in &self.sectors {
            if s.dirty && !s.flushing {
                picked.push(*lba);
                if picked.len() >= self.cfg.flush_batch {
                    break;
                }
            }
        }
        if picked.is_empty() {
            return;
        }
        self.stats.flushes += 1;
        let mut run_start = 0usize;
        while run_start < picked.len() {
            let mut run_end = run_start + 1;
            while run_end < picked.len() && picked[run_end] == picked[run_end - 1] + 1 {
                run_end += 1;
            }
            let base = picked[run_start];
            let mut buf = BytesMut::with_capacity((run_end - run_start) * SECTOR_SIZE);
            let mut gens = Vec::with_capacity(run_end - run_start);
            for &lba in &picked[run_start..run_end] {
                if let Some(s) = self.sectors.get_mut(&lba) {
                    // storm-lint: allow(no-hot-path-copy): flush-run
                    // assembly on the armed background path.
                    buf.extend_from_slice(&s.data);
                    s.flushing = true;
                    gens.push((lba, s.gen));
                }
            }
            self.stats.flushed_bytes += buf.len() as u64;
            let id = self.next_io_id();
            self.flush_waits.insert(id, gens);
            cx.replica_write(PRIMARY, base, buf.freeze(), CTX_FLUSH | id);
            run_start = run_end;
        }
    }

    /// Everything flushed: checkpoint the journal so the tail can reset.
    fn maybe_checkpoint(&mut self, cx: &mut SvcCtx) {
        if self.checkpoint_pending
            || self.journal_failed
            || self.dirty_count > 0
            || !self.journal_waits.is_empty()
            || !self.flush_waits.is_empty()
            || self.tail == 1
        {
            return;
        }
        self.checkpoint_pending = true;
        let mut ck = [0u8; SECTOR_SIZE];
        put_field(&mut ck, 0, &CKPT_MAGIC.to_le_bytes());
        put_field(&mut ck, 4, &self.next_seq.to_le_bytes());
        let id = self.next_io_id();
        // storm-lint: allow(no-hot-path-copy): one-sector checkpoint
        // record upload (metadata, background path).
        cx.replica_write(JOURNAL, 0, Bytes::copy_from_slice(&ck), CTX_CHECKPOINT | id);
    }

    /// Releases work that was waiting for journal space / cleanliness.
    fn release_parked(&mut self, cx: &mut SvcCtx) {
        let parked = std::mem::take(&mut self.parked_writes);
        for write in parked {
            self.complete_write(cx, write);
        }
        if self.is_clean() {
            for pdu in std::mem::take(&mut self.parked_syncs) {
                cx.forward(pdu);
            }
        }
    }

    fn on_write_cmd(&mut self, cx: &mut SvcCtx, c: storm_iscsi::ScsiCommand, lba: u64) {
        let expected = c.edtl as usize;
        if expected == 0 || !expected.is_multiple_of(SECTOR_SIZE) {
            cx.forward(Pdu::ScsiCommand(c));
            return;
        }
        let imm = c.data.len().min(expected);
        if imm >= expected {
            self.complete_write(
                cx,
                CompletedWrite {
                    itt: c.itt,
                    lba,
                    data: c.data.slice(0..expected),
                },
            );
            return;
        }
        let mut buf = BytesMut::zeroed(expected);
        // storm-lint: allow(no-hot-path-copy): armed write-staging path;
        // an idle cache forwards the PDU verbatim above.
        buf[..imm].copy_from_slice(&c.data[..imm]);
        let mut stage = WriteStage {
            lba,
            buf,
            received: imm,
            expected,
            unsolicited: expected.min(self.cfg.first_burst),
            next_ttt: 1,
        };
        if stage.received >= stage.unsolicited {
            Self::solicit(cx, &self.cfg, c.itt, &mut stage);
        }
        self.stages.insert(c.itt, stage);
    }

    fn on_data_out(&mut self, cx: &mut SvcCtx, d: storm_iscsi::DataOut) {
        let Some(stage) = self.stages.get_mut(&d.itt) else {
            cx.forward(Pdu::DataOut(d));
            return;
        };
        let off = d.buffer_offset as usize;
        let end = (off + d.data.len()).min(stage.expected);
        if off < end {
            // storm-lint: allow(no-hot-path-copy): armed write-staging
            // path (cache-owned transfer, never forwarded).
            stage.buf[off..end].copy_from_slice(&d.data[..end - off]);
            stage.received += end - off;
        }
        if stage.received >= stage.expected {
            if let Some(stage) = self.stages.remove(&d.itt) {
                self.complete_write(
                    cx,
                    CompletedWrite {
                        itt: d.itt,
                        lba: stage.lba,
                        data: stage.buf.freeze(),
                    },
                );
            }
        } else if d.final_pdu && stage.received >= stage.unsolicited {
            Self::solicit(cx, &self.cfg, d.itt, stage);
        }
    }

    fn on_read_cmd(
        &mut self,
        cx: &mut SvcCtx,
        c: storm_iscsi::ScsiCommand,
        lba: u64,
        sectors: u32,
    ) {
        cx.charge(self.per_byte * (sectors as u64 * SECTOR_SIZE as u64));
        if sectors > 0 && self.full_hit(lba, sectors) {
            self.stats.read_hits += 1;
            let mut buf = BytesMut::with_capacity(sectors as usize * SECTOR_SIZE);
            for s in lba..lba + sectors as u64 {
                if let Some(sec) = self.sectors.get(&s) {
                    // storm-lint: allow(no-hot-path-copy): armed cache-hit
                    // assembly; the idle path forwards verbatim.
                    buf.extend_from_slice(&sec.data);
                }
                self.touch(s);
            }
            Self::synth_read_reply(cx, c.itt, buf.freeze());
            return;
        }
        self.stats.read_misses += 1;
        self.pending_reads.insert(c.itt, (lba, sectors));
        cx.forward(Pdu::ScsiCommand(c));
    }

    /// Target Data-In for a miss read: patch dirty sectors in, populate
    /// clean ones.
    fn on_data_in(&mut self, cx: &mut SvcCtx, mut d: DataIn) {
        let Some(&(lba, _)) = self.pending_reads.get(&d.itt) else {
            cx.forward(Pdu::DataIn(d));
            return;
        };
        if d.final_pdu {
            self.pending_reads.remove(&d.itt);
        }
        let off = d.buffer_offset as usize;
        if d.data.is_empty()
            || !off.is_multiple_of(SECTOR_SIZE)
            || !d.data.len().is_multiple_of(SECTOR_SIZE)
        {
            cx.forward(Pdu::DataIn(d));
            return;
        }
        let start = lba + (off / SECTOR_SIZE) as u64;
        let n = d.data.len() / SECTOR_SIZE;
        let any_dirty = (start..start + n as u64)
            .any(|s| self.sectors.get(&s).is_some_and(|e| e.dirty || e.flushing));
        if any_dirty {
            self.stats.dirty_patches += 1;
            let mut buf = BytesMut::from(&d.data[..]);
            for i in 0..n {
                if let Some(e) = self.sectors.get(&(start + i as u64)) {
                    if e.dirty || e.flushing {
                        // storm-lint: allow(no-hot-path-copy): armed
                        // dirty-sector overlay onto the miss reply.
                        buf[i * SECTOR_SIZE..(i + 1) * SECTOR_SIZE].copy_from_slice(&e.data);
                    }
                }
            }
            d.data = buf.freeze();
        }
        for i in 0..n {
            let s = start + i as u64;
            if !self.sectors.contains_key(&s) {
                // Populate-on-read: zero-copy slices of the payload.
                self.put_sector(
                    s,
                    d.data.slice(i * SECTOR_SIZE..(i + 1) * SECTOR_SIZE),
                    false,
                );
            }
        }
        self.enforce_capacity();
        cx.forward(Pdu::DataIn(d));
    }
}

impl StorageService for WriteBackCacheService {
    fn name(&self) -> &str {
        "cache"
    }

    fn on_pdu(&mut self, cx: &mut SvcCtx, dir: Dir, pdu: Pdu) {
        if !self.armed {
            cx.forward(pdu);
            return;
        }
        match (dir, pdu) {
            (Dir::ToTarget, Pdu::ScsiCommand(c)) => match Cdb::parse(&c.cdb) {
                Ok(Cdb::Write { lba, .. }) if c.write => self.on_write_cmd(cx, c, lba),
                Ok(Cdb::Read { lba, sectors }) if c.read => self.on_read_cmd(cx, c, lba, sectors),
                Ok(Cdb::SynchronizeCache) => {
                    if self.is_clean() {
                        cx.forward(Pdu::ScsiCommand(c));
                    } else {
                        self.parked_syncs.push(Pdu::ScsiCommand(c));
                        self.kick_flush(cx);
                    }
                }
                _ => cx.forward(Pdu::ScsiCommand(c)),
            },
            (Dir::ToTarget, Pdu::DataOut(d)) => self.on_data_out(cx, d),
            (Dir::ToInitiator, Pdu::DataIn(d)) => self.on_data_in(cx, d),
            (Dir::ToInitiator, Pdu::ScsiResponse(r)) => {
                self.pending_reads.remove(&r.itt);
                cx.forward(Pdu::ScsiResponse(r));
            }
            (_, other) => cx.forward(other),
        }
    }

    fn on_replica_done(
        &mut self,
        cx: &mut SvcCtx,
        _replica: usize,
        ctx: u64,
        ok: bool,
        _data: Bytes,
    ) {
        let id = ctx & !CTX_KIND;
        match ctx & CTX_KIND {
            CTX_JOURNAL_DATA => {
                let Some((write, seq, base)) = self.journal_waits.remove(&id) else {
                    return;
                };
                if !ok {
                    self.on_replica_failed(cx, JOURNAL);
                    self.write_through(cx, write);
                    return;
                }
                // Phase 2: the commit record makes the entry durable.
                let sectors = (write.data.len() / SECTOR_SIZE) as u64;
                let mut ck = [0u8; SECTOR_SIZE];
                put_field(&mut ck, 0, &COMMIT_MAGIC.to_le_bytes());
                put_field(&mut ck, 4, &seq.to_le_bytes());
                let at = base + 1 + sectors;
                self.journal_waits.insert(id, (write, seq, base));
                cx.replica_write(
                    JOURNAL,
                    at,
                    // storm-lint: allow(no-hot-path-copy): one-sector
                    // commit record upload (metadata, armed write path).
                    Bytes::copy_from_slice(&ck),
                    CTX_JOURNAL_COMMIT | id,
                );
            }
            CTX_JOURNAL_COMMIT => {
                let Some((write, _, _)) = self.journal_waits.remove(&id) else {
                    return;
                };
                if !ok {
                    self.on_replica_failed(cx, JOURNAL);
                    self.write_through(cx, write);
                    return;
                }
                // Commit durable: acknowledge, then install dirty sectors.
                Self::ack_write(cx, write.itt);
                self.apply_committed(cx, &write);
            }
            CTX_FLUSH => {
                let Some(gens) = self.flush_waits.remove(&id) else {
                    return;
                };
                if ok {
                    for (lba, gen) in gens {
                        if let Some(s) = self.sectors.get_mut(&lba) {
                            s.flushing = false;
                            if s.gen == gen && s.dirty {
                                s.dirty = false;
                                self.dirty_count -= 1;
                            }
                        }
                    }
                } else {
                    for (lba, _) in gens {
                        if let Some(s) = self.sectors.get_mut(&lba) {
                            s.flushing = false;
                        }
                    }
                    cx.alert("cache: flush to primary failed; will retry");
                }
                if self.dirty_count == 0 {
                    self.maybe_checkpoint(cx);
                } else if !self.timer_armed {
                    self.timer_armed = true;
                    cx.set_timer(self.cfg.flush_delay, 0);
                }
            }
            CTX_CHECKPOINT => {
                self.checkpoint_pending = false;
                if ok {
                    // Journal generation reset: reuse the log area.
                    self.tail = 1;
                    self.seq_floor = self.next_seq;
                    self.release_parked(cx);
                } else {
                    self.on_replica_failed(cx, JOURNAL);
                }
            }
            _ => {}
        }
    }

    fn on_replica_failed(&mut self, cx: &mut SvcCtx, replica: usize) {
        if replica == JOURNAL && !self.journal_failed {
            self.journal_failed = true;
            cx.alert("cache: journal volume failed; degrading to write-through");
            // Parked writes can never be journaled now.
            for write in std::mem::take(&mut self.parked_writes) {
                self.write_through(cx, write);
            }
        }
    }

    fn on_timer(&mut self, cx: &mut SvcCtx, _token: u64) {
        self.timer_armed = false;
        self.kick_flush(cx);
        if self.dirty_count > 0 && !self.timer_armed {
            self.timer_armed = true;
            cx.set_timer(self.cfg.flush_delay, 0);
        } else if self.dirty_count == 0 {
            self.maybe_checkpoint(cx);
        }
    }

    fn per_byte_cost(&self) -> SimDuration {
        if self.armed {
            self.per_byte
        } else {
            SimDuration::ZERO
        }
    }
}

impl std::fmt::Debug for WriteBackCacheService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteBackCacheService")
            .field("armed", &self.armed)
            .field("cached", &self.sectors.len())
            .field("dirty", &self.dirty_count)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

/// Encodes one little-endian metadata field into a record buffer.
fn put_field(buf: &mut [u8], at: usize, field: &[u8]) {
    // storm-lint: allow(no-hot-path-copy): fixed-size record-header field
    // encoding (journal metadata, not payload), armed paths only.
    buf[at..at + field.len()].copy_from_slice(field);
}

/// FNV-1a over a byte slice (journal payload checksum).
fn fnv32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h
}

/// What [`recover_journal`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Committed entries replayed onto the backing volume.
    pub applied_entries: u64,
    /// Payload bytes replayed.
    pub replayed_bytes: u64,
    /// Whether the scan stopped at a torn (uncommitted) entry.
    pub torn_tail: bool,
    /// Sequence floor read from the checkpoint record.
    pub seq_floor: u64,
}

/// Replays the committed prefix of a write-back-cache journal onto the
/// backing volume after a crash.
///
/// Entries are applied strictly in append order, so when the same sector
/// was journaled twice the later (newer) entry wins. The scan stops at
/// the first entry that is absent, stale (pre-checkpoint), or torn — an
/// append whose commit record never made it is by construction one the
/// initiator was never acked for, so skipping it is safe, and every
/// entry *before* it was acked and is replayed: no acknowledged write is
/// lost and no torn extent survives.
///
/// # Errors
///
/// Propagates device errors from either volume.
pub fn recover_journal(
    journal: &mut dyn BlockDevice,
    backing: &mut dyn BlockDevice,
) -> Result<RecoveryReport, BlockError> {
    let mut report = RecoveryReport::default();
    let total = journal.num_sectors();
    let mut sector = vec![0u8; SECTOR_SIZE];
    let word = |b: &[u8], o: usize| u32::from_le_bytes([b[o], b[o + 1], b[o + 2], b[o + 3]]);
    let quad = |b: &[u8], o: usize| {
        u64::from_le_bytes([
            b[o],
            b[o + 1],
            b[o + 2],
            b[o + 3],
            b[o + 4],
            b[o + 5],
            b[o + 6],
            b[o + 7],
        ])
    };
    if total == 0 {
        return Ok(report);
    }
    journal.read(0, &mut sector)?;
    if word(&sector, 0) == CKPT_MAGIC {
        report.seq_floor = quad(&sector, 4);
    }
    let mut pos = 1u64;
    let mut last_seq = 0u64;
    while pos + 2 <= total {
        journal.read(pos, &mut sector)?;
        if word(&sector, 0) != HDR_MAGIC {
            break;
        }
        let seq = quad(&sector, 4);
        let lba = quad(&sector, 12);
        let sectors = word(&sector, 20) as u64;
        let checksum = word(&sector, 24);
        // Stale (pre-checkpoint), out-of-order (previous generation's
        // leftovers) or oversized entries end the committed prefix.
        if seq < report.seq_floor || seq <= last_seq && last_seq != 0 {
            break;
        }
        if sectors == 0 || pos + 2 + sectors > total {
            break;
        }
        let mut payload = vec![0u8; (sectors as usize) * SECTOR_SIZE];
        journal.read(pos + 1, &mut payload)?;
        journal.read(pos + 1 + sectors, &mut sector)?;
        let committed = word(&sector, 0) == COMMIT_MAGIC && quad(&sector, 4) == seq;
        if !committed || fnv32(&payload) != checksum {
            report.torn_tail = true;
            break;
        }
        backing.write(lba, &payload)?;
        report.applied_entries += 1;
        report.replayed_bytes += payload.len() as u64;
        last_seq = seq;
        pos += 2 + sectors;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_block::MemDisk;
    use storm_core::service::{ReplicaIo, SvcAction};
    use storm_iscsi::{DataOut, ScsiCommand};
    use storm_sim::SimTime;

    fn write_cmd(itt: u32, lba: u64, data: Vec<u8>, edtl: u32) -> Pdu {
        Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: true,
            lun: 0,
            itt,
            edtl,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: Cdb::Write {
                lba,
                sectors: edtl / 512,
            }
            .to_bytes(),
            data: Bytes::from(data),
        })
    }

    fn read_cmd(itt: u32, lba: u64, sectors: u32) -> Pdu {
        Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: true,
            write: false,
            lun: 0,
            itt,
            edtl: sectors * 512,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: Cdb::Read { lba, sectors }.to_bytes(),
            data: Bytes::new(),
        })
    }

    /// A tiny relay stand-in: applies replica ops to MemDisks, loops
    /// until quiescent, and collects replies/forwards/timers.
    struct Harness {
        svc: WriteBackCacheService,
        journal: MemDisk,
        primary: MemDisk,
        replies: Vec<Pdu>,
        forwards: Vec<Pdu>,
        timers: u64,
        journal_ok: bool,
    }

    impl Harness {
        fn new(cfg: CacheConfig) -> Self {
            Harness {
                svc: WriteBackCacheService::new(cfg.clone()),
                journal: MemDisk::with_capacity_bytes(cfg.journal_sectors * SECTOR_SIZE as u64),
                primary: MemDisk::with_capacity_bytes(64 << 20),
                replies: Vec::new(),
                forwards: Vec::new(),
                timers: 0,
                journal_ok: true,
            }
        }

        fn drain(&mut self, mut cx: SvcCtx) {
            let mut pending = cx.take_actions();
            while !pending.is_empty() {
                let mut next = SvcCtx::new(SimTime::ZERO);
                for act in pending {
                    match act {
                        SvcAction::Reply(p) => self.replies.push(p),
                        SvcAction::Forward(p) => self.forwards.push(p),
                        SvcAction::Timer { .. } => self.timers += 1,
                        SvcAction::Replica { replica, io, ctx } => {
                            let disk: &mut MemDisk = if replica == JOURNAL {
                                &mut self.journal
                            } else {
                                &mut self.primary
                            };
                            let ok = self.journal_ok || replica != JOURNAL;
                            match io {
                                ReplicaIo::Write { lba, data } => {
                                    if ok {
                                        disk.write(lba, &data).unwrap();
                                    }
                                    self.svc.on_replica_done(
                                        &mut next,
                                        replica,
                                        ctx,
                                        ok,
                                        Bytes::new(),
                                    );
                                }
                                ReplicaIo::Read { lba, sectors } => {
                                    let mut buf = vec![0u8; sectors as usize * 512];
                                    disk.read(lba, &mut buf).unwrap();
                                    self.svc.on_replica_done(
                                        &mut next,
                                        replica,
                                        ctx,
                                        ok,
                                        Bytes::from(buf),
                                    );
                                }
                            }
                        }
                        SvcAction::Alert(_) | SvcAction::Charge(_) => {}
                    }
                }
                pending = next.take_actions();
            }
        }

        fn pdu(&mut self, dir: Dir, pdu: Pdu) {
            let mut cx = SvcCtx::new(SimTime::ZERO);
            self.svc.on_pdu(&mut cx, dir, pdu);
            self.drain(cx);
        }

        fn fire_timer(&mut self) {
            let mut cx = SvcCtx::new(SimTime::ZERO);
            self.svc.on_timer(&mut cx, 0);
            self.drain(cx);
        }

        fn acked(&self, itt: u32) -> bool {
            self.replies
                .iter()
                .any(|p| matches!(p, Pdu::ScsiResponse(r) if r.itt == itt))
        }
    }

    #[test]
    fn small_write_is_absorbed_journaled_and_acked() {
        let mut h = Harness::new(CacheConfig::default());
        h.pdu(Dir::ToTarget, write_cmd(1, 10, vec![0xAB; 4096], 4096));
        assert!(h.acked(1), "write acked from the journal");
        assert!(h.forwards.is_empty(), "write never reaches the target");
        assert_eq!(h.svc.dirty_sectors(), 8);
        assert_eq!(h.svc.stats.journal_commits, 1);
        // The journal holds a committed entry replayable onto a volume.
        let mut backing = MemDisk::with_capacity_bytes(1 << 20);
        let report = recover_journal(&mut h.journal, &mut backing).unwrap();
        assert_eq!(report.applied_entries, 1);
        assert!(!report.torn_tail);
        let mut buf = [0u8; 512];
        backing.read(10, &mut buf).unwrap();
        assert_eq!(buf[0], 0xAB);
    }

    #[test]
    fn jumbo_write_is_solicited_with_r2ts() {
        let mut h = Harness::new(CacheConfig::default());
        let total = 128 * 1024usize;
        // 8 KiB immediate, rest to be solicited past the 64 KiB
        // unsolicited limit.
        h.pdu(
            Dir::ToTarget,
            write_cmd(2, 0, vec![1u8; 8192], total as u32),
        );
        assert!(!h.acked(2));
        // Unsolicited Data-Out up to first_burst.
        let mut off = 8192usize;
        while off < 64 * 1024 {
            let end = off + 8192;
            h.pdu(
                Dir::ToTarget,
                Pdu::DataOut(DataOut {
                    final_pdu: end == 64 * 1024,
                    lun: 0,
                    itt: 2,
                    ttt: 0xFFFF_FFFF,
                    exp_stat_sn: 1,
                    data_sn: 0,
                    buffer_offset: off as u32,
                    data: Bytes::from(vec![1u8; 8192]),
                }),
            );
            off = end;
        }
        let r2t = h
            .replies
            .iter()
            .find_map(|p| match p {
                Pdu::R2t(r) => Some(r.clone()),
                _ => None,
            })
            .expect("cache solicits the tail");
        assert_eq!(r2t.buffer_offset as usize, 64 * 1024);
        assert_eq!(r2t.desired_length as usize, total - 64 * 1024);
        // Solicited Data-Out completes the transfer.
        while off < total {
            let end = off + 8192;
            h.pdu(
                Dir::ToTarget,
                Pdu::DataOut(DataOut {
                    final_pdu: end == total,
                    lun: 0,
                    itt: 2,
                    ttt: r2t.ttt,
                    exp_stat_sn: 1,
                    data_sn: 0,
                    buffer_offset: off as u32,
                    data: Bytes::from(vec![1u8; 8192]),
                }),
            );
            off = end;
        }
        assert!(h.acked(2), "write acked after full transfer");
        assert!(h.forwards.is_empty());
        assert_eq!(h.svc.stats.bytes_absorbed, total as u64);
    }

    #[test]
    fn read_hits_are_served_from_cache() {
        let mut h = Harness::new(CacheConfig::default());
        h.pdu(Dir::ToTarget, write_cmd(1, 100, vec![0x5A; 4096], 4096));
        h.pdu(Dir::ToTarget, read_cmd(2, 100, 8));
        assert!(h.forwards.is_empty(), "hit must not reach the target");
        let data: Vec<&DataIn> = h
            .replies
            .iter()
            .filter_map(|p| match p {
                Pdu::DataIn(d) if d.itt == 2 => Some(d),
                _ => None,
            })
            .collect();
        assert!(!data.is_empty());
        assert!(data.last().unwrap().status_present);
        assert!(data.iter().all(|d| d.data.iter().all(|b| *b == 0x5A)));
        assert_eq!(h.svc.stats.read_hits, 1);
    }

    #[test]
    fn read_misses_forward_populate_and_patch_dirty() {
        let mut h = Harness::new(CacheConfig::default());
        // Sector 5 is dirty in cache with fresh bytes.
        h.pdu(Dir::ToTarget, write_cmd(1, 5, vec![0xFF; 512], 512));
        // A read spanning 4..8 misses (4, 6, 7 uncached) and forwards.
        h.pdu(Dir::ToTarget, read_cmd(2, 4, 4));
        assert_eq!(h.svc.stats.read_misses, 1);
        assert!(matches!(h.forwards.last(), Some(Pdu::ScsiCommand(c)) if c.itt == 2));
        // The target answers with stale bytes for sector 5.
        h.pdu(
            Dir::ToInitiator,
            Pdu::DataIn(DataIn {
                final_pdu: true,
                status_present: true,
                status: ScsiStatus::Good,
                lun: 0,
                itt: 2,
                ttt: 0xFFFF_FFFF,
                stat_sn: 1,
                exp_cmd_sn: 2,
                max_cmd_sn: 34,
                data_sn: 0,
                buffer_offset: 0,
                residual: 0,
                data: Bytes::from(vec![0x11; 4 * 512]),
            }),
        );
        let out = match h.forwards.last() {
            Some(Pdu::DataIn(d)) => d.clone(),
            other => panic!("unexpected {other:?}"),
        };
        // Sector 5 (second sector of the read) carries the dirty bytes.
        assert!(out.data[512..1024].iter().all(|b| *b == 0xFF));
        assert!(out.data[..512].iter().all(|b| *b == 0x11));
        assert_eq!(h.svc.stats.dirty_patches, 1);
        // Sectors 4, 6, 7 were populated: the same read now hits.
        h.pdu(Dir::ToTarget, read_cmd(3, 4, 4));
        assert_eq!(h.svc.stats.read_hits, 1);
    }

    #[test]
    fn timer_flush_cleans_and_checkpoints() {
        let mut h = Harness::new(CacheConfig::default());
        h.pdu(Dir::ToTarget, write_cmd(1, 0, vec![0xCD; 8192], 8192));
        assert_eq!(h.svc.dirty_sectors(), 16);
        assert!(h.timers >= 1, "flush timer armed");
        h.fire_timer();
        assert_eq!(h.svc.dirty_sectors(), 0);
        assert!(h.svc.is_clean());
        assert_eq!(h.svc.stats.flushes, 1);
        // Flush landed on the primary volume.
        let mut buf = [0u8; 512];
        h.primary.read(15, &mut buf).unwrap();
        assert_eq!(buf[0], 0xCD);
        // The checkpoint reset the journal: recovery replays nothing.
        let mut backing = MemDisk::with_capacity_bytes(1 << 20);
        let report = recover_journal(&mut h.journal, &mut backing).unwrap();
        assert_eq!(report.applied_entries, 0);
        assert!(report.seq_floor > 0);
        assert_eq!(h.svc.tail, 1);
    }

    #[test]
    fn full_journal_parks_writes_until_reset() {
        let cfg = CacheConfig {
            journal_sectors: 12, // room for one 8-sector entry (2+8)
            ..CacheConfig::default()
        };
        let mut h = Harness::new(cfg);
        h.pdu(Dir::ToTarget, write_cmd(1, 0, vec![1u8; 4096], 4096));
        assert!(h.acked(1));
        // Second write does not fit: parked (unacked until the kicked
        // flush drains the cache and the journal resets). The harness
        // completes replica I/O synchronously, so the whole
        // park -> flush -> checkpoint -> journal -> ack chain runs here.
        h.pdu(Dir::ToTarget, write_cmd(2, 8, vec![2u8; 4096], 4096));
        assert_eq!(h.svc.stats.journal_parks, 1);
        assert!(h.acked(2), "parked write acked after journal reset");
        assert_eq!(h.svc.stats.journal_commits, 2);
    }

    #[test]
    fn synchronize_cache_waits_for_clean() {
        let mut h = Harness::new(CacheConfig::default());
        h.pdu(Dir::ToTarget, write_cmd(1, 0, vec![7u8; 4096], 4096));
        let sync = Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: false,
            lun: 0,
            itt: 9,
            edtl: 0,
            cmd_sn: 2,
            exp_stat_sn: 1,
            cdb: Cdb::SynchronizeCache.to_bytes(),
            data: Bytes::new(),
        });
        h.pdu(Dir::ToTarget, sync);
        // The sync is parked; the kicked flush cleans the cache and the
        // checkpoint releases it to the target.
        assert!(
            h.forwards
                .iter()
                .any(|p| matches!(p, Pdu::ScsiCommand(c) if c.itt == 9)),
            "sync released after flush: {:?}",
            h.forwards
        );
        assert!(h.svc.is_clean());
    }

    #[test]
    fn journal_failure_degrades_to_write_through() {
        let mut h = Harness::new(CacheConfig::default());
        h.journal_ok = false;
        h.pdu(Dir::ToTarget, write_cmd(1, 0, vec![3u8; 4096], 4096));
        // No self-ack: the rebuilt write is forwarded to the target,
        // which will ack it.
        assert!(!h.acked(1));
        assert!(
            matches!(h.forwards.last(), Some(Pdu::ScsiCommand(c)) if c.itt == 1 && c.data.len() == 4096)
        );
        assert_eq!(h.svc.stats.write_through, 1);
        // Subsequent writes keep flowing through.
        h.pdu(Dir::ToTarget, write_cmd(2, 8, vec![4u8; 512], 512));
        assert_eq!(h.svc.stats.write_through, 2);
    }

    #[test]
    fn capacity_evicts_clean_sectors_only() {
        let cfg = CacheConfig {
            capacity_sectors: 8,
            ..CacheConfig::default()
        };
        let mut h = Harness::new(cfg);
        // 8 dirty sectors fill the cache.
        h.pdu(Dir::ToTarget, write_cmd(1, 0, vec![1u8; 4096], 4096));
        // Flush them clean.
        h.fire_timer();
        // 8 more dirty sectors: the clean ones are evicted.
        h.pdu(Dir::ToTarget, write_cmd(2, 100, vec![2u8; 4096], 4096));
        assert_eq!(h.svc.cached_sectors(), 8);
        assert!(h.svc.stats.evictions >= 8);
        assert_eq!(h.svc.dirty_sectors(), 8);
    }

    #[test]
    fn recovery_skips_torn_tail_but_replays_committed_prefix() {
        let mut h = Harness::new(CacheConfig::default());
        h.pdu(Dir::ToTarget, write_cmd(1, 0, vec![0xA1; 512], 512));
        h.pdu(Dir::ToTarget, write_cmd(2, 1, vec![0xB2; 512], 512));
        assert!(h.acked(1) && h.acked(2));
        // Corrupt the second entry's commit record: a torn append.
        // Each entry is header + payload + commit, one sector apiece:
        // entry 1 occupies journal sectors 1..4, entry 2 sectors 4..7,
        // so entry 2's commit record is sector 6.
        h.journal.write(6, &[0u8; 512]).unwrap();
        let mut backing = MemDisk::with_capacity_bytes(1 << 20);
        let report = recover_journal(&mut h.journal, &mut backing).unwrap();
        assert_eq!(report.applied_entries, 1);
        assert!(report.torn_tail);
        let mut buf = [0u8; 512];
        backing.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0xA1);
        // The torn sector was never applied.
        backing.read(1, &mut buf).unwrap();
        assert_eq!(buf[0], 0);
    }

    #[test]
    fn recovery_applies_overwrites_in_append_order() {
        let mut h = Harness::new(CacheConfig::default());
        h.pdu(Dir::ToTarget, write_cmd(1, 0, vec![0x01; 512], 512));
        h.pdu(Dir::ToTarget, write_cmd(2, 0, vec![0x02; 512], 512));
        let mut backing = MemDisk::with_capacity_bytes(1 << 20);
        let report = recover_journal(&mut h.journal, &mut backing).unwrap();
        assert_eq!(report.applied_entries, 2);
        let mut buf = [0u8; 512];
        backing.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x02, "newest journal entry wins");
    }

    #[test]
    fn disarmed_cache_forwards_everything_verbatim() {
        let mut svc = WriteBackCacheService::disarmed(CacheConfig::default());
        let pdu = write_cmd(1, 0, vec![9u8; 4096], 4096);
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_pdu(&mut cx, Dir::ToTarget, pdu.clone());
        let acts = cx.take_actions();
        assert!(matches!(&acts[..], [SvcAction::Forward(p)] if *p == pdu));
        assert_eq!(svc.stats, CacheStats::default());
        assert_eq!(svc.per_byte_cost(), SimDuration::ZERO);
    }
}

//! Case 3: tenant-defined replica dispatch.
//!
//! "For write I/O operations, in addition to forwarding the data to the
//! original volume, our replication service copies exactly the same I/O
//! data in advance to other backup volumes ... for read I/O operations,
//! the replication service alternatively chooses one of the available
//! replicas ... Once a replica is not responsive ... it will be eliminated
//! from future operations. The unfinished reads of that failed replica are
//! served from one of the other active replicas."

use std::collections::BTreeMap;

use bytes::Bytes;

use storm_core::{Dir, StorageService, SvcCtx};
use storm_iscsi::{Cdb, DataIn, Pdu, ScsiCommand, ScsiStatus};
use storm_sim::SimDuration;

/// Counters for the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicationStats {
    /// Writes fanned out to replicas.
    pub replica_writes: u64,
    /// Reads served from a replica instead of the primary.
    pub striped_reads: u64,
    /// Reads forwarded to the primary volume.
    pub primary_reads: u64,
    /// Reads retried after a replica failure.
    pub retried_reads: u64,
    /// Replica write failures observed.
    pub write_failures: u64,
}

#[derive(Debug, Clone)]
struct PendingRead {
    cmd: ScsiCommand,
    replica: usize,
}

/// The replica-dispatch middle-box service.
///
/// The middle-box it runs in must be deployed with the matching
/// [`storm_core::relay::ReplicaTarget`] list; `replica_count` here is the
/// number of *backup* volumes (the primary is the normal forward path).
pub struct ReplicationService {
    replica_count: usize,
    alive: Vec<bool>,
    stripe_reads: bool,
    rr: usize,
    next_ctx: u64,
    // BTreeMaps: `pending_reads` is iterated on replica failure and the
    // re-dispatch order must be deterministic across equal-seed runs.
    pending_reads: BTreeMap<u64, PendingRead>,
    /// Measurements.
    pub stats: ReplicationStats,
    per_byte: SimDuration,
    write_bufs: BTreeMap<u32, (u64, bytes::BytesMut, usize, usize)>,
    /// Consecutive I/O failures per replica; at `fail_threshold` the
    /// replica is declared unresponsive and removed (the paper's
    /// "eliminated from future operations").
    consecutive_failures: Vec<usize>,
    fail_threshold: usize,
}

impl ReplicationService {
    /// Creates a dispatcher over `replica_count` backup volumes.
    pub fn new(replica_count: usize, stripe_reads: bool) -> Self {
        ReplicationService {
            replica_count,
            alive: vec![true; replica_count],
            stripe_reads,
            rr: 0,
            next_ctx: 1,
            pending_reads: BTreeMap::new(),
            stats: ReplicationStats::default(),
            per_byte: SimDuration::from_nanos(0),
            write_bufs: BTreeMap::new(),
            consecutive_failures: vec![0; replica_count],
            fail_threshold: 3,
        }
    }

    /// Live replicas.
    pub fn alive_replicas(&self) -> usize {
        self.alive.iter().filter(|a| **a).count()
    }

    fn ctx(&mut self) -> u64 {
        let c = self.next_ctx;
        self.next_ctx += 1;
        c
    }

    /// Picks the next read source: `None` = primary, `Some(i)` = replica i.
    fn pick_read_source(&mut self) -> Option<usize> {
        if !self.stripe_reads {
            return None;
        }
        let lanes = 1 + self.alive_replicas();
        let lane = self.rr % lanes;
        self.rr += 1;
        if lane == 0 {
            return None;
        }
        // The lane-th alive replica.
        let mut seen = 0;
        for (i, alive) in self.alive.iter().enumerate() {
            if *alive {
                seen += 1;
                if seen == lane {
                    return Some(i);
                }
            }
        }
        None
    }

    fn mirror_write(&mut self, cx: &mut SvcCtx, lba: u64, data: &Bytes) {
        for i in 0..self.replica_count {
            if self.alive[i] {
                let c = self.ctx();
                cx.replica_write(i, lba, data.clone(), c);
                self.stats.replica_writes += 1;
            }
        }
    }

    /// Synthesizes the Data-In + status train for a replica-served read.
    fn synth_read_reply(cx: &mut SvcCtx, itt: u32, data: Bytes) {
        let total = data.len();
        let chunk = 64 * 1024;
        let mut off = 0;
        let mut data_sn = 0;
        loop {
            let end = (off + chunk).min(total);
            let last = end == total;
            cx.reply(Pdu::DataIn(DataIn {
                final_pdu: last,
                status_present: last,
                status: ScsiStatus::Good,
                lun: 0,
                itt,
                ttt: 0xFFFF_FFFF,
                stat_sn: 0,
                exp_cmd_sn: 0,
                max_cmd_sn: 0,
                data_sn,
                buffer_offset: off as u32,
                residual: 0,
                data: data.slice(off..end),
            }));
            if last {
                break;
            }
            data_sn += 1;
            off = end;
        }
    }
}

impl StorageService for ReplicationService {
    fn name(&self) -> &str {
        "replication"
    }

    fn on_pdu(&mut self, cx: &mut SvcCtx, dir: Dir, pdu: Pdu) {
        if dir == Dir::ToInitiator {
            cx.forward(pdu);
            return;
        }
        match pdu {
            Pdu::ScsiCommand(c) => {
                match Cdb::parse(&c.cdb) {
                    Ok(Cdb::Write { lba, .. }) => {
                        let expected = c.edtl as usize;
                        // Mirror immediate data now; stage the rest.
                        if c.data.len() >= expected {
                            self.mirror_write(cx, lba, &c.data);
                        } else {
                            let mut buf = bytes::BytesMut::zeroed(expected);
                            let imm = c.data.len();
                            buf[..imm].copy_from_slice(&c.data);
                            self.write_bufs.insert(c.itt, (lba, buf, imm, expected));
                        }
                        cx.forward(Pdu::ScsiCommand(c));
                    }
                    Ok(Cdb::Read { lba, sectors }) => match self.pick_read_source() {
                        None => {
                            self.stats.primary_reads += 1;
                            cx.forward(Pdu::ScsiCommand(c));
                        }
                        Some(replica) => {
                            self.stats.striped_reads += 1;
                            let ctx_id = self.ctx();
                            self.pending_reads
                                .insert(ctx_id, PendingRead { cmd: c, replica });
                            cx.replica_read(replica, lba, sectors, ctx_id);
                        }
                    },
                    _ => cx.forward(Pdu::ScsiCommand(c)),
                }
            }
            Pdu::DataOut(d) => {
                let complete =
                    if let Some((_, buf, recv, expected)) = self.write_bufs.get_mut(&d.itt) {
                        let off = d.buffer_offset as usize;
                        let end = (off + d.data.len()).min(*expected);
                        if off < end {
                            buf[off..end].copy_from_slice(&d.data[..end - off]);
                            *recv += end - off;
                        }
                        *recv >= *expected
                    } else {
                        false
                    };
                if complete {
                    if let Some((lba, buf, _, _)) = self.write_bufs.remove(&d.itt) {
                        let data = buf.freeze();
                        self.mirror_write(cx, lba, &data);
                    }
                }
                cx.forward(Pdu::DataOut(d));
            }
            other => cx.forward(other),
        }
    }

    fn on_replica_done(
        &mut self,
        cx: &mut SvcCtx,
        replica: usize,
        ctx: u64,
        ok: bool,
        data: Bytes,
    ) {
        // Claim the completion BEFORE the unresponsiveness bookkeeping: a
        // threshold-crossing failure below runs `on_replica_failed`, which
        // re-dispatches every read still in `pending_reads`. If this ctx
        // were still there it would be retried twice and the miss afterward
        // would be miscounted as a write failure.
        let pending = self.pending_reads.remove(&ctx);
        // Unresponsiveness detection: repeated failures remove the replica.
        if replica < self.consecutive_failures.len() {
            if ok {
                self.consecutive_failures[replica] = 0;
            } else {
                self.consecutive_failures[replica] += 1;
                if self.consecutive_failures[replica] >= self.fail_threshold {
                    self.on_replica_failed(cx, replica);
                }
            }
        }
        if let Some(pending) = pending {
            if ok {
                Self::synth_read_reply(cx, pending.cmd.itt, data);
            } else {
                // Retry: another replica, else fall back to the primary.
                // `pick_read_source` only ever returns alive replicas.
                self.stats.retried_reads += 1;
                match self.pick_read_source() {
                    Some(replica) => {
                        if let Ok(Cdb::Read { lba, sectors }) = Cdb::parse(&pending.cmd.cdb) {
                            let ctx_id = self.ctx();
                            self.pending_reads.insert(
                                ctx_id,
                                PendingRead {
                                    cmd: pending.cmd,
                                    replica,
                                },
                            );
                            cx.replica_read(replica, lba, sectors, ctx_id);
                        }
                    }
                    None => {
                        self.stats.primary_reads += 1;
                        cx.forward(Pdu::ScsiCommand(pending.cmd));
                    }
                }
            }
        } else if !ok {
            self.stats.write_failures += 1;
        }
    }

    fn on_replica_failed(&mut self, cx: &mut SvcCtx, replica: usize) {
        if replica < self.alive.len() && self.alive[replica] {
            self.alive[replica] = false;
            cx.alert(format!(
                "replica {replica} failed; {} of {} remain in service",
                self.alive_replicas(),
                self.replica_count
            ));
            // Unfinished reads on that replica are re-dispatched.
            let stranded: Vec<u64> = self
                .pending_reads
                .iter()
                .filter(|(_, p)| p.replica == replica)
                .map(|(c, _)| *c)
                .collect();
            for ctx_id in stranded {
                if let Some(pending) = self.pending_reads.remove(&ctx_id) {
                    self.stats.retried_reads += 1;
                    match self.pick_read_source() {
                        Some(r) => {
                            if let Ok(Cdb::Read { lba, sectors }) = Cdb::parse(&pending.cmd.cdb) {
                                let new_ctx = self.ctx();
                                self.pending_reads.insert(
                                    new_ctx,
                                    PendingRead {
                                        cmd: pending.cmd,
                                        replica: r,
                                    },
                                );
                                cx.replica_read(r, lba, sectors, new_ctx);
                            }
                        }
                        None => {
                            self.stats.primary_reads += 1;
                            cx.forward(Pdu::ScsiCommand(pending.cmd));
                        }
                    }
                }
            }
        }
    }

    fn per_byte_cost(&self) -> SimDuration {
        self.per_byte
    }
}

impl std::fmt::Debug for ReplicationService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicationService")
            .field("replicas", &self.replica_count)
            .field("alive", &self.alive_replicas())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_core::service::{ReplicaIo, SvcAction};
    use storm_sim::SimTime;

    fn write_cmd(itt: u32, lba: u64, data: Bytes) -> Pdu {
        let sectors = (data.len() / 512) as u32;
        Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: true,
            lun: 0,
            itt,
            edtl: data.len() as u32,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: Cdb::Write { lba, sectors }.to_bytes(),
            data,
        })
    }

    fn read_cmd(itt: u32, lba: u64, sectors: u32) -> Pdu {
        Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: true,
            write: false,
            lun: 0,
            itt,
            edtl: sectors * 512,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: Cdb::Read { lba, sectors }.to_bytes(),
            data: Bytes::new(),
        })
    }

    fn actions(svc: &mut ReplicationService, dir: Dir, pdu: Pdu) -> Vec<SvcAction> {
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_pdu(&mut cx, dir, pdu);
        cx.take_actions()
    }

    #[test]
    fn writes_fan_out_to_all_replicas_and_forward() {
        let mut svc = ReplicationService::new(2, true);
        let data = Bytes::from(vec![9u8; 1024]);
        let acts = actions(&mut svc, Dir::ToTarget, write_cmd(1, 10, data));
        let writes: Vec<_> = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    SvcAction::Replica {
                        io: ReplicaIo::Write { .. },
                        ..
                    }
                )
            })
            .collect();
        assert_eq!(writes.len(), 2);
        assert!(acts.iter().any(|a| matches!(a, SvcAction::Forward(_))));
        assert_eq!(svc.stats.replica_writes, 2);
    }

    #[test]
    fn staged_writes_mirror_after_data_out() {
        let mut svc = ReplicationService::new(1, false);
        // Command with half the data immediate.
        let mut full = vec![0u8; 2048];
        full[0] = 0xAA;
        let cmd = Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: true,
            lun: 0,
            itt: 4,
            edtl: 2048,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: Cdb::Write { lba: 0, sectors: 4 }.to_bytes(),
            data: Bytes::from(full[..1024].to_vec()),
        });
        let acts = actions(&mut svc, Dir::ToTarget, cmd);
        assert!(!acts.iter().any(|a| matches!(a, SvcAction::Replica { .. })));
        // The trailing Data-Out completes the buffer and triggers mirror.
        let dout = Pdu::DataOut(storm_iscsi::DataOut {
            final_pdu: true,
            lun: 0,
            itt: 4,
            ttt: 1,
            exp_stat_sn: 1,
            data_sn: 0,
            buffer_offset: 1024,
            data: Bytes::from(full[1024..].to_vec()),
        });
        let acts = actions(&mut svc, Dir::ToTarget, dout);
        let mirrored = acts.iter().any(
            |a| matches!(a, SvcAction::Replica { io: ReplicaIo::Write { lba: 0, data }, .. } if data.len() == 2048),
        );
        assert!(mirrored, "actions: {acts:?}");
    }

    #[test]
    fn reads_stripe_round_robin_across_primary_and_replicas() {
        let mut svc = ReplicationService::new(2, true);
        let mut forwarded = 0;
        let mut striped = 0;
        for i in 0..6 {
            let acts = actions(&mut svc, Dir::ToTarget, read_cmd(i, 0, 8));
            if acts.iter().any(|a| matches!(a, SvcAction::Forward(_))) {
                forwarded += 1;
            }
            if acts.iter().any(|a| {
                matches!(
                    a,
                    SvcAction::Replica {
                        io: ReplicaIo::Read { .. },
                        ..
                    }
                )
            }) {
                striped += 1;
            }
        }
        // 3 lanes (primary + 2 replicas), 6 reads: 2 each.
        assert_eq!(forwarded, 2);
        assert_eq!(striped, 4);
        assert_eq!(svc.stats.primary_reads, 2);
        assert_eq!(svc.stats.striped_reads, 4);
    }

    #[test]
    fn replica_read_completion_synthesizes_data_in() {
        let mut svc = ReplicationService::new(1, true);
        // Force the read onto the replica (lane 1 of 2).
        svc.rr = 1;
        let acts = actions(&mut svc, Dir::ToTarget, read_cmd(9, 100, 8));
        let ctx = acts
            .iter()
            .find_map(|a| match a {
                SvcAction::Replica { ctx, .. } => Some(*ctx),
                _ => None,
            })
            .expect("read dispatched to replica");
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_replica_done(&mut cx, 0, ctx, true, Bytes::from(vec![5u8; 4096]));
        let replies: Vec<SvcAction> = cx.take_actions();
        match &replies[..] {
            [SvcAction::Reply(Pdu::DataIn(d))] => {
                assert_eq!(d.itt, 9);
                assert!(d.final_pdu && d.status_present);
                assert_eq!(d.data.len(), 4096);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn failed_replica_is_removed_and_reads_redirect() {
        let mut svc = ReplicationService::new(2, true);
        svc.rr = 1; // next read goes to replica 0
        let acts = actions(&mut svc, Dir::ToTarget, read_cmd(1, 0, 8));
        assert!(acts
            .iter()
            .any(|a| matches!(a, SvcAction::Replica { replica: 0, .. })));
        // Replica 0 dies with the read outstanding.
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_replica_failed(&mut cx, 0);
        let acts = cx.take_actions();
        assert!(acts.iter().any(|a| matches!(a, SvcAction::Alert(_))));
        // The stranded read is re-dispatched (to replica 1 or the primary).
        assert!(
            acts.iter().any(|a| matches!(
                a,
                SvcAction::Replica {
                    replica: 1,
                    io: ReplicaIo::Read { .. },
                    ..
                }
            ) || matches!(a, SvcAction::Forward(_))),
            "actions: {acts:?}"
        );
        assert_eq!(svc.alive_replicas(), 1);
        assert_eq!(svc.stats.retried_reads, 1);
        // Future writes only mirror to the survivor.
        let acts = actions(
            &mut svc,
            Dir::ToTarget,
            write_cmd(2, 0, Bytes::from(vec![0u8; 512])),
        );
        let mirrors = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    SvcAction::Replica {
                        io: ReplicaIo::Write { .. },
                        ..
                    }
                )
            })
            .count();
        assert_eq!(mirrors, 1);
    }

    #[test]
    fn failed_replica_write_counts_write_failure() {
        let mut svc = ReplicationService::new(2, true);
        let acts = actions(
            &mut svc,
            Dir::ToTarget,
            write_cmd(1, 0, Bytes::from(vec![0u8; 512])),
        );
        let ctxs: Vec<u64> = acts
            .iter()
            .filter_map(|a| match a {
                SvcAction::Replica {
                    io: ReplicaIo::Write { .. },
                    ctx,
                    ..
                } => Some(*ctx),
                _ => None,
            })
            .collect();
        assert_eq!(ctxs.len(), 2);
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_replica_done(&mut cx, 0, ctxs[0], false, Bytes::new());
        assert_eq!(svc.stats.write_failures, 1);
        assert_eq!(svc.stats.retried_reads, 0);
        // A successful completion must not bump the counter.
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_replica_done(&mut cx, 1, ctxs[1], true, Bytes::new());
        assert_eq!(svc.stats.write_failures, 1);
    }

    #[test]
    fn failed_replica_read_retries_on_another_source() {
        let mut svc = ReplicationService::new(2, true);
        svc.rr = 1; // next read goes to replica 0
        let acts = actions(&mut svc, Dir::ToTarget, read_cmd(7, 64, 8));
        let ctx = acts
            .iter()
            .find_map(|a| match a {
                SvcAction::Replica {
                    replica: 0, ctx, ..
                } => Some(*ctx),
                _ => None,
            })
            .expect("read dispatched to replica 0");
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_replica_done(&mut cx, 0, ctx, false, Bytes::new());
        let acts = cx.take_actions();
        // Re-dispatched exactly once: to another replica or the primary,
        // and the miss must NOT be miscounted as a write failure.
        let retried = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    SvcAction::Replica {
                        io: ReplicaIo::Read { .. },
                        ..
                    }
                ) || matches!(a, SvcAction::Forward(_))
            })
            .count();
        assert_eq!(retried, 1, "actions: {acts:?}");
        assert_eq!(svc.stats.retried_reads, 1);
        assert_eq!(svc.stats.write_failures, 0);
    }

    #[test]
    fn threshold_crossing_read_failure_is_not_double_dispatched() {
        // Three consecutive failed reads on replica 0 cross fail_threshold
        // inside on_replica_done. The third completion's own pending read
        // must be claimed before the eviction re-dispatches stranded reads,
        // otherwise it is retried twice and write_failures is bumped.
        let mut svc = ReplicationService::new(2, true);
        let fail_read = |svc: &mut ReplicationService, itt: u32| {
            svc.rr = 1; // force replica 0
            let acts = actions(svc, Dir::ToTarget, read_cmd(itt, 0, 8));
            let ctx = acts
                .iter()
                .find_map(|a| match a {
                    SvcAction::Replica {
                        replica: 0, ctx, ..
                    } => Some(*ctx),
                    _ => None,
                })
                .expect("read on replica 0");
            let mut cx = SvcCtx::new(SimTime::ZERO);
            svc.on_replica_done(&mut cx, 0, ctx, false, Bytes::new());
            cx.take_actions()
        };
        fail_read(&mut svc, 1);
        fail_read(&mut svc, 2);
        let acts = fail_read(&mut svc, 3); // crosses fail_threshold = 3
        assert_eq!(svc.alive_replicas(), 1);
        let dispatches = acts
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    SvcAction::Replica {
                        io: ReplicaIo::Read { .. },
                        ..
                    }
                ) || matches!(a, SvcAction::Forward(_))
            })
            .count();
        assert_eq!(dispatches, 1, "actions: {acts:?}");
        assert_eq!(svc.stats.write_failures, 0);
        assert_eq!(svc.stats.retried_reads, 3);
    }

    #[test]
    fn responses_pass_through_untouched() {
        let mut svc = ReplicationService::new(2, true);
        let resp = Pdu::ScsiResponse(storm_iscsi::ScsiResponse {
            itt: 3,
            response: 0,
            status: ScsiStatus::Good,
            stat_sn: 1,
            exp_cmd_sn: 2,
            max_cmd_sn: 66,
            residual: 0,
            data: Bytes::new(),
        });
        let acts = actions(&mut svc, Dir::ToInitiator, resp.clone());
        assert!(matches!(&acts[..], [SvcAction::Forward(p)] if *p == resp));
    }
}

//! Case 2: on-the-fly data encryption/decryption.
//!
//! "The goal of this middle-box is to encrypt the tenant data before it is
//! written to the disk and decrypt it when the data is requested." The
//! tenant picks the algorithm — the flexibility the paper contrasts with
//! provider-controlled encryption:
//!
//! * [`CipherKind::AesXts`] — the dm-crypt equivalent; needs whole
//!   sectors, so it runs in the active relay.
//! * [`CipherKind::Stream`] — the byte-wise "stream cipher" used in the
//!   paper's API-overhead experiments (Figures 5/6/8/9); position-keyed,
//!   so it also works on the passive path where data crosses in arbitrary
//!   packet-sized pieces.

use std::collections::HashMap;

use storm_core::{Dir, StorageService, SvcCtx};
use storm_crypto::{AesXts, ChaCha20};
use storm_iscsi::{Cdb, Pdu};
use storm_sim::SimDuration;

/// The tenant-selected cipher.
pub enum CipherKind {
    /// AES-256-XTS over 512-byte sectors.
    AesXts(Box<AesXts>),
    /// Seekable ChaCha20 keystream over the volume's byte space.
    Stream(ChaCha20),
}

impl CipherKind {
    fn apply(&self, encrypt: bool, vol_offset: u64, data: &mut [u8]) {
        match self {
            CipherKind::AesXts(xts) => {
                debug_assert_eq!(vol_offset % 512, 0, "XTS needs sector alignment");
                debug_assert_eq!(data.len() % 512, 0, "XTS needs whole sectors");
                let sector = vol_offset / 512;
                if encrypt {
                    xts.encrypt_run(sector, 512, data);
                } else {
                    xts.decrypt_run(sector, 512, data);
                }
            }
            CipherKind::Stream(c) => c.apply_keystream_at(vol_offset, data),
        }
    }
}

/// The encryption middle-box service.
pub struct EncryptionService {
    cipher: CipherKind,
    per_byte: SimDuration,
    cmds: HashMap<u32, u64>,
    bytes_encrypted: u64,
    bytes_decrypted: u64,
}

impl EncryptionService {
    /// AES-256-XTS from a 64-byte master key (active relay only).
    pub fn aes_xts(master_key: &[u8; 64]) -> Self {
        Self::with_cipher(CipherKind::AesXts(Box::new(AesXts::from_master_key(
            master_key,
        ))))
    }

    /// ChaCha20 stream cipher (works on both relay paths).
    pub fn stream_cipher(key: &[u8; 32], nonce: &[u8; 12]) -> Self {
        Self::with_cipher(CipherKind::Stream(ChaCha20::new(key, nonce)))
    }

    /// Builds from an explicit cipher.
    pub fn with_cipher(cipher: CipherKind) -> Self {
        EncryptionService {
            cipher,
            // ~1.5 GB/s single-core cipher throughput.
            per_byte: SimDuration::from_nanos(1),
            cmds: HashMap::new(),
            bytes_encrypted: 0,
            bytes_decrypted: 0,
        }
    }

    /// Overrides the modelled per-byte CPU cost.
    pub fn set_per_byte_cost(&mut self, cost: SimDuration) {
        self.per_byte = cost;
    }

    /// `(encrypted, decrypted)` byte counters.
    pub fn counters(&self) -> (u64, u64) {
        (self.bytes_encrypted, self.bytes_decrypted)
    }
}

impl StorageService for EncryptionService {
    fn name(&self) -> &str {
        "encryption"
    }

    fn on_pdu(&mut self, cx: &mut SvcCtx, dir: Dir, mut pdu: Pdu) {
        match (&mut pdu, dir) {
            (Pdu::ScsiCommand(c), Dir::ToTarget) => {
                if let Ok(Cdb::Read { lba, .. } | Cdb::Write { lba, .. }) = Cdb::parse(&c.cdb) {
                    self.cmds.insert(c.itt, lba);
                }
                if !c.data.is_empty() {
                    // Immediate write data encrypts at buffer offset 0.
                    if let Some(&lba) = self.cmds.get(&c.itt) {
                        let mut data = c.data.to_vec();
                        self.cipher.apply(true, lba * 512, &mut data);
                        cx.charge(self.per_byte * data.len() as u64);
                        self.bytes_encrypted += data.len() as u64;
                        c.data = data.into();
                    }
                }
            }
            (Pdu::DataOut(d), Dir::ToTarget) => {
                if let Some(&lba) = self.cmds.get(&d.itt) {
                    let mut data = d.data.to_vec();
                    self.cipher
                        .apply(true, lba * 512 + d.buffer_offset as u64, &mut data);
                    cx.charge(self.per_byte * data.len() as u64);
                    self.bytes_encrypted += data.len() as u64;
                    d.data = data.into();
                }
            }
            (Pdu::DataIn(d), Dir::ToInitiator) => {
                if let Some(&lba) = self.cmds.get(&d.itt) {
                    let mut data = d.data.to_vec();
                    self.cipher
                        .apply(false, lba * 512 + d.buffer_offset as u64, &mut data);
                    cx.charge(self.per_byte * data.len() as u64);
                    self.bytes_decrypted += data.len() as u64;
                    d.data = data.into();
                }
            }
            (Pdu::ScsiResponse(r), Dir::ToInitiator) => {
                self.cmds.remove(&r.itt);
            }
            _ => {}
        }
        cx.forward(pdu);
    }

    fn per_byte_cost(&self) -> SimDuration {
        self.per_byte
    }

    fn transform(&mut self, dir: Dir, vol_offset: u64, data: &mut [u8]) {
        // Passive path: only position-keyed ciphers can run here.
        if let CipherKind::Stream(_) = self.cipher {
            let encrypt = dir == Dir::ToTarget;
            self.cipher.apply(encrypt, vol_offset, data);
            if encrypt {
                self.bytes_encrypted += data.len() as u64;
            } else {
                self.bytes_decrypted += data.len() as u64;
            }
        }
    }
}

impl std::fmt::Debug for EncryptionService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EncryptionService")
            .field("bytes_encrypted", &self.bytes_encrypted)
            .field("bytes_decrypted", &self.bytes_decrypted)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use storm_core::service::SvcAction;
    use storm_iscsi::{DataIn, DataOut, ScsiCommand, ScsiStatus};
    use storm_sim::SimTime;

    fn svc() -> EncryptionService {
        EncryptionService::aes_xts(&[0x42; 64])
    }

    fn write_cmd(itt: u32, lba: u64, data: Bytes) -> Pdu {
        let sectors = (data.len() / 512) as u32;
        Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: true,
            lun: 0,
            itt,
            edtl: data.len() as u32,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: Cdb::Write { lba, sectors }.to_bytes(),
            data,
        })
    }

    fn run(svc: &mut EncryptionService, dir: Dir, pdu: Pdu) -> Pdu {
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_pdu(&mut cx, dir, pdu);
        cx.take_actions()
            .into_iter()
            .find_map(|a| match a {
                SvcAction::Forward(p) => Some(p),
                _ => None,
            })
            .expect("forwarded")
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut enc = svc();
        let plain = Bytes::from(vec![0x11u8; 4096]);
        // Write path: immediate data is encrypted.
        let out = run(&mut enc, Dir::ToTarget, write_cmd(1, 64, plain.clone()));
        let stored = match &out {
            Pdu::ScsiCommand(c) => c.data.clone(),
            other => panic!("unexpected {other:?}"),
        };
        assert_ne!(stored, plain, "ciphertext must differ");
        // Read path: a Data-In carrying the ciphertext decrypts back.
        let din = Pdu::DataIn(DataIn {
            final_pdu: true,
            status_present: true,
            status: ScsiStatus::Good,
            lun: 0,
            itt: 1,
            ttt: 0xFFFF_FFFF,
            stat_sn: 1,
            exp_cmd_sn: 2,
            max_cmd_sn: 66,
            data_sn: 0,
            buffer_offset: 0,
            residual: 0,
            data: stored,
        });
        let back = run(&mut enc, Dir::ToInitiator, din);
        match back {
            Pdu::DataIn(d) => assert_eq!(d.data, plain),
            other => panic!("unexpected {other:?}"),
        }
        let (e, d) = enc.counters();
        assert_eq!((e, d), (4096, 4096));
    }

    #[test]
    fn data_out_uses_buffer_offset() {
        let mut enc = svc();
        // Establish the command context with no immediate data.
        let _ = run(&mut enc, Dir::ToTarget, write_cmd(7, 100, Bytes::new()));
        let plain = vec![0xABu8; 1024];
        let dout = Pdu::DataOut(DataOut {
            final_pdu: true,
            lun: 0,
            itt: 7,
            ttt: 1,
            exp_stat_sn: 1,
            data_sn: 0,
            buffer_offset: 2048,
            data: Bytes::from(plain.clone()),
        });
        let out = run(&mut enc, Dir::ToTarget, dout);
        let cipher1 = match &out {
            Pdu::DataOut(d) => d.data.clone(),
            _ => unreachable!(),
        };
        // Same plaintext at a different offset yields different ciphertext
        // (sector tweak).
        let mut direct = plain.clone();
        AesXts::from_master_key(&[0x42; 64]).encrypt_run(100 + 4, 512, &mut direct);
        assert_eq!(&cipher1[..], &direct[..]);
    }

    #[test]
    fn stream_cipher_passive_transform_round_trips_in_pieces() {
        let mut enc = EncryptionService::stream_cipher(&[7; 32], &[9; 12]);
        let mut dec = EncryptionService::stream_cipher(&[7; 32], &[9; 12]);
        let plain: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        let mut wire = plain.clone();
        // Encrypt in irregular chunks (packets), decrypt in different ones.
        let mut off = 0;
        for chunk in [100usize, 900, 1448, 552] {
            enc.transform(
                Dir::ToTarget,
                5000 + off as u64,
                &mut wire[off..off + chunk],
            );
            off += chunk;
        }
        let mut off = 0;
        for chunk in [1448usize, 1448, 104] {
            dec.transform(
                Dir::ToInitiator,
                5000 + off as u64,
                &mut wire[off..off + chunk],
            );
            off += chunk;
        }
        assert_eq!(wire, plain);
        assert_eq!(enc.counters().0, 3000);
        assert_eq!(dec.counters().1, 3000);
    }

    #[test]
    fn xts_never_transforms_on_passive_path() {
        let mut enc = svc();
        let mut data = vec![1u8; 512];
        let orig = data.clone();
        enc.transform(Dir::ToTarget, 0, &mut data);
        assert_eq!(data, orig, "XTS must not run without whole-PDU context");
    }

    #[test]
    fn non_data_pdus_pass_untouched() {
        let mut enc = svc();
        let nop = Pdu::NopOut(storm_iscsi::NopOut {
            itt: 9,
            ttt: 0xFFFF_FFFF,
            cmd_sn: 1,
            exp_stat_sn: 1,
            data: Bytes::from_static(b"keepalive"),
        });
        let out = run(&mut enc, Dir::ToTarget, nop.clone());
        assert_eq!(out, nop);
    }
}

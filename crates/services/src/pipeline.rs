//! A multi-threaded sector-encryption pipeline.
//!
//! The paper's API section calls for "a multi-threaded, high throughput
//! design" inside the middle-box. The simulator models that cost
//! virtually; this pipeline is the *real* implementation for contexts
//! where actual throughput matters (the criterion micro-benchmarks, or
//! embedding the services outside the simulator): a crossbeam fan-out of
//! worker threads applying AES-XTS per sector, with order-preserving
//! collection.

use crossbeam::channel;
use std::sync::Arc;
use std::thread::JoinHandle;

use storm_crypto::AesXts;

enum Job {
    Encrypt {
        idx: usize,
        sector: u64,
        data: Vec<u8>,
    },
    Decrypt {
        idx: usize,
        sector: u64,
        data: Vec<u8>,
    },
}

/// A pool of cipher workers.
pub struct CipherPipeline {
    tx: Option<channel::Sender<Job>>,
    rx_done: channel::Receiver<(usize, Vec<u8>)>,
    workers: Vec<JoinHandle<()>>,
}

impl CipherPipeline {
    /// Spawns `workers` threads sharing `xts`.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(xts: AesXts, workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        let xts = Arc::new(xts);
        let (tx, rx) = channel::unbounded::<Job>();
        let (tx_done, rx_done) = channel::unbounded();
        let handles = (0..workers)
            .map(|_| {
                let rx = rx.clone();
                let tx_done = tx_done.clone();
                let xts = Arc::clone(&xts);
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        match job {
                            Job::Encrypt {
                                idx,
                                sector,
                                mut data,
                            } => {
                                xts.encrypt_run(sector, 512, &mut data);
                                let _ = tx_done.send((idx, data));
                            }
                            Job::Decrypt {
                                idx,
                                sector,
                                mut data,
                            } => {
                                xts.decrypt_run(sector, 512, &mut data);
                                let _ = tx_done.send((idx, data));
                            }
                        }
                    }
                })
            })
            .collect();
        CipherPipeline {
            tx: Some(tx),
            rx_done,
            workers: handles,
        }
    }

    fn run_batch(&self, jobs: Vec<Job>) -> Vec<Vec<u8>> {
        let n = jobs.len();
        let tx = self.tx.as_ref().expect("pipeline running");
        for job in jobs {
            tx.send(job).expect("workers alive");
        }
        let mut out: Vec<Option<Vec<u8>>> = vec![None; n];
        for _ in 0..n {
            let (idx, data) = self.rx_done.recv().expect("workers alive");
            out[idx] = Some(data);
        }
        out.into_iter()
            .map(|d| d.expect("all jobs returned"))
            .collect()
    }

    /// Encrypts a batch of `(first_sector, data)` runs in parallel,
    /// returning results in input order.
    ///
    /// # Panics
    ///
    /// Panics if any run is not a whole number of 512-byte sectors.
    pub fn encrypt_batch(&self, batch: Vec<(u64, Vec<u8>)>) -> Vec<Vec<u8>> {
        self.run_batch(
            batch
                .into_iter()
                .enumerate()
                .map(|(idx, (sector, data))| Job::Encrypt { idx, sector, data })
                .collect(),
        )
    }

    /// Decrypts a batch in parallel, preserving order.
    ///
    /// # Panics
    ///
    /// Panics if any run is not a whole number of 512-byte sectors.
    pub fn decrypt_batch(&self, batch: Vec<(u64, Vec<u8>)>) -> Vec<Vec<u8>> {
        self.run_batch(
            batch
                .into_iter()
                .enumerate()
                .map(|(idx, (sector, data))| Job::Decrypt { idx, sector, data })
                .collect(),
        )
    }

    /// Worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for CipherPipeline {
    fn drop(&mut self) {
        // Close the channel, then join (destructors must not hang).
        self.tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for CipherPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CipherPipeline")
            .field("workers", &self.workers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xts() -> AesXts {
        AesXts::from_master_key(&[0x33; 64])
    }

    #[test]
    fn parallel_encrypt_matches_serial() {
        let pipeline = CipherPipeline::new(xts(), 4);
        assert_eq!(pipeline.workers(), 4);
        let batch: Vec<(u64, Vec<u8>)> = (0..32)
            .map(|i| (i as u64 * 8, vec![i as u8; 4096]))
            .collect();
        let parallel = pipeline.encrypt_batch(batch.clone());
        for (i, (sector, plain)) in batch.iter().enumerate() {
            let mut serial = plain.clone();
            xts().encrypt_run(*sector, 512, &mut serial);
            assert_eq!(parallel[i], serial, "run {i} mismatch");
        }
    }

    #[test]
    fn round_trip_through_pipeline() {
        let pipeline = CipherPipeline::new(xts(), 3);
        let batch: Vec<(u64, Vec<u8>)> = (0..16)
            .map(|i| (i as u64, vec![(i * 7) as u8; 512]))
            .collect();
        let enc = pipeline.encrypt_batch(batch.clone());
        let dec = pipeline.decrypt_batch(batch.iter().map(|(s, _)| *s).zip(enc).collect());
        for (i, (_, plain)) in batch.iter().enumerate() {
            assert_eq!(&dec[i], plain);
        }
    }

    #[test]
    fn order_is_preserved_under_contention() {
        let pipeline = CipherPipeline::new(xts(), 8);
        // Mixed sizes so completion order differs from submission order.
        let batch: Vec<(u64, Vec<u8>)> = (0..64)
            .map(|i| {
                (
                    i as u64,
                    vec![i as u8; if i % 3 == 0 { 64 * 512 } else { 512 }],
                )
            })
            .collect();
        let out = pipeline.encrypt_batch(batch.clone());
        for (i, (sector, plain)) in batch.iter().enumerate() {
            let mut expect = plain.clone();
            xts().encrypt_run(*sector, 512, &mut expect);
            assert_eq!(out[i], expect);
        }
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = CipherPipeline::new(xts(), 0);
    }
}

//! The three tenant-defined middle-box services of the paper's case
//! studies (§V-B), plus a threaded processing pipeline.
//!
//! * [`MonitorService`] — the storage access monitor: classification /
//!   update / analysis over reconstructed file operations, watch lists and
//!   alerts (Case 1; Tables I–III).
//! * [`EncryptionService`] — on-the-fly data encryption: AES-256-XTS per
//!   sector in the active relay (the dm-crypt equivalent) or a seekable
//!   ChaCha20 stream cipher usable even on the passive path (Case 2;
//!   Figures 5, 8, 10, 11).
//! * [`ReplicationService`] — tenant-defined replica dispatch: ordered
//!   write fan-out to backup volumes, striped reads across replicas,
//!   failure detection and removal (Case 3; Figure 13).
//! * [`CipherPipeline`] — a multi-threaded sector-encryption pipeline
//!   (crossbeam workers), the "multi-threaded, high throughput design"
//!   the paper's API section calls for, used where real (non-simulated)
//!   throughput matters.
//!
//! Beyond the paper's three case studies, the data-reduction & caching
//! suite extends the catalogue along ROADMAP item 3:
//!
//! * [`WriteBackCacheService`] — journal-backed write-back block cache:
//!   absorbs write bursts at journal latency, flushes lazily, recovers
//!   crash-consistently ([`recover_journal`]).
//! * [`DedupService`] — content-defined-chunk dedup: Gear rolling-hash
//!   chunking plus a fingerprint index; inspection-only, so the verbatim
//!   zero-copy path survives even when armed.
//! * [`CompressService`] — inline per-extent compression with
//!   skip-if-incompressible and self-validating frames.
//! * [`SnapshotService`] — instant block-level snapshots with
//!   copy-on-first-write, materializable into clones.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
pub mod catalog;
mod compress;
mod dedup;
mod encryption;
mod monitor;
mod pipeline;
mod replication;
mod snapshot;

pub use cache::{recover_journal, CacheConfig, CacheStats, RecoveryReport, WriteBackCacheService};
pub use catalog::{build_service, CatalogError};
pub use compress::{CompressService, CompressStats};
pub use dedup::{DedupService, DedupStats};
pub use encryption::{CipherKind, EncryptionService};
pub use monitor::{MonitorConfig, MonitorService, NumberedAccess};
pub use pipeline::CipherPipeline;
pub use replication::{ReplicationService, ReplicationStats};
pub use snapshot::{SnapStats, SnapshotService};

//! The three tenant-defined middle-box services of the paper's case
//! studies (§V-B), plus a threaded processing pipeline.
//!
//! * [`MonitorService`] — the storage access monitor: classification /
//!   update / analysis over reconstructed file operations, watch lists and
//!   alerts (Case 1; Tables I–III).
//! * [`EncryptionService`] — on-the-fly data encryption: AES-256-XTS per
//!   sector in the active relay (the dm-crypt equivalent) or a seekable
//!   ChaCha20 stream cipher usable even on the passive path (Case 2;
//!   Figures 5, 8, 10, 11).
//! * [`ReplicationService`] — tenant-defined replica dispatch: ordered
//!   write fan-out to backup volumes, striped reads across replicas,
//!   failure detection and removal (Case 3; Figure 13).
//! * [`CipherPipeline`] — a multi-threaded sector-encryption pipeline
//!   (crossbeam workers), the "multi-threaded, high throughput design"
//!   the paper's API section calls for, used where real (non-simulated)
//!   throughput matters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
mod encryption;
mod monitor;
mod pipeline;
mod replication;

pub use catalog::{build_service, CatalogError};
pub use encryption::{CipherKind, EncryptionService};
pub use monitor::{MonitorConfig, MonitorService, NumberedAccess};
pub use pipeline::CipherPipeline;
pub use replication::{ReplicationService, ReplicationStats};

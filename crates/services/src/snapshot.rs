//! Instant block-level snapshots with copy-on-first-write.
//!
//! [`SnapshotService::take_snapshot`] is O(1): it opens a new epoch in a
//! [`CowExtentMap`]. The cost is paid lazily — the first write that
//! touches an extent after a snapshot is *parked*, the extent's
//! pre-image is fetched from the primary volume over the service's
//! replica session, preserved in the map, and only then is the write
//! released toward the target. Later writes to a copied extent pass
//! straight through. Preserved images plus the live volume reconstruct
//! any retained snapshot ([`CowExtentMap::materialize`]) — the
//! backup/clone path exercised by `examples/backup_clone.rs`.
//!
//! While a pre-image fetch is in flight, every subsequent write-path PDU
//! queues behind it so writes reach the target in arrival order; reads
//! may overtake parked writes (legal — those writes are unacknowledged).
//!
//! Deployment: the service must be the *last* in the chain (released
//! PDUs travel straight on to the target) and its middle-box needs one
//! replica target — index 0, pointing at the primary volume itself.
//!
//! With no snapshot taken the service forwards the received PDU value
//! untouched and charges nothing: the zero-copy fast path survives.

use std::collections::BTreeSet;

use bytes::Bytes;

use storm_block::CowExtentMap;
use storm_core::{Dir, StorageService, SvcCtx};
use storm_iscsi::{Cdb, Pdu};
use storm_sim::SimDuration;

/// Replica session index of the primary volume (pre-image reads).
const PRIMARY: usize = 0;

/// Counters for the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapStats {
    /// Snapshots taken.
    pub snapshots: u64,
    /// Copy-on-first-write pre-image fetches completed.
    pub cow_copies: u64,
    /// Pre-image bytes preserved.
    pub preserved_bytes: u64,
    /// Write-path PDUs parked behind a pre-image fetch.
    pub parked_pdus: u64,
    /// Pre-image fetches that failed (extent left unprotected).
    pub failed_copies: u64,
}

/// The snapshot / copy-on-write service.
pub struct SnapshotService {
    cow: CowExtentMap,
    /// Extents whose pre-image fetch is in flight.
    fetching: BTreeSet<u64>,
    /// Extents we gave up protecting after a failed fetch.
    broken: BTreeSet<u64>,
    /// Write-path PDUs queued behind in-flight fetches, arrival order.
    parked: Vec<Pdu>,
    per_byte: SimDuration,
    /// Measurements.
    pub stats: SnapStats,
}

impl SnapshotService {
    /// Creates the service with `extent_sectors`-sector CoW granularity.
    pub fn new(extent_sectors: u64) -> Self {
        SnapshotService {
            cow: CowExtentMap::new(extent_sectors),
            fetching: BTreeSet::new(),
            broken: BTreeSet::new(),
            parked: Vec::new(),
            // Extent-map lookup per sector.
            per_byte: SimDuration::from_nanos(1),
            stats: SnapStats::default(),
        }
    }

    /// Takes an instant snapshot; returns its id. Extents already copied
    /// for an earlier epoch are protected again (first write after this
    /// snapshot re-preserves them).
    pub fn take_snapshot(&mut self) -> u64 {
        self.stats.snapshots += 1;
        self.broken.clear();
        self.cow.take_snapshot()
    }

    /// The copy-on-write extent map (for materializing clones).
    pub fn cow(&self) -> &CowExtentMap {
        &self.cow
    }

    /// Sets the per-byte CPU cost charged while a snapshot is active.
    pub fn set_per_byte_cost(&mut self, cost: SimDuration) {
        self.per_byte = cost;
    }

    /// Whether a snapshot is active (writes may need copying).
    fn active(&self) -> bool {
        self.cow.epoch() > 0
    }

    /// Starts pre-image fetches for every unprotected extent under the
    /// write; returns true when the write must wait for at least one.
    fn fetch_preimages(&mut self, cx: &mut SvcCtx, lba: u64, sectors: u64) -> bool {
        let mut must_wait = false;
        for extent in self.cow.extents_of(lba, sectors) {
            if self.broken.contains(&extent) {
                continue;
            }
            if self.fetching.contains(&extent) {
                must_wait = true;
                continue;
            }
            if self.cow.needs_preserve(extent) {
                must_wait = true;
                self.fetching.insert(extent);
                let es = self.cow.extent_sectors();
                cx.replica_read(PRIMARY, extent * es, es as u32, extent);
            }
        }
        must_wait
    }

    /// Releases parked PDUs in order until one needs a fetch again (or
    /// the queue drains).
    fn drain_parked(&mut self, cx: &mut SvcCtx) {
        while !self.parked.is_empty() {
            let pdu = self.parked.remove(0);
            if let Pdu::ScsiCommand(c) = &pdu {
                if c.write {
                    if let Ok(Cdb::Write { lba, sectors }) = Cdb::parse(&c.cdb) {
                        if self.fetch_preimages(cx, lba, sectors as u64) {
                            self.parked.insert(0, pdu);
                            return;
                        }
                    }
                }
            }
            cx.forward(pdu);
        }
    }
}

impl StorageService for SnapshotService {
    fn name(&self) -> &str {
        "snapshot"
    }

    fn on_pdu(&mut self, cx: &mut SvcCtx, dir: Dir, pdu: Pdu) {
        if dir == Dir::ToInitiator || !self.active() {
            cx.forward(pdu);
            return;
        }
        match pdu {
            Pdu::ScsiCommand(c) if c.write => {
                cx.charge(self.per_byte * c.edtl as u64);
                if !self.parked.is_empty() {
                    // Keep write order behind in-flight fetches.
                    self.stats.parked_pdus += 1;
                    self.parked.push(Pdu::ScsiCommand(c));
                    return;
                }
                if let Ok(Cdb::Write { lba, sectors }) = Cdb::parse(&c.cdb) {
                    if self.fetch_preimages(cx, lba, sectors as u64) {
                        self.stats.parked_pdus += 1;
                        self.parked.push(Pdu::ScsiCommand(c));
                        return;
                    }
                }
                cx.forward(Pdu::ScsiCommand(c));
            }
            Pdu::DataOut(d) => {
                // A Data-Out belongs to the most recent write with its
                // ITT: if that write is parked, its data rides behind it
                // (the command's full extent range is already fetching).
                if self
                    .parked
                    .iter()
                    .any(|p| matches!(p, Pdu::ScsiCommand(c) if c.itt == d.itt))
                {
                    self.stats.parked_pdus += 1;
                    self.parked.push(Pdu::DataOut(d));
                } else {
                    cx.forward(Pdu::DataOut(d));
                }
            }
            other => cx.forward(other),
        }
    }

    fn on_replica_done(
        &mut self,
        cx: &mut SvcCtx,
        _replica: usize,
        ctx: u64,
        ok: bool,
        data: Bytes,
    ) {
        let extent = ctx;
        if !self.fetching.remove(&extent) {
            return;
        }
        if ok {
            self.stats.cow_copies += 1;
            self.stats.preserved_bytes += data.len() as u64;
            // storm-lint: allow(no-hot-path-copy): copy-on-first-write
            // pre-image retention; only runs with a snapshot active.
            self.cow.preserve(extent, data.to_vec());
        } else {
            self.stats.failed_copies += 1;
            self.broken.insert(extent);
            cx.alert(format!(
                "snapshot: pre-image read of extent {extent} failed; extent left unprotected"
            ));
        }
        if self.fetching.is_empty() {
            self.drain_parked(cx);
        }
    }

    fn on_replica_failed(&mut self, cx: &mut SvcCtx, _replica: usize) {
        // Primary session gone: stop blocking the datapath. Every extent
        // still fetching is abandoned and its writes released.
        let stranded: Vec<u64> = self.fetching.iter().copied().collect();
        for extent in stranded {
            self.fetching.remove(&extent);
            self.broken.insert(extent);
            self.stats.failed_copies += 1;
        }
        cx.alert("snapshot: primary replica session failed; suspending copy-on-write");
        self.drain_parked(cx);
    }

    fn per_byte_cost(&self) -> SimDuration {
        if self.active() {
            self.per_byte
        } else {
            SimDuration::ZERO
        }
    }
}

impl std::fmt::Debug for SnapshotService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotService")
            .field("epoch", &self.cow.epoch())
            .field("preserved_extents", &self.cow.preserved_extents())
            .field("parked", &self.parked.len())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_block::{BlockDevice, MemDisk, SECTOR_SIZE};
    use storm_core::service::{ReplicaIo, SvcAction};
    use storm_iscsi::ScsiCommand;
    use storm_sim::SimTime;

    fn write_cmd(itt: u32, lba: u64, data: Vec<u8>) -> Pdu {
        let sectors = (data.len() / 512) as u32;
        Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: false,
            write: true,
            lun: 0,
            itt,
            edtl: data.len() as u32,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: Cdb::Write { lba, sectors }.to_bytes(),
            data: Bytes::from(data),
        })
    }

    fn read_cmd(itt: u32, lba: u64, sectors: u32) -> Pdu {
        Pdu::ScsiCommand(ScsiCommand {
            immediate: false,
            final_pdu: true,
            read: true,
            write: false,
            lun: 0,
            itt,
            edtl: sectors * 512,
            cmd_sn: 1,
            exp_stat_sn: 1,
            cdb: Cdb::Read { lba, sectors }.to_bytes(),
            data: Bytes::new(),
        })
    }

    fn actions(svc: &mut SnapshotService, dir: Dir, pdu: Pdu) -> Vec<SvcAction> {
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_pdu(&mut cx, dir, pdu);
        cx.take_actions()
    }

    /// Runs the service against a MemDisk-backed "primary", serving its
    /// replica reads and applying released writes to the disk.
    fn pump(svc: &mut SnapshotService, disk: &mut MemDisk, acts: Vec<SvcAction>) {
        let mut queue = acts;
        while !queue.is_empty() {
            let mut next = SvcCtx::new(SimTime::ZERO);
            for act in queue {
                match act {
                    SvcAction::Replica {
                        io: ReplicaIo::Read { lba, sectors },
                        ctx,
                        ..
                    } => {
                        let mut buf = vec![0u8; sectors as usize * 512];
                        disk.read(lba, &mut buf).unwrap();
                        svc.on_replica_done(&mut next, 0, ctx, true, Bytes::from(buf));
                    }
                    SvcAction::Forward(Pdu::ScsiCommand(c)) if c.write => {
                        if let Ok(Cdb::Write { lba, .. }) = Cdb::parse(&c.cdb) {
                            disk.write(lba, &c.data).unwrap();
                        }
                    }
                    _ => {}
                }
            }
            queue = next.take_actions();
        }
    }

    #[test]
    fn without_snapshot_everything_forwards_verbatim() {
        let mut svc = SnapshotService::new(8);
        let pdu = write_cmd(1, 0, vec![1u8; 4096]);
        let acts = actions(&mut svc, Dir::ToTarget, pdu.clone());
        assert!(matches!(&acts[..], [SvcAction::Forward(p)] if *p == pdu));
        assert_eq!(svc.per_byte_cost(), SimDuration::ZERO);
        assert_eq!(svc.stats, SnapStats::default());
    }

    #[test]
    fn first_write_after_snapshot_parks_and_preserves() {
        let mut svc = SnapshotService::new(8);
        let snap = svc.take_snapshot();
        let pdu = write_cmd(1, 0, vec![0xEE; 4096]);
        let acts = actions(&mut svc, Dir::ToTarget, pdu.clone());
        // The write is held; a pre-image read goes to the primary.
        assert!(!acts.iter().any(|a| matches!(a, SvcAction::Forward(_))));
        let ctx = acts
            .iter()
            .find_map(|a| match a {
                SvcAction::Replica {
                    io: ReplicaIo::Read { lba: 0, .. },
                    ctx,
                    ..
                } => Some(*ctx),
                _ => None,
            })
            .expect("pre-image fetch issued");
        // Completion preserves the old bytes and releases the write.
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_replica_done(&mut cx, 0, ctx, true, Bytes::from(vec![0xAA; 8 * 512]));
        let acts = cx.take_actions();
        assert!(
            acts.iter()
                .any(|a| matches!(a, SvcAction::Forward(p) if *p == pdu)),
            "parked write released: {acts:?}"
        );
        assert_eq!(svc.cow().image_at(snap, 0).unwrap()[0], 0xAA);
        assert_eq!(svc.stats.cow_copies, 1);
    }

    #[test]
    fn second_write_to_copied_extent_passes_through() {
        let mut svc = SnapshotService::new(8);
        svc.take_snapshot();
        let mut disk = MemDisk::with_capacity_bytes(1 << 20);
        let acts = actions(&mut svc, Dir::ToTarget, write_cmd(1, 0, vec![1u8; 4096]));
        pump(&mut svc, &mut disk, acts);
        // Same extent again: released immediately, no fetch.
        let acts = actions(&mut svc, Dir::ToTarget, write_cmd(2, 0, vec![2u8; 4096]));
        assert!(matches!(
            &acts[..],
            [SvcAction::Charge(_), SvcAction::Forward(_)]
        ));
    }

    #[test]
    fn writes_stay_ordered_behind_a_fetch_and_reads_overtake() {
        let mut svc = SnapshotService::new(8);
        svc.take_snapshot();
        let w1 = write_cmd(1, 0, vec![1u8; 512]);
        let w2 = write_cmd(2, 64, vec![2u8; 512]);
        let acts1 = actions(&mut svc, Dir::ToTarget, w1.clone());
        let ctx1 = acts1
            .iter()
            .find_map(|a| match a {
                SvcAction::Replica { ctx, .. } => Some(*ctx),
                _ => None,
            })
            .expect("fetch for w1");
        // w2 targets a different extent but must still queue behind w1.
        let acts2 = actions(&mut svc, Dir::ToTarget, w2.clone());
        assert!(!acts2.iter().any(|a| matches!(a, SvcAction::Forward(_))));
        // A read overtakes the parked writes.
        let r = read_cmd(3, 0, 1);
        let acts3 = actions(&mut svc, Dir::ToTarget, r.clone());
        assert!(matches!(&acts3[..], [SvcAction::Forward(p)] if *p == r));
        // w1's fetch completes: w1 released, then w2 needs its own fetch.
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_replica_done(&mut cx, 0, ctx1, true, Bytes::from(vec![0u8; 8 * 512]));
        let acts = cx.take_actions();
        assert!(acts
            .iter()
            .any(|a| matches!(a, SvcAction::Forward(p) if *p == w1)));
        let ctx2 = acts
            .iter()
            .find_map(|a| match a {
                SvcAction::Replica { ctx, .. } => Some(*ctx),
                _ => None,
            })
            .expect("fetch for w2's extent");
        assert!(!acts
            .iter()
            .any(|a| matches!(a, SvcAction::Forward(p) if *p == w2)));
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_replica_done(&mut cx, 0, ctx2, true, Bytes::from(vec![0u8; 8 * 512]));
        let acts = cx.take_actions();
        assert!(acts
            .iter()
            .any(|a| matches!(a, SvcAction::Forward(p) if *p == w2)));
    }

    #[test]
    fn snapshot_materializes_pre_divergence_image() {
        let mut svc = SnapshotService::new(8);
        let mut disk = MemDisk::with_capacity_bytes(32 * SECTOR_SIZE as u64);
        disk.write(0, &vec![0xAB; 8 * SECTOR_SIZE]).unwrap();
        disk.write(8, &vec![0xCD; 8 * SECTOR_SIZE]).unwrap();
        let snap = svc.take_snapshot();
        // Diverge: overwrite the first extent through the service.
        let acts = actions(&mut svc, Dir::ToTarget, write_cmd(1, 0, vec![0x11; 4096]));
        pump(&mut svc, &mut disk, acts);
        let mut buf = [0u8; SECTOR_SIZE];
        disk.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0x11, "live volume diverged");
        // The clone sees the snapshot-time bytes.
        let mut clone = MemDisk::with_capacity_bytes(32 * SECTOR_SIZE as u64);
        svc.cow().materialize(snap, &mut disk, &mut clone).unwrap();
        clone.read(0, &mut buf).unwrap();
        assert_eq!(buf[0], 0xAB);
        clone.read(8, &mut buf).unwrap();
        assert_eq!(buf[0], 0xCD);
    }

    #[test]
    fn failed_fetch_releases_writes_and_alerts() {
        let mut svc = SnapshotService::new(8);
        svc.take_snapshot();
        let w = write_cmd(1, 0, vec![1u8; 512]);
        let acts = actions(&mut svc, Dir::ToTarget, w.clone());
        let ctx = acts
            .iter()
            .find_map(|a| match a {
                SvcAction::Replica { ctx, .. } => Some(*ctx),
                _ => None,
            })
            .expect("fetch issued");
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_replica_done(&mut cx, 0, ctx, false, Bytes::new());
        let acts = cx.take_actions();
        assert!(acts.iter().any(|a| matches!(a, SvcAction::Alert(_))));
        assert!(acts
            .iter()
            .any(|a| matches!(a, SvcAction::Forward(p) if *p == w)));
        assert_eq!(svc.stats.failed_copies, 1);
        // The broken extent no longer blocks writes.
        let acts = actions(&mut svc, Dir::ToTarget, write_cmd(2, 0, vec![2u8; 512]));
        assert!(acts.iter().any(|a| matches!(a, SvcAction::Forward(_))));
    }
}

//! Inline per-extent compression on the active relay.
//!
//! Write payloads are compressed extent by extent (4 KiB by default) with
//! a small LZ77-style codec and re-framed *at the same size*: a frame is
//! `[16-byte header | compressed bytes | zero pad]`, so the backing
//! volume's sector layout never changes and reads stay trivially
//! addressable. The win is accounted, not physical — `stored_bytes`
//! tracks what a thin-provisioned backing store would actually persist.
//! Extents that do not shrink are stored raw untouched
//! (skip-if-incompressible), and the read path distinguishes frames from
//! raw data by validating the header magic, lengths and payload checksum
//! before decompressing.
//!
//! The transform only engages for extent-aligned payloads (offset and
//! length both multiples of the extent size) — anything else passes
//! through raw, and mixed raw/framed extents decode correctly because
//! raw extents fail header validation. Sub-extent writes into a framed
//! extent are not supported (the tenant policy pins the extent size to
//! the workload block size).

use bytes::{Bytes, BytesMut};

use storm_core::{Dir, StorageService, SvcCtx};
use storm_iscsi::Pdu;
use storm_sim::SimDuration;

/// Frame header magic ("SCZ1").
const MAGIC: u32 = 0x5343_5A31;
/// Frame header size in bytes.
const HEADER: usize = 16;

/// Counters for the experiment harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompressStats {
    /// Payload bytes that entered the write-side transform.
    pub logical_bytes: u64,
    /// Bytes a thin store would persist (frame header + compressed
    /// payload for framed extents, the full extent for skipped ones).
    pub stored_bytes: u64,
    /// Extents compressed into frames.
    pub compressed_extents: u64,
    /// Extents stored raw because compression did not shrink them.
    pub skipped_extents: u64,
    /// Extents decompressed on the read path.
    pub decompressed_extents: u64,
}

impl CompressStats {
    /// Logical over stored bytes — the space-saving ratio.
    pub fn reduction_ratio(&self) -> f64 {
        if self.stored_bytes == 0 {
            return 1.0;
        }
        self.logical_bytes as f64 / self.stored_bytes as f64
    }
}

/// The inline compression service.
pub struct CompressService {
    armed: bool,
    extent: usize,
    per_byte: SimDuration,
    /// Measurements.
    pub stats: CompressStats,
}

impl CompressService {
    /// Creates the service with `extent`-byte compression granularity
    /// (rounded up to at least 512; use the workload's block size).
    pub fn new(extent: usize) -> Self {
        CompressService {
            armed: true,
            extent: extent.max(512),
            // ~500 MB/s single-core LZ.
            per_byte: SimDuration::from_nanos(2),
            stats: CompressStats::default(),
        }
    }

    /// Installs the service disabled: PDUs pass through untouched until
    /// [`CompressService::arm`].
    pub fn disarmed(extent: usize) -> Self {
        let mut s = Self::new(extent);
        s.armed = false;
        s
    }

    /// Enables or disables the transform.
    pub fn arm(&mut self, armed: bool) {
        self.armed = armed;
    }

    /// Sets the per-byte CPU cost charged for (de)compression.
    pub fn set_per_byte_cost(&mut self, cost: SimDuration) {
        self.per_byte = cost;
    }

    /// Compresses aligned write payload extents into same-size frames.
    /// Returns `None` when the payload is left untouched (unaligned, or
    /// every extent skipped) so the caller can forward the original.
    fn encode_payload(&mut self, offset: usize, data: &Bytes) -> Option<Bytes> {
        if data.is_empty()
            || !offset.is_multiple_of(self.extent)
            || !data.len().is_multiple_of(self.extent)
        {
            return None;
        }
        let mut out = BytesMut::with_capacity(data.len());
        let mut any = false;
        for ext in data.chunks(self.extent) {
            self.stats.logical_bytes += ext.len() as u64;
            match lz_compress(ext, ext.len() - HEADER - 1) {
                Some(comp) => {
                    self.stats.compressed_extents += 1;
                    self.stats.stored_bytes += (HEADER + comp.len()) as u64;
                    let mut hdr = [0u8; HEADER];
                    put_field(&mut hdr, 0, &MAGIC.to_le_bytes());
                    put_field(&mut hdr, 4, &(comp.len() as u32).to_le_bytes());
                    put_field(&mut hdr, 8, &(ext.len() as u32).to_le_bytes());
                    put_field(&mut hdr, 12, &fnv32(&comp).to_le_bytes());
                    // storm-lint: allow(no-hot-path-copy): armed transform
                    // path; the idle service never reaches this function.
                    out.extend_from_slice(&hdr);
                    // storm-lint: allow(no-hot-path-copy): armed transform
                    // path, compressed extent body.
                    out.extend_from_slice(&comp);
                    // storm-lint: allow(no-hot-path-copy): armed transform
                    // path, zero padding to keep extents frame-aligned.
                    out.extend_from_slice(&vec![0u8; ext.len() - HEADER - comp.len()]);
                    any = true;
                }
                None => {
                    self.stats.skipped_extents += 1;
                    self.stats.stored_bytes += ext.len() as u64;
                    // storm-lint: allow(no-hot-path-copy): armed transform
                    // path, incompressible extent stored raw.
                    out.extend_from_slice(ext);
                }
            }
        }
        if any {
            Some(out.freeze())
        } else {
            None
        }
    }

    /// Decompresses framed extents in a read payload. Returns `None`
    /// when no extent held a valid frame (forward the original).
    fn decode_payload(&mut self, offset: usize, data: &Bytes) -> Option<Bytes> {
        if data.is_empty()
            || !offset.is_multiple_of(self.extent)
            || !data.len().is_multiple_of(self.extent)
        {
            return None;
        }
        if !data
            .chunks(self.extent)
            .any(|ext| frame_payload(ext).is_some())
        {
            // Pure raw payload: keep the original Bytes (zero-copy).
            return None;
        }
        let mut out = BytesMut::with_capacity(data.len());
        for ext in data.chunks(self.extent) {
            match frame_payload(ext).and_then(|comp| lz_decompress(comp, ext.len())) {
                Some(orig) => {
                    self.stats.decompressed_extents += 1;
                    // storm-lint: allow(no-hot-path-copy): armed read-side
                    // transform reassembling decompressed extents.
                    out.extend_from_slice(&orig);
                }
                // storm-lint: allow(no-hot-path-copy): raw extent copied
                // only because a framed sibling forced reassembly.
                None => out.extend_from_slice(ext),
            }
        }
        Some(out.freeze())
    }
}

/// Validates a frame header; returns the compressed payload slice.
fn frame_payload(ext: &[u8]) -> Option<&[u8]> {
    if ext.len() < HEADER + 1 {
        return None;
    }
    let word = |o: usize| u32::from_le_bytes([ext[o], ext[o + 1], ext[o + 2], ext[o + 3]]);
    if word(0) != MAGIC {
        return None;
    }
    let comp_len = word(4) as usize;
    let orig_len = word(8) as usize;
    if orig_len != ext.len() || comp_len == 0 || comp_len > ext.len() - HEADER - 1 {
        return None;
    }
    let comp = &ext[HEADER..HEADER + comp_len];
    if fnv32(comp) != word(12) {
        return None;
    }
    Some(comp)
}

/// Encodes one little-endian metadata field into a frame header.
fn put_field(buf: &mut [u8], at: usize, field: &[u8]) {
    // storm-lint: allow(no-hot-path-copy): fixed-size frame-header field
    // encoding (metadata, not payload), armed paths only.
    buf[at..at + field.len()].copy_from_slice(field);
}

/// FNV-1a over a byte slice (frame payload checksum).
fn fnv32(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h = (h ^ b as u32).wrapping_mul(0x0100_0193);
    }
    h
}

/// Greedy LZ77 with a 4-byte match hash; emits `None` when the output
/// would not fit in `budget` bytes (skip-if-incompressible).
///
/// Token stream: a control byte `t < 0x80` is a literal run of `t + 1`
/// bytes; `t >= 0x80` is a match of length `(t & 0x7f) + 4` at a 16-bit
/// little-endian back-distance that follows.
fn lz_compress(input: &[u8], budget: usize) -> Option<Vec<u8>> {
    const TABLE: usize = 1 << 12;
    let mut out = Vec::with_capacity(budget.min(input.len()));
    let mut table = [0usize; TABLE];
    let mut seen = [false; TABLE];
    let hash = |w: &[u8]| {
        (u32::from_le_bytes([w[0], w[1], w[2], w[3]]).wrapping_mul(0x9E37_79B1) >> 20) as usize
            % TABLE
    };
    let mut lit_start = 0;
    let mut i = 0;
    let flush_literals = |out: &mut Vec<u8>, from: usize, to: usize| {
        let mut s = from;
        while s < to {
            let run = (to - s).min(128);
            out.push((run - 1) as u8);
            // storm-lint: allow(no-hot-path-copy): codec-internal
            // literal-run emit, armed transform path only.
            out.extend_from_slice(&input[s..s + run]);
            s += run;
        }
    };
    while i + 4 <= input.len() {
        let h = hash(&input[i..i + 4]);
        let cand = table[h];
        let mut matched = 0;
        if seen[h] && cand < i && i - cand <= u16::MAX as usize {
            let max_len = (input.len() - i).min(131);
            while matched < max_len && input[cand + matched] == input[i + matched] {
                matched += 1;
            }
        }
        table[h] = i;
        seen[h] = true;
        if matched >= 4 {
            flush_literals(&mut out, lit_start, i);
            out.push(0x80 | (matched - 4) as u8);
            // storm-lint: allow(no-hot-path-copy): two-byte match
            // distance token, codec-internal.
            out.extend_from_slice(&((i - cand) as u16).to_le_bytes());
            i += matched;
            lit_start = i;
        } else {
            i += 1;
        }
        if out.len() + (input.len() - lit_start) / 128 + (input.len() - lit_start) > budget + 64 {
            // Even ignoring future matches the stream is hopeless.
            return None;
        }
    }
    flush_literals(&mut out, lit_start, input.len());
    if out.len() <= budget {
        Some(out)
    } else {
        None
    }
}

/// Inverse of [`lz_compress`]; `None` on a malformed stream or when the
/// output does not decode to exactly `expected` bytes.
fn lz_decompress(mut comp: &[u8], expected: usize) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(expected);
    while let Some((&t, rest)) = comp.split_first() {
        comp = rest;
        if t < 0x80 {
            let run = t as usize + 1;
            if comp.len() < run || out.len() + run > expected {
                return None;
            }
            // storm-lint: allow(no-hot-path-copy): codec-internal
            // literal-run replay, armed transform path only.
            out.extend_from_slice(&comp[..run]);
            comp = &comp[run..];
        } else {
            let len = (t & 0x7f) as usize + 4;
            if comp.len() < 2 {
                return None;
            }
            let dist = u16::from_le_bytes([comp[0], comp[1]]) as usize;
            comp = &comp[2..];
            if dist == 0 || dist > out.len() || out.len() + len > expected {
                return None;
            }
            // Byte-by-byte so overlapping matches (RLE-style) replay.
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        }
    }
    if out.len() == expected {
        Some(out)
    } else {
        None
    }
}

impl StorageService for CompressService {
    fn name(&self) -> &str {
        "compress"
    }

    fn on_pdu(&mut self, cx: &mut SvcCtx, dir: Dir, pdu: Pdu) {
        if !self.armed {
            cx.forward(pdu);
            return;
        }
        match (dir, pdu) {
            (Dir::ToTarget, Pdu::ScsiCommand(mut c)) if c.write && !c.data.is_empty() => {
                cx.charge(self.per_byte * c.data.len() as u64);
                if let Some(framed) = self.encode_payload(0, &c.data) {
                    c.data = framed;
                }
                cx.forward(Pdu::ScsiCommand(c));
            }
            (Dir::ToTarget, Pdu::DataOut(mut d)) => {
                cx.charge(self.per_byte * d.data.len() as u64);
                if let Some(framed) = self.encode_payload(d.buffer_offset as usize, &d.data) {
                    d.data = framed;
                }
                cx.forward(Pdu::DataOut(d));
            }
            (Dir::ToInitiator, Pdu::DataIn(mut d)) => {
                cx.charge(self.per_byte * d.data.len() as u64);
                if let Some(plain) = self.decode_payload(d.buffer_offset as usize, &d.data) {
                    d.data = plain;
                }
                cx.forward(Pdu::DataIn(d));
            }
            (_, other) => cx.forward(other),
        }
    }

    fn per_byte_cost(&self) -> SimDuration {
        if self.armed {
            self.per_byte
        } else {
            SimDuration::ZERO
        }
    }
}

impl std::fmt::Debug for CompressService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompressService")
            .field("armed", &self.armed)
            .field("extent", &self.extent)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use storm_core::service::SvcAction;
    use storm_iscsi::{DataIn, DataOut, ScsiStatus};
    use storm_sim::{SimRng, SimTime};

    fn compressible(len: usize) -> Vec<u8> {
        (0..len).map(|i| ((i / 64) % 7) as u8).collect()
    }

    fn incompressible(len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        SimRng::seed_from_u64(0xC0FFEE).fill(&mut v);
        v
    }

    #[test]
    fn lz_roundtrips() {
        for data in [
            compressible(4096),
            vec![0u8; 4096],
            (0..255u8).cycle().take(4096).collect(),
        ] {
            let comp = lz_compress(&data, data.len() - HEADER - 1).expect("compresses");
            assert!(comp.len() < data.len());
            assert_eq!(lz_decompress(&comp, data.len()).expect("decodes"), data);
        }
    }

    #[test]
    fn incompressible_input_is_skipped() {
        assert!(lz_compress(&incompressible(4096), 4096 - HEADER - 1).is_none());
    }

    fn run(svc: &mut CompressService, dir: Dir, pdu: Pdu) -> Pdu {
        let mut cx = SvcCtx::new(SimTime::ZERO);
        svc.on_pdu(&mut cx, dir, pdu);
        let fwd = cx.take_actions().into_iter().find_map(|a| match a {
            SvcAction::Forward(p) => Some(p),
            _ => None,
        });
        fwd.expect("forwarded")
    }

    fn data_out(offset: u32, data: Vec<u8>) -> Pdu {
        Pdu::DataOut(DataOut {
            final_pdu: true,
            lun: 0,
            itt: 1,
            ttt: 0xFFFF_FFFF,
            exp_stat_sn: 0,
            data_sn: 0,
            buffer_offset: offset,
            data: Bytes::from(data),
        })
    }

    fn data_in(offset: u32, data: Bytes) -> Pdu {
        Pdu::DataIn(DataIn {
            final_pdu: true,
            status_present: true,
            status: ScsiStatus::Good,
            lun: 0,
            itt: 1,
            ttt: 0xFFFF_FFFF,
            stat_sn: 0,
            exp_cmd_sn: 0,
            max_cmd_sn: 0,
            data_sn: 0,
            buffer_offset: offset,
            residual: 0,
            data,
        })
    }

    #[test]
    fn write_read_roundtrip_through_frames() {
        let mut svc = CompressService::new(4096);
        let plain = compressible(8192);
        let framed = match run(&mut svc, Dir::ToTarget, data_out(0, plain.clone())) {
            Pdu::DataOut(d) => d.data,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(framed.len(), plain.len(), "frames keep the stored size");
        assert_ne!(&framed[..], &plain[..]);
        assert_eq!(svc.stats.compressed_extents, 2);
        assert!(svc.stats.reduction_ratio() > 1.5, "{:?}", svc.stats);
        // Read path: the framed bytes come back from the target.
        let decoded = match run(&mut svc, Dir::ToInitiator, data_in(0, framed)) {
            Pdu::DataIn(d) => d.data,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(&decoded[..], &plain[..]);
        assert_eq!(svc.stats.decompressed_extents, 2);
    }

    #[test]
    fn incompressible_extents_pass_raw_and_decode_raw() {
        let mut svc = CompressService::new(4096);
        let noise = incompressible(4096);
        let stored = match run(&mut svc, Dir::ToTarget, data_out(0, noise.clone())) {
            Pdu::DataOut(d) => d.data,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(&stored[..], &noise[..], "skipped extent stored verbatim");
        assert_eq!(svc.stats.skipped_extents, 1);
        // Raw bytes fail frame validation and pass through unchanged —
        // and without a framed sibling the original Bytes is forwarded.
        let back = match run(&mut svc, Dir::ToInitiator, data_in(0, stored.clone())) {
            Pdu::DataIn(d) => d.data,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(&back[..], &noise[..]);
        assert_eq!(svc.stats.decompressed_extents, 0);
    }

    #[test]
    fn unaligned_payloads_are_left_alone() {
        let mut svc = CompressService::new(4096);
        let plain = compressible(512);
        let out = match run(&mut svc, Dir::ToTarget, data_out(0, plain.clone())) {
            Pdu::DataOut(d) => d.data,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(&out[..], &plain[..]);
        let out = match run(&mut svc, Dir::ToTarget, data_out(1024, compressible(4096))) {
            Pdu::DataOut(d) => d.data,
            other => panic!("unexpected {other:?}"),
        };
        assert_eq!(out.len(), 4096);
        assert_eq!(svc.stats.compressed_extents, 0);
    }

    #[test]
    fn disarmed_service_forwards_the_same_pdu_value() {
        let mut svc = CompressService::disarmed(4096);
        let pdu = data_out(0, compressible(4096));
        let out = run(&mut svc, Dir::ToTarget, pdu.clone());
        assert_eq!(out, pdu);
        assert_eq!(svc.stats, CompressStats::default());
    }
}

//! NVMe-oF-style multi-queue block transport for StorM.
//!
//! The paper's deployment speaks iSCSI, whose command model is one
//! in-order conversation per connection: at 64 KiB and queue depth 1 the
//! relay tax dominates (Figure 5). FlexBSO-style offload stacks instead
//! expose paired submission/completion rings — the host batches 64-byte
//! submission queue entries and rings a doorbell once per batch, the
//! device coalesces completions behind an interrupt-moderation timer.
//! This crate models that protocol over the simulator's TCP fabric,
//! behind the same [`Transport`]/[`TargetTransport`] traits the iSCSI
//! stack implements, proving StorM's interception API is wire-protocol
//! agnostic and opening offload-vs-relay benchmarks.
//!
//! Wire format (all integers big-endian, like iSCSI):
//!
//! * every frame starts with a 16-byte header: magic `0xB5`, frame type,
//!   entry count, payload length, advertised queue depth;
//! * `DOORBELL` frames carry `count` 64-byte SQEs followed by their
//!   in-capsule write data segments in SQE order — one doorbell write
//!   flushes a whole batch of commands in one frame;
//! * `COMPLETION` frames carry `count` 16-byte CQEs followed by read
//!   payloads in CQE order — the target holds completions until
//!   [`NvmeqTargetConn::flush_cq`] (batch full or moderation deadline);
//! * `CONNECT`/`CONNECT_ACK` bind the connection to a volume by IQN,
//!   reusing the iSCSI `key=value\0` text idiom so connection
//!   attribution works unchanged.
//!
//! Everything is sans-io and allocation-shy: payloads ride as refcounted
//! [`bytes::Bytes`] views end to end (the [`FrameStream`] reassembler
//! re-joins TCP segments of one allocation for free, exactly like the
//! iSCSI `PduStream`), so the relay's zero-copy invariant holds on this
//! transport too.
//!
//! [`Transport`]: storm_iscsi::Transport
//! [`TargetTransport`]: storm_iscsi::TargetTransport

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod initiator;
mod stream;
mod target;

pub use codec::{
    encode_connect_payload, scan_connect_payload, Cqe, FrameHeader, FrameKind, NvmeqError, Sqe,
    SqeOp, CQE_LEN, FRAME_HDR_LEN, MAGIC, MAX_PAYLOAD, SQE_LEN,
};
pub use initiator::{NvmeqConfig, NvmeqInitiator};
pub use stream::{FrameStream, FrameWire, UnitEntry, UnitWire};
pub use target::{NvmeqTargetConfig, NvmeqTargetConn};

/// The IANA-assigned NVMe-oF port (the fabric also accepts nvmeq frames
/// on the iSCSI portal — sessions are sniffed by magic byte, so steering
/// rules written for one portal cover both protocols).
pub const NVMEQ_PORT: u16 = 4420;

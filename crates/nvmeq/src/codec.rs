//! Wire codec: frame headers, submission queue entries, completion
//! queue entries.
//!
//! Layouts (all integers big-endian):
//!
//! ```text
//! frame header (16 B): [0] magic 0xB5   [1] frame type   [2..4]  count
//!                      [4..8] payload_len                [8..10] queue_depth
//!                      [10..16] reserved (zero)
//! SQE (64 B):          [0] opcode       [4..8] cid       [8..16] lba
//!                      [16..20] sectors [20..24] data_len  rest reserved
//! CQE (16 B):          [0..4] cid       [4] status       [5] opcode echo
//!                      [8..12] data_len                  rest reserved
//! ```

use std::fmt;

use storm_iscsi::ScsiStatus;

/// First byte of every frame; iSCSI's first login byte is `0x43`, so one
/// peek at a new connection's first byte identifies the protocol.
pub const MAGIC: u8 = 0xB5;
/// Frame header length.
pub const FRAME_HDR_LEN: usize = 16;
/// Submission queue entry length (NVMe's command size).
pub const SQE_LEN: usize = 64;
/// Completion queue entry length (NVMe's CQE size).
pub const CQE_LEN: usize = 16;
/// Upper bound on a frame's payload; anything larger is a desynced or
/// hostile stream, rejected before the reassembler buffers it.
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Host → target: bind the connection to a volume (`count` = 0,
    /// payload = `key=value\0` text; `queue_depth` advertises the ring
    /// size).
    Connect,
    /// Target → host: connect verdict (16-byte payload: status byte,
    /// volume size in sectors).
    ConnectAck,
    /// Host → target: a doorbell write flushing `count` SQEs plus their
    /// in-capsule write data, in order.
    Doorbell,
    /// Target → host: `count` coalesced CQEs plus read payloads, in
    /// order.
    Completion,
    /// Host → target: clean shutdown request.
    Disconnect,
    /// Target → host: shutdown acknowledged.
    DisconnectAck,
}

impl FrameKind {
    fn to_byte(self) -> u8 {
        match self {
            FrameKind::Connect => 1,
            FrameKind::ConnectAck => 2,
            FrameKind::Doorbell => 3,
            FrameKind::Completion => 4,
            FrameKind::Disconnect => 5,
            FrameKind::DisconnectAck => 6,
        }
    }

    fn from_byte(b: u8) -> Result<FrameKind, NvmeqError> {
        Ok(match b {
            1 => FrameKind::Connect,
            2 => FrameKind::ConnectAck,
            3 => FrameKind::Doorbell,
            4 => FrameKind::Completion,
            5 => FrameKind::Disconnect,
            6 => FrameKind::DisconnectAck,
            other => return Err(NvmeqError::UnknownFrameType(other)),
        })
    }
}

/// Codec failure. Any of these means the stream is unusable and the
/// connection must drop — same contract as `storm_iscsi::PduError`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeqError {
    /// First byte of a frame wasn't [`MAGIC`].
    BadMagic(u8),
    /// Unassigned frame-type byte.
    UnknownFrameType(u8),
    /// Unassigned SQE opcode byte.
    UnknownOpcode(u8),
    /// An entry or payload was shorter than its header promised.
    Truncated,
    /// Declared payload exceeds [`MAX_PAYLOAD`] or can't hold `count`
    /// entries.
    Oversized {
        /// The declared payload length.
        payload_len: u32,
    },
    /// Internal bookkeeping no longer matches buffered bytes.
    Desync,
}

impl fmt::Display for NvmeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmeqError::BadMagic(b) => write!(f, "bad frame magic {b:#04x}"),
            NvmeqError::UnknownFrameType(b) => write!(f, "unknown frame type {b}"),
            NvmeqError::UnknownOpcode(b) => write!(f, "unknown SQE opcode {b}"),
            NvmeqError::Truncated => write!(f, "truncated entry"),
            NvmeqError::Oversized { payload_len } => {
                write!(f, "implausible payload length {payload_len}")
            }
            NvmeqError::Desync => write!(f, "stream desync"),
        }
    }
}

impl std::error::Error for NvmeqError {}

/// A decoded frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the frame carries.
    pub kind: FrameKind,
    /// Number of fixed-size entries in the payload (SQEs or CQEs; zero
    /// for handshake frames).
    pub count: u16,
    /// Payload bytes following the header.
    pub payload_len: u32,
    /// On `Connect`/`ConnectAck`: the ring size each side offers. Zero
    /// elsewhere.
    pub queue_depth: u16,
}

impl FrameHeader {
    /// Serializes the header.
    pub fn encode(&self) -> [u8; FRAME_HDR_LEN] {
        let mut b = [0u8; FRAME_HDR_LEN];
        b[0] = MAGIC;
        b[1] = self.kind.to_byte();
        b[2..4].copy_from_slice(&self.count.to_be_bytes());
        b[4..8].copy_from_slice(&self.payload_len.to_be_bytes());
        b[8..10].copy_from_slice(&self.queue_depth.to_be_bytes());
        b
    }

    /// Decodes and sanity-checks a header.
    ///
    /// # Errors
    ///
    /// [`NvmeqError::BadMagic`], [`NvmeqError::UnknownFrameType`], or
    /// [`NvmeqError::Oversized`] when the declared payload exceeds
    /// [`MAX_PAYLOAD`] or is too small for `count` entries of the frame's
    /// entry size.
    pub fn decode(b: &[u8; FRAME_HDR_LEN]) -> Result<FrameHeader, NvmeqError> {
        if b[0] != MAGIC {
            return Err(NvmeqError::BadMagic(b[0]));
        }
        let kind = FrameKind::from_byte(b[1])?;
        let count = u16::from_be_bytes([b[2], b[3]]);
        let payload_len = u32::from_be_bytes([b[4], b[5], b[6], b[7]]);
        let queue_depth = u16::from_be_bytes([b[8], b[9]]);
        if payload_len > MAX_PAYLOAD {
            return Err(NvmeqError::Oversized { payload_len });
        }
        let entry_len = match kind {
            FrameKind::Doorbell => SQE_LEN,
            FrameKind::Completion => CQE_LEN,
            _ => 0,
        };
        if (count as usize) * entry_len > payload_len as usize {
            return Err(NvmeqError::Oversized { payload_len });
        }
        Ok(FrameHeader {
            kind,
            count,
            payload_len,
            queue_depth,
        })
    }
}

/// SQE opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqeOp {
    /// Read `sectors` sectors at `lba`.
    Read,
    /// Write `data_len` in-capsule bytes at `lba`.
    Write,
    /// Flush/barrier.
    Flush,
}

impl SqeOp {
    fn to_byte(self) -> u8 {
        match self {
            SqeOp::Read => 1,
            SqeOp::Write => 2,
            SqeOp::Flush => 3,
        }
    }

    fn from_byte(b: u8) -> Result<SqeOp, NvmeqError> {
        Ok(match b {
            1 => SqeOp::Read,
            2 => SqeOp::Write,
            3 => SqeOp::Flush,
            other => return Err(NvmeqError::UnknownOpcode(other)),
        })
    }
}

/// A 64-byte submission queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sqe {
    /// The command.
    pub op: SqeOp,
    /// Command identifier, echoed in the CQE; unique among in-flight
    /// commands on this queue.
    pub cid: u32,
    /// First sector.
    pub lba: u64,
    /// Sector count (reads; zero for flush).
    pub sectors: u32,
    /// In-capsule data bytes following this doorbell's SQE block
    /// (writes; zero otherwise).
    pub data_len: u32,
}

impl Sqe {
    /// Serializes the entry.
    pub fn encode(&self) -> [u8; SQE_LEN] {
        let mut b = [0u8; SQE_LEN];
        b[0] = self.op.to_byte();
        b[4..8].copy_from_slice(&self.cid.to_be_bytes());
        b[8..16].copy_from_slice(&self.lba.to_be_bytes());
        b[16..20].copy_from_slice(&self.sectors.to_be_bytes());
        b[20..24].copy_from_slice(&self.data_len.to_be_bytes());
        b
    }

    /// Decodes one entry from the front of `b`.
    ///
    /// # Errors
    ///
    /// [`NvmeqError::Truncated`] below [`SQE_LEN`] bytes,
    /// [`NvmeqError::UnknownOpcode`] for an unassigned opcode.
    pub fn decode(b: &[u8]) -> Result<Sqe, NvmeqError> {
        if b.len() < SQE_LEN {
            return Err(NvmeqError::Truncated);
        }
        Ok(Sqe {
            op: SqeOp::from_byte(b[0])?,
            cid: u32::from_be_bytes([b[4], b[5], b[6], b[7]]),
            lba: u64::from_be_bytes([b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15]]),
            sectors: u32::from_be_bytes([b[16], b[17], b[18], b[19]]),
            data_len: u32::from_be_bytes([b[20], b[21], b[22], b[23]]),
        })
    }
}

/// A 16-byte completion queue entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cqe {
    /// The completed command's identifier.
    pub cid: u32,
    /// Completion status.
    pub status: ScsiStatus,
    /// The completed command's opcode (echoed so the host needn't look
    /// the command up to route the event).
    pub op: SqeOp,
    /// Read payload bytes following this completion frame's CQE block
    /// (reads; zero otherwise).
    pub data_len: u32,
}

impl Cqe {
    /// Serializes the entry.
    pub fn encode(&self) -> [u8; CQE_LEN] {
        let mut b = [0u8; CQE_LEN];
        b[0..4].copy_from_slice(&self.cid.to_be_bytes());
        b[4] = self.status.to_byte();
        b[5] = self.op.to_byte();
        b[8..12].copy_from_slice(&self.data_len.to_be_bytes());
        b
    }

    /// Decodes one entry from the front of `b`.
    ///
    /// # Errors
    ///
    /// [`NvmeqError::Truncated`] below [`CQE_LEN`] bytes,
    /// [`NvmeqError::UnknownOpcode`] for an unassigned opcode echo.
    pub fn decode(b: &[u8]) -> Result<Cqe, NvmeqError> {
        if b.len() < CQE_LEN {
            return Err(NvmeqError::Truncated);
        }
        Ok(Cqe {
            cid: u32::from_be_bytes([b[0], b[1], b[2], b[3]]),
            status: ScsiStatus::from_byte(b[4]),
            op: SqeOp::from_byte(b[5])?,
            data_len: u32::from_be_bytes([b[8], b[9], b[10], b[11]]),
        })
    }
}

/// Encodes the `Connect` payload (the iSCSI login text idiom, so the
/// cloud's connection-attribution scanner reads both protocols).
pub fn encode_connect_payload(initiator_name: &str, target_name: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(initiator_name.len() + target_name.len() + 32);
    out.extend_from_slice(b"InitiatorName=");
    out.extend_from_slice(initiator_name.as_bytes());
    out.push(0);
    out.extend_from_slice(b"TargetName=");
    out.extend_from_slice(target_name.as_bytes());
    out.push(0);
    out
}

/// Extracts `key`'s value from a `Connect` payload.
pub fn scan_connect_payload(payload: &[u8], key: &str) -> Option<String> {
    for kv in payload.split(|&b| b == 0) {
        // Non-text segments (e.g. a frame header ahead of the payload
        // when a sniffer scans raw connection bytes) are skipped.
        let Ok(kv) = std::str::from_utf8(kv) else {
            continue;
        };
        if let Some((k, v)) = kv.split_once('=') {
            if k == key {
                return Some(v.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_header_round_trip() {
        let h = FrameHeader {
            kind: FrameKind::Doorbell,
            count: 3,
            payload_len: 3 * SQE_LEN as u32 + 65536,
            queue_depth: 0,
        };
        assert_eq!(FrameHeader::decode(&h.encode()), Ok(h));
        for kind in [
            FrameKind::Connect,
            FrameKind::ConnectAck,
            FrameKind::Completion,
            FrameKind::Disconnect,
            FrameKind::DisconnectAck,
        ] {
            let h = FrameHeader {
                kind,
                count: if kind == FrameKind::Completion { 2 } else { 0 },
                payload_len: 64,
                queue_depth: 32,
            };
            assert_eq!(FrameHeader::decode(&h.encode()), Ok(h));
        }
    }

    #[test]
    fn frame_header_rejects_nonsense() {
        let mut b = FrameHeader {
            kind: FrameKind::Doorbell,
            count: 1,
            payload_len: SQE_LEN as u32,
            queue_depth: 0,
        }
        .encode();
        b[0] = 0x43; // iSCSI login, not nvmeq
        assert_eq!(FrameHeader::decode(&b), Err(NvmeqError::BadMagic(0x43)));
        b[0] = MAGIC;
        b[1] = 99;
        assert_eq!(
            FrameHeader::decode(&b),
            Err(NvmeqError::UnknownFrameType(99))
        );
        // Payload too small to hold the declared entry count.
        let h = FrameHeader {
            kind: FrameKind::Completion,
            count: 5,
            payload_len: CQE_LEN as u32, // room for one
            queue_depth: 0,
        };
        assert!(matches!(
            FrameHeader::decode(&h.encode()),
            Err(NvmeqError::Oversized { .. })
        ));
        // Payload beyond the global bound.
        let h = FrameHeader {
            kind: FrameKind::Doorbell,
            count: 0,
            payload_len: MAX_PAYLOAD + 1,
            queue_depth: 0,
        };
        assert!(matches!(
            FrameHeader::decode(&h.encode()),
            Err(NvmeqError::Oversized { .. })
        ));
    }

    #[test]
    fn sqe_round_trip() {
        for sqe in [
            Sqe {
                op: SqeOp::Read,
                cid: 7,
                lba: 1 << 40,
                sectors: 128,
                data_len: 0,
            },
            Sqe {
                op: SqeOp::Write,
                cid: u32::MAX,
                lba: 0,
                sectors: 8,
                data_len: 4096,
            },
            Sqe {
                op: SqeOp::Flush,
                cid: 0,
                lba: 0,
                sectors: 0,
                data_len: 0,
            },
        ] {
            assert_eq!(Sqe::decode(&sqe.encode()), Ok(sqe));
        }
        assert_eq!(Sqe::decode(&[0u8; 10]), Err(NvmeqError::Truncated));
        let mut b = [0u8; SQE_LEN];
        b[0] = 9;
        assert_eq!(Sqe::decode(&b), Err(NvmeqError::UnknownOpcode(9)));
    }

    #[test]
    fn cqe_round_trip() {
        for cqe in [
            Cqe {
                cid: 42,
                status: ScsiStatus::Good,
                op: SqeOp::Read,
                data_len: 65536,
            },
            Cqe {
                cid: 1,
                status: ScsiStatus::CheckCondition,
                op: SqeOp::Write,
                data_len: 0,
            },
            Cqe {
                cid: 2,
                status: ScsiStatus::Busy,
                op: SqeOp::Flush,
                data_len: 0,
            },
        ] {
            assert_eq!(Cqe::decode(&cqe.encode()), Ok(cqe));
        }
        assert_eq!(Cqe::decode(&[0u8; 3]), Err(NvmeqError::Truncated));
    }

    #[test]
    fn connect_payload_scans() {
        let p = encode_connect_payload("iqn.2026-01.io.storm:guest0", "iqn.2026-01.io.storm:vol0");
        assert_eq!(
            scan_connect_payload(&p, "InitiatorName").as_deref(),
            Some("iqn.2026-01.io.storm:guest0")
        );
        assert_eq!(
            scan_connect_payload(&p, "TargetName").as_deref(),
            Some("iqn.2026-01.io.storm:vol0")
        );
        assert_eq!(scan_connect_payload(&p, "Missing"), None);
        assert_eq!(scan_connect_payload(b"\xff\xfe", "X"), None);
    }
}

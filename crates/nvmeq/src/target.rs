//! Target-side queue pair: submission drain, completion coalescing.

use bytes::Bytes;

use storm_iscsi::{
    Iqn, ScsiStatus, TargetEvent, TargetTransport, TransportKind, WireBuf, SHARE_THRESHOLD,
};

use crate::codec::{scan_connect_payload, Cqe, FrameHeader, FrameKind, SqeOp, CQE_LEN};
use crate::stream::{FrameStream, UnitEntry};

/// Target-side queue-pair configuration.
#[derive(Debug, Clone)]
pub struct NvmeqTargetConfig {
    /// This target's name.
    pub target_iqn: Iqn,
    /// Exported volume capacity in 512-byte sectors.
    pub num_sectors: u64,
    /// Ring size offered in the connect ack.
    pub queue_depth: u16,
    /// Flush the completion queue as soon as this many CQEs are held,
    /// even before the moderation window closes.
    pub cq_max_batch: usize,
    /// Interrupt-moderation window: the first held CQE starts a timer
    /// this many nanoseconds out; when it fires, everything held goes
    /// out as one completion frame.
    pub cq_window_ns: u64,
}

impl NvmeqTargetConfig {
    /// A ready-to-use example configuration exporting `num_sectors`.
    pub fn example(num_sectors: u64) -> Self {
        NvmeqTargetConfig {
            target_iqn: Iqn::for_volume(1),
            num_sectors,
            queue_depth: 32,
            cq_max_batch: 8,
            cq_window_ns: 20_000,
        }
    }
}

/// The target side of an NVMe-oF-style queue pair, implementing
/// [`TargetTransport`].
///
/// Completions coalesce: `complete_*` parks the CQE instead of sending
/// it, and the whole parked set leaves as one completion frame when
/// either `cq_max_batch` entries are held or the interrupt-moderation
/// deadline passes ([`cq_deadline_ns`](Self::cq_deadline_ns) tells the
/// hosting app when to call [`flush_cq`](Self::flush_cq)). Read payloads
/// stay refcounted views end to end.
#[derive(Debug)]
pub struct NvmeqTargetConn {
    cfg: NvmeqTargetConfig,
    stream: FrameStream,
    out: WireBuf,
    logged_in: bool,
    /// The host's advertised ring size (informational; the host enforces
    /// its own cap).
    peer_queue_depth: u16,
    outstanding: usize,
    peak: usize,
    /// CQEs held for the next completion frame.
    pending: Vec<(Cqe, Bytes)>,
    cq_deadline: Option<u64>,
    cq_flushes: u64,
    cqes_flushed: u64,
    data_bytes_copied: u64,
}

impl NvmeqTargetConn {
    /// Creates a connection awaiting its connect frame.
    ///
    /// # Panics
    ///
    /// Panics if `cq_max_batch` is zero.
    pub fn new(cfg: NvmeqTargetConfig) -> Self {
        assert!(cfg.cq_max_batch > 0, "zero completion batch");
        NvmeqTargetConn {
            cfg,
            stream: FrameStream::new(),
            out: WireBuf::new(),
            logged_in: false,
            peer_queue_depth: 0,
            outstanding: 0,
            peak: 0,
            pending: Vec::new(),
            cq_deadline: None,
            cq_flushes: 0,
            cqes_flushed: 0,
            data_bytes_copied: 0,
        }
    }

    /// The ring size the host advertised at connect.
    pub fn peer_queue_depth(&self) -> u16 {
        self.peer_queue_depth
    }

    /// Completion frames flushed and CQEs they carried; the ratio is the
    /// realized coalescing batch size.
    pub fn cq_stats(&self) -> (u64, u64) {
        (self.cq_flushes, self.cqes_flushed)
    }

    /// Whether session establishment completed.
    pub fn is_logged_in(&self) -> bool {
        self.logged_in
    }

    /// Commands accepted but not yet completed.
    pub fn in_flight(&self) -> usize {
        self.outstanding
    }

    /// High-water mark of [`in_flight`](Self::in_flight).
    pub fn occupancy_peak(&self) -> usize {
        self.peak
    }

    /// Payload bytes memcpy'd by this endpoint.
    pub fn bytes_copied(&self) -> u64 {
        self.data_bytes_copied + self.stream.bytes_copied()
    }

    /// Drains queued wire bytes as refcounted chunks.
    pub fn take_wire(&mut self) -> Vec<Bytes> {
        self.out.take_chunks()
    }

    /// When the interrupt-moderation timer should next fire, if any
    /// completions are held.
    pub fn cq_deadline_ns(&self) -> Option<u64> {
        self.cq_deadline
    }

    fn note_ready(&mut self) {
        self.outstanding += 1;
        self.peak = self.peak.max(self.outstanding);
    }

    /// Feeds received bytes; returns events for the hosting app.
    pub fn feed_bytes(&mut self, bytes: Bytes) -> Vec<TargetEvent> {
        let frames = match self.stream.feed_bytes(bytes) {
            Ok(f) => f,
            Err(e) => return vec![TargetEvent::ProtocolError(e.to_string())],
        };
        let mut events = Vec::new();
        for fw in frames {
            match fw.header.kind {
                FrameKind::Connect => {
                    self.on_connect(&fw.payload, fw.header.queue_depth, &mut events)
                }
                FrameKind::Doorbell => {
                    for unit in fw.units {
                        let UnitEntry::Sqe(sqe) = unit.entry else {
                            events.push(TargetEvent::ProtocolError(
                                "CQE in doorbell frame".to_string(),
                            ));
                            continue;
                        };
                        if !self.logged_in {
                            events.push(TargetEvent::ProtocolError(
                                "doorbell before connect".to_string(),
                            ));
                            continue;
                        }
                        self.note_ready();
                        events.push(match sqe.op {
                            SqeOp::Read => TargetEvent::ReadReady {
                                itt: sqe.cid,
                                lba: sqe.lba,
                                sectors: sqe.sectors,
                            },
                            SqeOp::Write => TargetEvent::WriteReady {
                                itt: sqe.cid,
                                lba: sqe.lba,
                                data: unit.data,
                            },
                            SqeOp::Flush => TargetEvent::FlushReady { itt: sqe.cid },
                        });
                    }
                }
                FrameKind::Disconnect => {
                    let header = FrameHeader {
                        kind: FrameKind::DisconnectAck,
                        count: 0,
                        payload_len: 0,
                        queue_depth: 0,
                    };
                    self.out.push_slice(&header.encode());
                    self.logged_in = false;
                    events.push(TargetEvent::LoggedOut);
                }
                other => events.push(TargetEvent::ProtocolError(format!(
                    "unexpected frame {other:?} on target side"
                ))),
            }
        }
        events
    }

    fn on_connect(&mut self, payload: &Bytes, peer_qd: u16, events: &mut Vec<TargetEvent>) {
        let initiator_name = scan_connect_payload(payload, "InitiatorName");
        let target_name = scan_connect_payload(payload, "TargetName");
        let accept = matches!(&target_name, Some(t) if t == self.cfg.target_iqn.as_str());
        let mut ack = [0u8; 16];
        if accept {
            ack[8..16].copy_from_slice(&self.cfg.num_sectors.to_be_bytes());
        } else {
            ack[0] = 1; // no such target
        }
        let header = FrameHeader {
            kind: FrameKind::ConnectAck,
            count: 0,
            payload_len: 16,
            queue_depth: self.cfg.queue_depth,
        };
        self.out.push_slice(&header.encode());
        self.out.push_slice(&ack);
        if accept {
            self.peer_queue_depth = peer_qd;
            self.logged_in = true;
            events.push(TargetEvent::LoggedIn {
                initiator_name: initiator_name.unwrap_or_default(),
            });
        } else {
            events.push(TargetEvent::ProtocolError(format!(
                "connect for unknown target {target_name:?}"
            )));
        }
    }

    fn park(&mut self, now_ns: u64, cqe: Cqe, data: Bytes) {
        self.outstanding = self.outstanding.saturating_sub(1);
        self.pending.push((cqe, data));
        if self.pending.len() >= self.cfg.cq_max_batch {
            self.flush_cq(now_ns);
        } else if self.cq_deadline.is_none() {
            self.cq_deadline = Some(now_ns + self.cfg.cq_window_ns);
        }
    }

    /// Completes a read surfaced by [`TargetEvent::ReadReady`]; the CQE
    /// is held for coalescing.
    pub fn complete_read(&mut self, now_ns: u64, itt: u32, data: Bytes, status: ScsiStatus) {
        let cqe = Cqe {
            cid: itt,
            status,
            op: SqeOp::Read,
            data_len: data.len() as u32,
        };
        self.park(now_ns, cqe, data);
    }

    /// Completes a write surfaced by [`TargetEvent::WriteReady`].
    pub fn complete_write(&mut self, now_ns: u64, itt: u32, status: ScsiStatus) {
        let cqe = Cqe {
            cid: itt,
            status,
            op: SqeOp::Write,
            data_len: 0,
        };
        self.park(now_ns, cqe, Bytes::new());
    }

    /// Completes a flush surfaced by [`TargetEvent::FlushReady`].
    pub fn complete_flush(&mut self, now_ns: u64, itt: u32, status: ScsiStatus) {
        let cqe = Cqe {
            cid: itt,
            status,
            op: SqeOp::Flush,
            data_len: 0,
        };
        self.park(now_ns, cqe, Bytes::new());
    }

    /// Flushes every held completion as one frame (the hosting app calls
    /// this when the timer armed for [`cq_deadline_ns`](Self::cq_deadline_ns)
    /// fires; a batch-full flush may already have drained the queue, in
    /// which case this is a no-op).
    pub fn flush_cq(&mut self, _now_ns: u64) {
        self.cq_deadline = None;
        if self.pending.is_empty() {
            return;
        }
        let pending = std::mem::take(&mut self.pending);
        let data_len: usize = pending.iter().map(|(_, d)| d.len()).sum();
        let header = FrameHeader {
            kind: FrameKind::Completion,
            count: pending.len() as u16,
            payload_len: (pending.len() * CQE_LEN + data_len) as u32,
            queue_depth: 0,
        };
        self.out.push_slice(&header.encode());
        for (cqe, _) in &pending {
            self.out.push_slice(&cqe.encode());
        }
        self.cq_flushes += 1;
        self.cqes_flushed += header.count as u64;
        for (_, data) in pending {
            if data.len() >= SHARE_THRESHOLD {
                self.out.push_bytes(data);
            } else {
                self.data_bytes_copied += data.len() as u64;
                self.out.push_slice(&data);
            }
        }
    }
}

impl TargetTransport for NvmeqTargetConn {
    fn kind(&self) -> TransportKind {
        TransportKind::Nvmeq
    }

    fn feed_bytes(&mut self, bytes: Bytes) -> Vec<TargetEvent> {
        NvmeqTargetConn::feed_bytes(self, bytes)
    }

    fn complete_read(&mut self, now_ns: u64, itt: u32, data: Bytes, status: ScsiStatus) {
        NvmeqTargetConn::complete_read(self, now_ns, itt, data, status);
    }

    fn complete_write(&mut self, now_ns: u64, itt: u32, status: ScsiStatus) {
        NvmeqTargetConn::complete_write(self, now_ns, itt, status);
    }

    fn complete_flush(&mut self, now_ns: u64, itt: u32, status: ScsiStatus) {
        NvmeqTargetConn::complete_flush(self, now_ns, itt, status);
    }

    fn take_wire(&mut self) -> Vec<Bytes> {
        NvmeqTargetConn::take_wire(self)
    }

    fn is_logged_in(&self) -> bool {
        NvmeqTargetConn::is_logged_in(self)
    }

    fn bytes_copied(&self) -> u64 {
        NvmeqTargetConn::bytes_copied(self)
    }

    fn cq_deadline_ns(&self) -> Option<u64> {
        NvmeqTargetConn::cq_deadline_ns(self)
    }

    fn flush_cq(&mut self, now_ns: u64) {
        NvmeqTargetConn::flush_cq(self, now_ns);
    }

    fn in_flight(&self) -> usize {
        NvmeqTargetConn::in_flight(self)
    }

    fn occupancy_peak(&self) -> usize {
        NvmeqTargetConn::occupancy_peak(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::initiator::{NvmeqConfig, NvmeqInitiator};
    use storm_iscsi::{Transport, TransportEvent};

    fn connected_pair(qd: u16) -> (NvmeqInitiator, NvmeqTargetConn) {
        let mut ini = NvmeqInitiator::new(NvmeqConfig::example(qd));
        let mut tgt = NvmeqTargetConn::new(NvmeqTargetConfig::example(4096));
        ini.start();
        let mut ready = false;
        for _ in 0..4 {
            for c in ini.take_wire() {
                let _ = tgt.feed_bytes(c);
            }
            for c in tgt.take_wire() {
                ready |= ini
                    .feed_bytes(c)
                    .iter()
                    .any(|e| matches!(e, TransportEvent::Ready));
            }
        }
        assert!(ready && ini.is_ready() && tgt.is_logged_in());
        (ini, tgt)
    }

    #[test]
    fn full_session_with_coalescing() {
        let (mut ini, mut tgt) = connected_pair(8);
        assert_eq!(tgt.peer_queue_depth(), 8);

        // Four writes in one doorbell; target completes them all at
        // t=1000 — under cq_max_batch, so they coalesce behind the
        // moderation timer.
        let payloads: Vec<Bytes> = (0..4).map(|i| Bytes::from(vec![i as u8; 1024])).collect();
        for (i, p) in payloads.iter().enumerate() {
            ini.write(i as u64 * 2, p.clone());
        }
        for c in ini.take_wire() {
            for ev in tgt.feed_bytes(c) {
                if let TargetEvent::WriteReady { itt, data, .. } = ev {
                    assert_eq!(data.len(), 1024);
                    TargetTransport::complete_write(&mut tgt, 1000, itt, ScsiStatus::Good);
                }
            }
        }
        assert_eq!(tgt.occupancy_peak(), 4, "all four held concurrently");
        assert!(tgt.take_wire().is_empty(), "completions held back");
        assert_eq!(
            tgt.cq_deadline_ns(),
            Some(1000 + tgt.cfg.cq_window_ns),
            "moderation timer armed by first completion"
        );

        // Timer fires: one frame with all four CQEs.
        tgt.flush_cq(21_000);
        assert_eq!(tgt.cq_deadline_ns(), None);
        let mut done = 0;
        for c in tgt.take_wire() {
            for ev in ini.feed_bytes(c) {
                if matches!(ev, TransportEvent::WriteDone { status, .. } if status == ScsiStatus::Good)
                {
                    done += 1;
                }
            }
        }
        assert_eq!(done, 4);
        assert_eq!(ini.cq_stats(), (1, 4), "four CQEs in one frame");
        assert_eq!(tgt.cq_stats(), (1, 4));
        assert_eq!(ini.in_flight(), 0);
        assert_eq!(tgt.in_flight(), 0);
        assert_eq!(ini.bytes_copied() + tgt.bytes_copied(), 0);
    }

    #[test]
    fn batch_full_flushes_without_timer() {
        let (mut ini, mut tgt) = connected_pair(16);
        for i in 0..tgt.cfg.cq_max_batch {
            ini.read(i as u64, 2);
        }
        for c in ini.take_wire() {
            for ev in tgt.feed_bytes(c) {
                if let TargetEvent::ReadReady { itt, sectors, .. } = ev {
                    let data = Bytes::from(vec![0xFE; sectors as usize * 512]);
                    TargetTransport::complete_read(&mut tgt, 500, itt, data, ScsiStatus::Good);
                }
            }
        }
        // The eighth completion hit cq_max_batch and flushed on its own.
        assert_eq!(tgt.cq_deadline_ns(), None);
        assert_eq!(tgt.cq_stats(), (1, 8));
        let mut got = 0;
        for c in tgt.take_wire() {
            for ev in ini.feed_bytes(c) {
                if let TransportEvent::ReadDone { data, status, .. } = ev {
                    assert_eq!((data.len(), status), (1024, ScsiStatus::Good));
                    got += 1;
                }
            }
        }
        assert_eq!(got, 8);
        assert_eq!(ini.bytes_copied() + tgt.bytes_copied(), 0, "reads share");
    }

    #[test]
    fn disconnect_round_trip_and_bad_target() {
        let (mut ini, mut tgt) = connected_pair(4);
        ini.shutdown();
        let mut out = false;
        for c in ini.take_wire() {
            out |= tgt
                .feed_bytes(c)
                .iter()
                .any(|e| matches!(e, TargetEvent::LoggedOut));
        }
        assert!(out && !tgt.is_logged_in());
        let mut closed = false;
        for c in tgt.take_wire() {
            closed |= ini
                .feed_bytes(c)
                .iter()
                .any(|e| matches!(e, TransportEvent::Closed));
        }
        assert!(closed);

        // A connect naming the wrong volume is refused.
        let mut ini2 = NvmeqInitiator::new(NvmeqConfig {
            target_iqn: Iqn::for_volume(999),
            ..NvmeqConfig::example(4)
        });
        let mut tgt2 = NvmeqTargetConn::new(NvmeqTargetConfig::example(64));
        ini2.start();
        for c in ini2.take_wire() {
            assert!(tgt2
                .feed_bytes(c)
                .iter()
                .any(|e| matches!(e, TargetEvent::ProtocolError(_))));
        }
        for c in tgt2.take_wire() {
            assert!(ini2
                .feed_bytes(c)
                .iter()
                .any(|e| matches!(e, TransportEvent::ConnectFailed { detail: 1, .. })));
        }
        assert!(!tgt2.is_logged_in());
    }
}

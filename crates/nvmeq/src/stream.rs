//! Incremental frame reassembly over a TCP byte stream.
//!
//! Mirrors `storm_iscsi::PduStream`: a deque of refcounted chunks,
//! adjacent slices of one allocation re-join for free, fixed-size
//! headers are peeked into stack arrays, and payload bytes are copied
//! *only* when a segment genuinely straddles two receive allocations —
//! every such byte is counted so the relay fast path can prove itself
//! copy-free on this transport too.

use std::collections::VecDeque;

use bytes::Bytes;

use crate::codec::{Cqe, FrameHeader, FrameKind, NvmeqError, Sqe, CQE_LEN, FRAME_HDR_LEN, SQE_LEN};

/// The decoded entry of one command unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitEntry {
    /// A submission (doorbell frames).
    Sqe(Sqe),
    /// A completion (completion frames).
    Cqe(Cqe),
}

/// One command unit of a doorbell or completion frame: the decoded
/// entry, its wire image, and its data segment — both views sharing the
/// receive allocation whenever the frame arrived contiguously, so a
/// relay can re-emit the unit verbatim without touching payload bytes.
#[derive(Debug, Clone)]
pub struct UnitWire {
    /// The decoded entry.
    pub entry: UnitEntry,
    /// The entry's wire bytes (64 B for SQEs, 16 B for CQEs).
    pub entry_wire: Bytes,
    /// The unit's data segment (in-capsule write data / read payload;
    /// empty otherwise).
    pub data: Bytes,
}

/// One reassembled frame together with its original wire image.
#[derive(Debug, Clone)]
pub struct FrameWire {
    /// The decoded header.
    pub header: FrameHeader,
    /// Command units, in entry order (doorbell/completion frames only).
    pub units: Vec<UnitWire>,
    /// The raw payload (handshake frames only; empty for
    /// doorbell/completion, whose payload is split into `units`).
    pub payload: Bytes,
    /// The frame's wire bytes as received, in order.
    pub wire: Vec<Bytes>,
}

/// Reassembles frames from arbitrarily fragmented stream bytes.
#[derive(Debug, Default)]
pub struct FrameStream {
    chunks: VecDeque<Bytes>,
    len: usize,
    frames_out: u64,
    bytes_copied: u64,
    header_bytes_copied: u64,
}

/// Extracts `[start, start+len)` of `wire` as one `Bytes`: a zero-copy
/// slice when the range sits inside a single chunk, an assembled copy
/// (added to `copied`) otherwise.
fn extract(wire: &[Bytes], start: usize, len: usize, copied: &mut u64) -> Bytes {
    if len == 0 {
        return Bytes::new();
    }
    let mut off = 0;
    for c in wire {
        if start >= off && start + len <= off + c.len() {
            return c.slice(start - off..start - off + len);
        }
        off += c.len();
    }
    // Straddles chunk boundaries: assemble (the counted slow path).
    *copied += len as u64;
    let mut buf = Vec::with_capacity(len);
    let mut off = 0;
    for c in wire {
        let c_start = start.max(off);
        let c_end = (start + len).min(off + c.len());
        if c_start < c_end {
            // storm-lint: allow(no-hot-path-copy): counted slow path
            // (copied above); zero on the relay fast path.
            buf.extend_from_slice(&c.chunk()[c_start - off..c_end - off]);
        }
        off += c.len();
    }
    Bytes::from(buf)
}

impl FrameStream {
    /// Creates an empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a received chunk *by reference* and returns every frame
    /// completed by it, each with its original wire image.
    ///
    /// # Errors
    ///
    /// Propagates [`NvmeqError`] for undecodable headers or payloads
    /// inconsistent with their header; the stream is unusable afterwards
    /// (callers drop the connection).
    pub fn feed_bytes(&mut self, bytes: Bytes) -> Result<Vec<FrameWire>, NvmeqError> {
        if !bytes.is_empty() {
            self.push_chunk(bytes);
        }
        let mut out = Vec::new();
        while let Some(fw) = self.next_frame()? {
            out.push(fw);
        }
        Ok(out)
    }

    /// Bytes buffered awaiting a complete frame.
    pub fn pending_bytes(&self) -> usize {
        self.len
    }

    /// Total frames produced.
    pub fn frames_out(&self) -> u64 {
        self.frames_out
    }

    /// Data-segment bytes memcpy'd during reassembly (segments straddling
    /// two receive allocations). Zero on the relay fast path.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Protocol-metadata bytes copied to decode scratch (16 per frame
    /// header, plus any entry block that straddled allocations — the
    /// allowed fixed-size copies).
    pub fn header_bytes_copied(&self) -> u64 {
        self.header_bytes_copied
    }

    fn push_chunk(&mut self, bytes: Bytes) {
        self.len += bytes.len();
        if let Some(last) = self.chunks.back_mut() {
            if let Some(joined) = last.try_join(&bytes) {
                *last = joined;
                return;
            }
        }
        self.chunks.push_back(bytes);
    }

    /// Copies the first `dst.len()` buffered bytes into `dst` without
    /// consuming.
    fn peek_into(&self, dst: &mut [u8]) {
        let mut off = 0;
        for c in &self.chunks {
            if off == dst.len() {
                break;
            }
            let take = (dst.len() - off).min(c.len());
            // storm-lint: allow(no-hot-path-copy): the 16-byte header
            // decode copy, permitted by design and counted separately.
            dst[off..off + take].copy_from_slice(&c.chunk()[..take]);
            off += take;
        }
        debug_assert_eq!(off, dst.len());
    }

    /// Pops the next `total` bytes off the stream as wire chunks.
    ///
    /// # Errors
    ///
    /// [`NvmeqError::Desync`] if the chunk list runs dry before `total`
    /// bytes — only possible on an internal bookkeeping bug; reporting it
    /// (instead of panicking) lets a relay drop the one poisoned
    /// connection and keep serving the rest.
    fn take_wire(&mut self, mut total: usize) -> Result<Vec<Bytes>, NvmeqError> {
        // storm-lint: allow(no-alloc-on-datapath): the wire image owns
        // its chunk list by contract — one exact-sized Vec per completed
        // frame, not per byte; payload Bytes stay refcounted.
        let mut wire = Vec::with_capacity(1);
        while total > 0 {
            let Some(front) = self.chunks.front_mut() else {
                return Err(NvmeqError::Desync);
            };
            if front.len() <= total {
                total -= front.len();
                self.len -= front.len();
                match self.chunks.pop_front() {
                    Some(c) => wire.push(c),
                    None => return Err(NvmeqError::Desync),
                }
            } else {
                let head = front.slice(..total);
                *front = front.slice(total..);
                self.len -= total;
                wire.push(head);
                total = 0;
            }
        }
        Ok(wire)
    }

    fn next_frame(&mut self) -> Result<Option<FrameWire>, NvmeqError> {
        if self.len < FRAME_HDR_LEN {
            return Ok(None);
        }
        let mut hdr = [0u8; FRAME_HDR_LEN];
        self.peek_into(&mut hdr);
        self.header_bytes_copied += FRAME_HDR_LEN as u64;
        let header = FrameHeader::decode(&hdr)?;
        let total = FRAME_HDR_LEN + header.payload_len as usize;
        if self.len < total {
            return Ok(None);
        }
        let wire = self.take_wire(total)?;
        let (units, payload) = match header.kind {
            FrameKind::Doorbell => (self.split_units(&wire, &header, SQE_LEN)?, Bytes::new()),
            FrameKind::Completion => (self.split_units(&wire, &header, CQE_LEN)?, Bytes::new()),
            _ => {
                let payload = extract(
                    &wire,
                    FRAME_HDR_LEN,
                    header.payload_len as usize,
                    &mut self.bytes_copied,
                );
                (Vec::new(), payload)
            }
        };
        self.frames_out += 1;
        Ok(Some(FrameWire {
            header,
            units,
            payload,
            wire,
        }))
    }

    /// Splits a doorbell/completion payload into command units: `count`
    /// entries of `entry_len`, then each unit's data segment in entry
    /// order. The per-entry `data_len` fields must tile the remaining
    /// payload exactly.
    fn split_units(
        &mut self,
        wire: &[Bytes],
        header: &FrameHeader,
        entry_len: usize,
    ) -> Result<Vec<UnitWire>, NvmeqError> {
        let count = header.count as usize;
        let total = FRAME_HDR_LEN + header.payload_len as usize;
        let mut units = Vec::with_capacity(count);
        let mut data_off = FRAME_HDR_LEN + count * entry_len;
        for i in 0..count {
            let entry_wire = extract(
                wire,
                FRAME_HDR_LEN + i * entry_len,
                entry_len,
                &mut self.header_bytes_copied,
            );
            let (entry, data_len) = if entry_len == SQE_LEN {
                let sqe = Sqe::decode(&entry_wire)?;
                (UnitEntry::Sqe(sqe), sqe.data_len as usize)
            } else {
                let cqe = Cqe::decode(&entry_wire)?;
                (UnitEntry::Cqe(cqe), cqe.data_len as usize)
            };
            if data_off + data_len > total {
                return Err(NvmeqError::Truncated);
            }
            let data = extract(wire, data_off, data_len, &mut self.bytes_copied);
            data_off += data_len;
            units.push(UnitWire {
                entry,
                entry_wire,
                data,
            });
        }
        if data_off != total {
            // Trailing payload no entry claims: the stream is desynced.
            return Err(NvmeqError::Truncated);
        }
        Ok(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::SqeOp;
    use storm_iscsi::ScsiStatus;

    /// Encodes a doorbell frame with the given write payloads.
    fn doorbell(cmds: &[(Sqe, &[u8])]) -> Vec<u8> {
        let data: usize = cmds.iter().map(|(_, d)| d.len()).sum();
        let h = FrameHeader {
            kind: FrameKind::Doorbell,
            count: cmds.len() as u16,
            payload_len: (cmds.len() * SQE_LEN + data) as u32,
            queue_depth: 0,
        };
        let mut out = h.encode().to_vec();
        for (sqe, _) in cmds {
            out.extend_from_slice(&sqe.encode());
        }
        for (_, d) in cmds {
            out.extend_from_slice(d);
        }
        out
    }

    fn wsqe(cid: u32, data_len: u32) -> Sqe {
        Sqe {
            op: SqeOp::Write,
            cid,
            lba: cid as u64 * 8,
            sectors: data_len / 512,
            data_len,
        }
    }

    #[test]
    fn whole_frame_parses_zero_copy() {
        let payload = vec![0xEE; 4096];
        let whole = Bytes::from(doorbell(&[(wsqe(1, 4096), &payload)]));
        let mut s = FrameStream::new();
        let got = s.feed_bytes(whole.clone()).unwrap();
        assert_eq!(got.len(), 1);
        let fw = &got[0];
        assert_eq!(fw.header.kind, FrameKind::Doorbell);
        assert_eq!(fw.units.len(), 1);
        assert_eq!(fw.units[0].entry, UnitEntry::Sqe(wsqe(1, 4096)));
        assert_eq!(fw.units[0].data.len(), 4096);
        let data_off = FRAME_HDR_LEN + SQE_LEN;
        assert!(
            fw.units[0]
                .data
                .same_storage(&whole.slice(data_off..data_off + 4096)),
            "payload is a view"
        );
        assert_eq!(fw.wire.len(), 1);
        assert!(fw.wire[0].same_storage(&whole));
        assert_eq!(s.bytes_copied(), 0);
        assert_eq!(s.pending_bytes(), 0);
        assert_eq!(s.frames_out(), 1);
    }

    #[test]
    fn segments_of_one_allocation_rejoin() {
        let payload = vec![0x5A; 2048];
        let whole = Bytes::from(doorbell(&[(wsqe(3, 2048), &payload)]));
        let mut s = FrameStream::new();
        let mut got = Vec::new();
        let mut off = 0;
        while off < whole.len() {
            let end = (off + 100).min(whole.len());
            got.extend(s.feed_bytes(whole.slice(off..end)).unwrap());
            off = end;
        }
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].wire.len(), 1, "adjacent slices re-join");
        assert_eq!(s.bytes_copied(), 0, "no data-segment copies");
    }

    #[test]
    fn foreign_chunks_count_copies() {
        let payload = vec![0x11; 1024];
        let whole = doorbell(&[(wsqe(9, 1024), &payload)]);
        let cut = FRAME_HDR_LEN + SQE_LEN + 100; // mid-data
        let mut s = FrameStream::new();
        assert!(s
            .feed_bytes(Bytes::copy_from_slice(&whole[..cut]))
            .unwrap()
            .is_empty());
        let got = s.feed_bytes(Bytes::copy_from_slice(&whole[cut..])).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(s.bytes_copied(), 1024, "straddling data copy is counted");
    }

    #[test]
    fn multi_unit_doorbell_splits_in_order() {
        let a = vec![0xAA; 512];
        let b = vec![0xBB; 1024];
        let whole = Bytes::from(doorbell(&[
            (wsqe(1, 512), &a),
            (
                Sqe {
                    op: SqeOp::Read,
                    cid: 2,
                    lba: 64,
                    sectors: 16,
                    data_len: 0,
                },
                &[],
            ),
            (wsqe(3, 1024), &b),
        ]));
        let mut s = FrameStream::new();
        let got = s.feed_bytes(whole).unwrap();
        assert_eq!(got[0].units.len(), 3);
        assert_eq!(got[0].units[0].data.as_ref(), &a[..]);
        assert!(got[0].units[1].data.is_empty());
        assert_eq!(got[0].units[2].data.as_ref(), &b[..]);
        assert_eq!(s.bytes_copied(), 0);
    }

    #[test]
    fn completion_frame_parses() {
        let data = vec![0xCD; 512];
        let cqe = Cqe {
            cid: 7,
            status: ScsiStatus::Good,
            op: SqeOp::Read,
            data_len: 512,
        };
        let h = FrameHeader {
            kind: FrameKind::Completion,
            count: 1,
            payload_len: (CQE_LEN + 512) as u32,
            queue_depth: 0,
        };
        let mut wire = h.encode().to_vec();
        wire.extend_from_slice(&cqe.encode());
        wire.extend_from_slice(&data);
        let mut s = FrameStream::new();
        let got = s.feed_bytes(Bytes::from(wire)).unwrap();
        assert_eq!(got[0].units[0].entry, UnitEntry::Cqe(cqe));
        assert_eq!(got[0].units[0].data.len(), 512);
    }

    #[test]
    fn data_lengths_must_tile_payload() {
        // Entry claims more data than the payload holds.
        let mut short = doorbell(&[(wsqe(1, 512), &[0u8; 512])]);
        short[4..8].copy_from_slice(&((SQE_LEN + 256) as u32).to_be_bytes());
        short.truncate(FRAME_HDR_LEN + SQE_LEN + 256);
        let mut s = FrameStream::new();
        assert!(matches!(
            s.feed_bytes(Bytes::from(short)),
            Err(NvmeqError::Truncated)
        ));
        // Payload holds bytes no entry claims.
        let mut loose = doorbell(&[(wsqe(1, 512), &[0u8; 512])]);
        loose[4..8].copy_from_slice(&((SQE_LEN + 512 + 64) as u32).to_be_bytes());
        loose.extend_from_slice(&[0u8; 64]);
        let mut s = FrameStream::new();
        assert!(matches!(
            s.feed_bytes(Bytes::from(loose)),
            Err(NvmeqError::Truncated)
        ));
    }

    #[test]
    fn bad_magic_rejected_immediately() {
        let mut s = FrameStream::new();
        let junk = [0x43u8; FRAME_HDR_LEN]; // iSCSI login opcode byte
        assert!(matches!(
            s.feed_bytes(Bytes::copy_from_slice(&junk)),
            Err(NvmeqError::BadMagic(0x43))
        ));
    }
}

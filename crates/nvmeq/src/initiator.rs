//! Host-side queue pair: submission ring, batched doorbells, overflow
//! software queue.

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;

use storm_iscsi::{IoTag, Iqn, Transport, TransportEvent, TransportKind, WireBuf, SHARE_THRESHOLD};

use crate::codec::{encode_connect_payload, Cqe, FrameHeader, FrameKind, Sqe, SqeOp, SQE_LEN};
use crate::stream::{FrameStream, UnitEntry};

/// Host-side queue-pair configuration.
#[derive(Debug, Clone)]
pub struct NvmeqConfig {
    /// This host's name (connection attribution reads it).
    pub initiator_iqn: Iqn,
    /// The volume to bind to.
    pub target_iqn: Iqn,
    /// Submission ring size: commands beyond this wait in a software
    /// queue until a completion frees a slot.
    pub queue_depth: u16,
}

impl NvmeqConfig {
    /// A ready-to-use example configuration (for docs and tests).
    pub fn example(queue_depth: u16) -> Self {
        NvmeqConfig {
            initiator_iqn: Iqn::for_host("example"),
            target_iqn: Iqn::for_volume(1),
            queue_depth,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    ConnectSent,
    Ready,
    Closing,
    Closed,
}

/// One queued-but-not-yet-doorbelled command.
#[derive(Debug)]
struct Staged {
    sqe: Sqe,
    data: Bytes,
}

/// The host side of an NVMe-oF-style queue pair, implementing
/// [`Transport`].
///
/// Sans-io like every protocol machine in the workspace: commands go in
/// via `read`/`write`/`flush`, wire bytes drain through
/// [`take_wire`](Transport::take_wire) — which is the doorbell write:
/// every SQE staged since the last drain leaves as **one** doorbell
/// frame, so a guest that submits a burst of commands pays one frame
/// header and one send for the whole burst. The submission ring holds at
/// most `queue_depth` commands; extras park in a software overflow queue
/// and enter the ring as completions retire slots, which is what keeps
/// `queue_depth` commands on the wire continuously during a deep sweep.
#[derive(Debug)]
pub struct NvmeqInitiator {
    cfg: NvmeqConfig,
    state: State,
    next_cid: u32,
    /// cid → opcode for every command issued and not yet completed
    /// (ring + overflow). Lookup/remove only — never iterated.
    issued: HashMap<u32, SqeOp>,
    /// Commands occupying ring slots (staged, doorbelled, or in
    /// flight at the target).
    in_sq: usize,
    sq_peak: usize,
    /// SQEs staged for the next doorbell.
    batch: Vec<Staged>,
    /// Commands waiting for a free ring slot.
    overflow: VecDeque<Staged>,
    stream: FrameStream,
    out: WireBuf,
    data_bytes_copied: u64,
    num_sectors: u64,
    doorbells: u64,
    sqes_sent: u64,
    cq_frames: u64,
    cqes_received: u64,
}

impl NvmeqInitiator {
    /// Creates an idle queue pair.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn new(cfg: NvmeqConfig) -> Self {
        assert!(cfg.queue_depth > 0, "zero queue depth");
        NvmeqInitiator {
            cfg,
            state: State::Idle,
            next_cid: 1,
            issued: HashMap::new(),
            in_sq: 0,
            sq_peak: 0,
            batch: Vec::new(),
            overflow: VecDeque::new(),
            stream: FrameStream::new(),
            out: WireBuf::new(),
            data_bytes_copied: 0,
            num_sectors: 0,
            doorbells: 0,
            sqes_sent: 0,
            cq_frames: 0,
            cqes_received: 0,
        }
    }

    /// Volume capacity in sectors, learned from the connect ack.
    pub fn num_sectors(&self) -> u64 {
        self.num_sectors
    }

    /// Doorbell frames sent and SQEs they carried; the ratio is the
    /// realized submission batch size.
    pub fn doorbell_stats(&self) -> (u64, u64) {
        (self.doorbells, self.sqes_sent)
    }

    /// Completion frames received and CQEs they carried; the ratio is
    /// the realized interrupt-coalescing batch size.
    pub fn cq_stats(&self) -> (u64, u64) {
        (self.cq_frames, self.cqes_received)
    }

    /// High-water mark of submission-ring occupancy.
    pub fn sq_peak(&self) -> usize {
        self.sq_peak
    }

    fn alloc_cid(&mut self) -> u32 {
        let cid = self.next_cid;
        self.next_cid = self.next_cid.wrapping_add(1);
        cid
    }

    /// Stages a command: into the ring if a slot is free, else onto the
    /// overflow queue.
    fn submit(&mut self, sqe: Sqe, data: Bytes) -> IoTag {
        assert_eq!(self.state, State::Ready, "submit before connect");
        let tag = IoTag(sqe.cid);
        self.issued.insert(sqe.cid, sqe.op);
        let staged = Staged { sqe, data };
        if self.in_sq < self.cfg.queue_depth as usize {
            self.ring_in(staged);
        } else {
            self.overflow.push_back(staged);
        }
        tag
    }

    fn ring_in(&mut self, staged: Staged) {
        self.in_sq += 1;
        self.sq_peak = self.sq_peak.max(self.in_sq);
        self.batch.push(staged);
    }

    /// Encodes every staged SQE as one doorbell frame. This is the
    /// doorbell write: called from `take_wire`, so the whole batch rides
    /// one frame header and the data segments stay shared views.
    fn flush_batch(&mut self) {
        if self.batch.is_empty() {
            return;
        }
        let batch = std::mem::take(&mut self.batch);
        let data_len: usize = batch.iter().map(|s| s.data.len()).sum();
        let header = FrameHeader {
            kind: FrameKind::Doorbell,
            count: batch.len() as u16,
            payload_len: (batch.len() * SQE_LEN + data_len) as u32,
            queue_depth: 0,
        };
        self.out.push_slice(&header.encode());
        for s in &batch {
            self.out.push_slice(&s.sqe.encode());
        }
        for s in batch {
            if s.data.len() >= SHARE_THRESHOLD {
                self.out.push_bytes(s.data);
            } else {
                self.data_bytes_copied += s.data.len() as u64;
                self.out.push_slice(&s.data);
            }
        }
        self.doorbells += 1;
        self.sqes_sent += header.count as u64;
    }

    fn complete(&mut self, cqe: &Cqe, data: Bytes, events: &mut Vec<TransportEvent>) {
        let Some(op) = self.issued.remove(&cqe.cid) else {
            events.push(TransportEvent::ProtocolError(format!(
                "completion for unknown cid {}",
                cqe.cid
            )));
            return;
        };
        // Retire the ring slot and promote a parked command into it.
        self.in_sq = self.in_sq.saturating_sub(1);
        if let Some(next) = self.overflow.pop_front() {
            self.ring_in(next);
        }
        let tag = IoTag(cqe.cid);
        events.push(match op {
            SqeOp::Read => TransportEvent::ReadDone {
                tag,
                status: cqe.status,
                data,
            },
            SqeOp::Write => TransportEvent::WriteDone {
                tag,
                status: cqe.status,
            },
            SqeOp::Flush => TransportEvent::FlushDone {
                tag,
                status: cqe.status,
            },
        });
    }
}

impl Transport for NvmeqInitiator {
    fn kind(&self) -> TransportKind {
        TransportKind::Nvmeq
    }

    fn start(&mut self) {
        assert_eq!(self.state, State::Idle, "connect already started");
        let payload = encode_connect_payload(
            self.cfg.initiator_iqn.as_str(),
            self.cfg.target_iqn.as_str(),
        );
        let header = FrameHeader {
            kind: FrameKind::Connect,
            count: 0,
            payload_len: payload.len() as u32,
            queue_depth: self.cfg.queue_depth,
        };
        self.out.push_slice(&header.encode());
        self.out.push_slice(&payload);
        self.state = State::ConnectSent;
    }

    fn is_ready(&self) -> bool {
        self.state == State::Ready
    }

    fn read(&mut self, lba: u64, sectors: u32) -> IoTag {
        assert!(sectors > 0, "zero-length read");
        let cid = self.alloc_cid();
        self.submit(
            Sqe {
                op: SqeOp::Read,
                cid,
                lba,
                sectors,
                data_len: 0,
            },
            Bytes::new(),
        )
    }

    fn write(&mut self, lba: u64, data: Bytes) -> IoTag {
        assert!(
            !data.is_empty() && data.len().is_multiple_of(512),
            "unaligned write"
        );
        let cid = self.alloc_cid();
        let sqe = Sqe {
            op: SqeOp::Write,
            cid,
            lba,
            sectors: (data.len() / 512) as u32,
            data_len: data.len() as u32,
        };
        self.submit(sqe, data)
    }

    fn flush(&mut self) -> IoTag {
        let cid = self.alloc_cid();
        self.submit(
            Sqe {
                op: SqeOp::Flush,
                cid,
                lba: 0,
                sectors: 0,
                data_len: 0,
            },
            Bytes::new(),
        )
    }

    fn shutdown(&mut self) {
        if self.state == State::Closing || self.state == State::Closed {
            return;
        }
        // Any staged commands go out ahead of the disconnect.
        self.flush_batch();
        let header = FrameHeader {
            kind: FrameKind::Disconnect,
            count: 0,
            payload_len: 0,
            queue_depth: 0,
        };
        self.out.push_slice(&header.encode());
        self.state = State::Closing;
    }

    fn in_flight(&self) -> usize {
        self.issued.len()
    }

    fn feed_bytes(&mut self, bytes: Bytes) -> Vec<TransportEvent> {
        let frames = match self.stream.feed_bytes(bytes) {
            Ok(f) => f,
            Err(e) => return vec![TransportEvent::ProtocolError(e.to_string())],
        };
        let mut events = Vec::new();
        for fw in frames {
            match fw.header.kind {
                FrameKind::ConnectAck => {
                    if self.state != State::ConnectSent {
                        events.push(TransportEvent::ProtocolError(
                            "unexpected connect ack".to_string(),
                        ));
                        continue;
                    }
                    let status = fw.payload.first().copied().unwrap_or(0xFF);
                    if status == 0 && fw.payload.len() >= 16 {
                        let mut ns = [0u8; 8];
                        ns.copy_from_slice(&fw.payload[8..16]);
                        self.num_sectors = u64::from_be_bytes(ns);
                        // The ring never exceeds what the target offers.
                        if fw.header.queue_depth > 0 {
                            self.cfg.queue_depth = self.cfg.queue_depth.min(fw.header.queue_depth);
                        }
                        self.state = State::Ready;
                        events.push(TransportEvent::Ready);
                    } else {
                        self.state = State::Closed;
                        events.push(TransportEvent::ConnectFailed {
                            class: 2,
                            detail: status,
                        });
                    }
                }
                FrameKind::Completion => {
                    self.cq_frames += 1;
                    self.cqes_received += fw.units.len() as u64;
                    for unit in fw.units {
                        match unit.entry {
                            UnitEntry::Cqe(cqe) => self.complete(&cqe, unit.data, &mut events),
                            UnitEntry::Sqe(_) => events.push(TransportEvent::ProtocolError(
                                "SQE in completion frame".to_string(),
                            )),
                        }
                    }
                }
                FrameKind::DisconnectAck => {
                    self.state = State::Closed;
                    events.push(TransportEvent::Closed);
                }
                other => events.push(TransportEvent::ProtocolError(format!(
                    "unexpected frame {other:?} on host side"
                ))),
            }
        }
        events
    }

    fn take_wire(&mut self) -> Vec<Bytes> {
        self.flush_batch();
        self.out.take_chunks()
    }

    fn bytes_copied(&self) -> u64 {
        self.data_bytes_copied + self.stream.bytes_copied()
    }

    fn sq_peak(&self) -> usize {
        NvmeqInitiator::sq_peak(self)
    }

    fn doorbell_stats(&self) -> (u64, u64) {
        NvmeqInitiator::doorbell_stats(self)
    }

    fn cq_stats(&self) -> (u64, u64) {
        NvmeqInitiator::cq_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::FRAME_HDR_LEN;
    use storm_iscsi::ScsiStatus;

    #[test]
    fn batch_rides_one_doorbell_frame() {
        let mut ini = NvmeqInitiator::new(NvmeqConfig::example(8));
        ini.start();
        let _ = ini.take_wire();
        // Fake the ack.
        let mut ack = Vec::new();
        let mut payload = vec![0u8; 16];
        payload[8..16].copy_from_slice(&2048u64.to_be_bytes());
        ack.extend_from_slice(
            &FrameHeader {
                kind: FrameKind::ConnectAck,
                count: 0,
                payload_len: 16,
                queue_depth: 32,
            }
            .encode(),
        );
        ack.extend_from_slice(&payload);
        let evs = ini.feed_bytes(Bytes::from(ack));
        assert!(matches!(evs[..], [TransportEvent::Ready]));
        assert_eq!(ini.num_sectors(), 2048);

        // Three commands staged, one take_wire: a single frame whose
        // header announces all three SQEs.
        ini.read(0, 8);
        ini.write(8, Bytes::from(vec![0xAA; 4096]));
        ini.flush();
        assert_eq!(ini.in_flight(), 3);
        let chunks = ini.take_wire();
        let mut hdr = [0u8; FRAME_HDR_LEN];
        hdr.copy_from_slice(&chunks[0][..FRAME_HDR_LEN]);
        let h = FrameHeader::decode(&hdr).unwrap();
        assert_eq!((h.kind, h.count), (FrameKind::Doorbell, 3));
        assert_eq!(ini.doorbell_stats(), (1, 3));
        // The 4 KiB write payload is a shared view, not a copy.
        assert_eq!(ini.bytes_copied(), 0);
        assert!(chunks.len() >= 2, "scratch batch + shared data");
    }

    #[test]
    fn ring_caps_at_queue_depth_and_promotes_overflow() {
        let mut ini = NvmeqInitiator::new(NvmeqConfig::example(2));
        ini.state = State::Ready; // skip handshake for the unit test
        let t1 = ini.read(0, 1);
        let _t2 = ini.read(1, 1);
        let t3 = ini.read(2, 1);
        assert_eq!(ini.in_flight(), 3, "all issued commands count");
        let chunks = ini.take_wire();
        let mut hdr = [0u8; FRAME_HDR_LEN];
        hdr.copy_from_slice(&chunks[0][..FRAME_HDR_LEN]);
        let h = FrameHeader::decode(&hdr).unwrap();
        assert_eq!(h.count, 2, "third command parked in overflow");
        assert_eq!(ini.sq_peak(), 2);

        // Completing one ring command promotes the parked one.
        let cqe = Cqe {
            cid: t1.0,
            status: ScsiStatus::Good,
            op: SqeOp::Read,
            data_len: 512,
        };
        let mut frame = FrameHeader {
            kind: FrameKind::Completion,
            count: 1,
            payload_len: (crate::codec::CQE_LEN + 512) as u32,
            queue_depth: 0,
        }
        .encode()
        .to_vec();
        frame.extend_from_slice(&cqe.encode());
        frame.extend_from_slice(&[0x11; 512]);
        let evs = ini.feed_bytes(Bytes::from(frame));
        assert!(matches!(&evs[..], [TransportEvent::ReadDone { tag, .. }] if *tag == t1));
        let chunks = ini.take_wire();
        let mut hdr = [0u8; FRAME_HDR_LEN];
        hdr.copy_from_slice(&chunks[0][..FRAME_HDR_LEN]);
        let h = FrameHeader::decode(&hdr).unwrap();
        assert_eq!(h.count, 1, "promoted overflow command doorbells");
        let sqe = Sqe::decode(&chunks[0][FRAME_HDR_LEN..]).unwrap();
        assert_eq!(IoTag(sqe.cid), t3);
        assert_eq!(ini.in_flight(), 2);
        assert_eq!(ini.cq_stats(), (1, 1));
    }
}

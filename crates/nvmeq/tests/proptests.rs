//! Property tests for the nvmeq codec and reassembler, mirroring the
//! iSCSI PDU suite: round trips survive arbitrary fragmentation,
//! truncation is rejected cleanly, and garbage never panics.

use bytes::Bytes;
use proptest::prelude::*;

use storm_nvmeq::{
    Cqe, FrameHeader, FrameKind, FrameStream, NvmeqError, Sqe, SqeOp, UnitEntry, CQE_LEN,
    FRAME_HDR_LEN, MAGIC, SQE_LEN,
};

fn sqe_strategy() -> impl Strategy<Value = (Sqe, Vec<u8>)> {
    (
        prop_oneof![Just(SqeOp::Read), Just(SqeOp::Write), Just(SqeOp::Flush)],
        any::<u32>(),
        any::<u64>(),
        1u32..65,
        // Deliberately unaligned data lengths too: the wire format
        // carries whatever the entry declares.
        prop_oneof![Just(0usize), 1usize..701, Just(512usize), Just(4096usize)],
    )
        .prop_map(|(op, cid, lba, sectors, dlen)| {
            let dlen = if op == SqeOp::Write { dlen } else { 0 };
            let data: Vec<u8> = (0..dlen).map(|i| (i % 251) as u8).collect();
            (
                Sqe {
                    op,
                    cid,
                    lba,
                    sectors: if op == SqeOp::Flush { 0 } else { sectors },
                    data_len: dlen as u32,
                },
                data,
            )
        })
}

fn cqe_strategy() -> impl Strategy<Value = Cqe> {
    (
        any::<u32>(),
        prop_oneof![Just(0u8), Just(2u8), Just(8u8)],
        prop_oneof![Just(SqeOp::Read), Just(SqeOp::Write), Just(SqeOp::Flush)],
        0u32..8193,
    )
        .prop_map(|(cid, status, op, data_len)| Cqe {
            cid,
            status: storm_iscsi::ScsiStatus::from_byte(status),
            op,
            data_len: if op == SqeOp::Read { data_len } else { 0 },
        })
}

fn encode_doorbell(cmds: &[(Sqe, Vec<u8>)]) -> Vec<u8> {
    let data: usize = cmds.iter().map(|(_, d)| d.len()).sum();
    let h = FrameHeader {
        kind: FrameKind::Doorbell,
        count: cmds.len() as u16,
        payload_len: (cmds.len() * SQE_LEN + data) as u32,
        queue_depth: 0,
    };
    let mut out = h.encode().to_vec();
    for (sqe, _) in cmds {
        out.extend_from_slice(&sqe.encode());
    }
    for (_, d) in cmds {
        out.extend_from_slice(d);
    }
    out
}

proptest! {
    #[test]
    fn sqe_round_trip(cmd in sqe_strategy()) {
        let (sqe, _) = cmd;
        prop_assert_eq!(Sqe::decode(&sqe.encode()), Ok(sqe));
    }

    #[test]
    fn cqe_round_trip(cqe in cqe_strategy()) {
        prop_assert_eq!(Cqe::decode(&cqe.encode()), Ok(cqe));
    }

    /// A batch of commands encoded into one doorbell frame survives any
    /// stream fragmentation and comes back in order with its data.
    #[test]
    fn doorbell_round_trip_any_fragmentation(
        cmds in prop::collection::vec(sqe_strategy(), 1..8),
        chunk in 1usize..200,
    ) {
        let wire = encode_doorbell(&cmds);
        let mut s = FrameStream::new();
        let mut frames = Vec::new();
        for piece in wire.chunks(chunk) {
            frames.extend(s.feed_bytes(Bytes::copy_from_slice(piece)).unwrap());
        }
        prop_assert_eq!(frames.len(), 1);
        prop_assert_eq!(frames[0].units.len(), cmds.len());
        for (unit, (sqe, data)) in frames[0].units.iter().zip(&cmds) {
            prop_assert_eq!(&unit.entry, &UnitEntry::Sqe(*sqe));
            prop_assert_eq!(unit.data.as_ref(), &data[..]);
        }
        prop_assert_eq!(s.pending_bytes(), 0);
    }

    /// Any strict prefix of a valid frame parses to nothing (still
    /// waiting) or a clean error — never a bogus frame, never a panic.
    #[test]
    fn truncated_frames_are_never_misparsed(
        cmds in prop::collection::vec(sqe_strategy(), 1..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let wire = encode_doorbell(&cmds);
        let cut = ((wire.len() - 1) as f64 * cut_frac) as usize;
        let mut s = FrameStream::new();
        if let Ok(frames) = s.feed_bytes(Bytes::copy_from_slice(&wire[..cut])) {
            prop_assert!(frames.is_empty(), "prefix must not complete a frame");
        }
    }

    /// Arbitrary bytes fed in arbitrary chunks never panic: they parse
    /// or produce a typed error, and a bad first byte is rejected as
    /// soon as a header is available.
    #[test]
    fn garbage_never_panics(
        junk in prop::collection::vec(any::<u8>(), 0..600),
        chunk in 1usize..64,
    ) {
        let mut s = FrameStream::new();
        let mut failed = false;
        for piece in junk.chunks(chunk) {
            match s.feed_bytes(Bytes::copy_from_slice(piece)) {
                Ok(_) => {}
                Err(e) => {
                    if junk[0] != MAGIC && junk.len() >= FRAME_HDR_LEN {
                        prop_assert_eq!(e, NvmeqError::BadMagic(junk[0]));
                    }
                    failed = true;
                    break;
                }
            }
        }
        if junk.len() >= FRAME_HDR_LEN && junk[0] != MAGIC {
            prop_assert!(failed, "bad magic must be rejected");
        }
    }

    /// CQE entry decode tolerates truncation at every length.
    #[test]
    fn entry_truncation_is_typed(len in 0usize..CQE_LEN) {
        prop_assert_eq!(Cqe::decode(&vec![0u8; len]), Err(NvmeqError::Truncated));
        prop_assert_eq!(Sqe::decode(&vec![1u8; len]), Err(NvmeqError::Truncated));
    }
}

//! Fault injection: link failures, volume failures and connection aborts
//! must degrade gracefully, never corrupt data, and be visible to the
//! right party.

use bytes::Bytes;
use storm::cloud::{Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm_block::BlockDevice;
use storm_sim::{SimDuration, SimTime};

/// Issues writes forever; counts completions and failures.
struct Forever {
    ok: u64,
    failed: u64,
}

impl Workload for Forever {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        io.write(0, Bytes::from(vec![1u8; 4096]));
    }
    fn completed(&mut self, io: &mut IoCtx<'_>, _r: ReqId, _k: IoKind, result: IoResult) {
        if result.ok {
            self.ok += 1;
        } else {
            self.failed += 1;
        }
        // lba 0 keeps its initial pattern; churn happens above it.
        let lba = 8 + (self.ok % 63) * 8;
        io.write(lba, Bytes::from(vec![(self.ok % 251) as u8; 4096]));
    }
}

/// Cutting the storage link mid-run stalls I/O without corrupting
/// anything; the backing volume holds only fully-acknowledged writes.
#[test]
fn storage_link_failure_stalls_but_does_not_corrupt() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let vol = cloud.create_volume(32 << 20, 0);
    let app = cloud.attach_volume(
        0,
        "vm:f",
        &vol,
        Box::new(Forever { ok: 0, failed: 0 }),
        4,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(1_000_000_000));
    let ok_before = {
        let c = cloud.client_mut(0, app);
        assert!(c.is_ready());
        c.stats.writes.count()
    };
    assert!(ok_before > 100);
    // Cut the storage host's link.
    let storage_host = cloud.storages[0].host;
    let link = cloud.net.host(storage_host).ifaces[0].link.unwrap();
    cloud.net.fabric.set_link_up(link, false);
    cloud.net.run_until(SimTime::from_nanos(2_000_000_000));
    let ok_during = cloud.client_mut(0, app).stats.writes.count();
    // Progress stops (at most a few in-flight completions drain).
    assert!(
        ok_during - ok_before < 20,
        "I/O must stall: {ok_before} -> {ok_during}"
    );
    // Restore: (no retransmission is modelled, so the stalled session does
    // not resume — but the fabric and volume stay consistent.)
    cloud.net.fabric.set_link_up(link, true);
    let mut buf = vec![0u8; 4096];
    vol.shared.clone().read(0, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == 1),
        "acknowledged data must persist"
    );
}

/// A failed backing volume surfaces as SCSI errors to the client — the
/// client sees CHECK CONDITION, not silent corruption.
#[test]
fn volume_failure_surfaces_scsi_errors() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let vol = cloud.create_volume(32 << 20, 0);
    let app = cloud.attach_volume(
        0,
        "vm:f",
        &vol,
        Box::new(Forever { ok: 0, failed: 0 }),
        4,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(500_000_000));
    vol.shared.fail();
    cloud.net.run_until(SimTime::from_nanos(1_500_000_000));
    let client = cloud.client_mut(0, app);
    assert!(
        client.stats.errors > 0,
        "device failure must surface as I/O errors"
    );
    let w = client
        .workload_ref()
        .unwrap()
        .downcast_ref::<Forever>()
        .unwrap();
    assert!(w.failed > 0);
    // Recovery: I/O flows again.
    vol.shared.recover();
    let ok_now = cloud
        .client_mut(0, app)
        .workload_ref()
        .unwrap()
        .downcast_ref::<Forever>()
        .unwrap()
        .ok;
    cloud.net.run_until(SimTime::from_nanos(2_500_000_000));
    let w = cloud.client_mut(0, app);
    let after = w
        .workload_ref()
        .unwrap()
        .downcast_ref::<Forever>()
        .unwrap()
        .ok;
    assert!(after > ok_now, "I/O must resume after recovery");
}

/// Frames never loop forever even with a broken forwarding setup: the hop
/// guard drops them.
#[test]
fn forwarding_loops_are_bounded() {
    use storm_net::{LinkSpec, Network, SockAddr};
    let mut net = Network::new(3);
    // Two forwarding hosts routing each other's traffic back and forth.
    let a = net.add_host("a", 1);
    let b = net.add_host("b", 1);
    let ia = net.add_iface(a, [10, 0, 0, 1].into());
    let ib = net.add_iface(b, [10, 0, 0, 2].into());
    let sw = net.add_switch("sw", 4);
    net.link_host_switch(a, ia, sw, LinkSpec::instant());
    net.link_host_switch(b, ib, sw, LinkSpec::instant());
    net.enable_forwarding(a, SimDuration::ZERO);
    net.enable_forwarding(b, SimDuration::ZERO);
    // Each host routes the phantom destination via the other: a loop.
    net.add_route(a, [10, 9, 9, 9].into(), 32, Some([10, 0, 0, 2].into()), ia);
    net.add_route(b, [10, 9, 9, 9].into(), 32, Some([10, 0, 0, 1].into()), ib);

    /// App that fires one SYN at the phantom address.
    struct OneSyn;
    impl storm_net::App for OneSyn {
        fn on_start(&mut self, cx: &mut storm_net::Cx<'_>) {
            let _ = cx.connect(SockAddr::new([10, 9, 9, 9].into(), 80));
        }
    }
    net.add_app(a, Box::new(OneSyn));
    // If the hop guard failed this would loop forever; bounded termination
    // is the assertion.
    net.run_until(SimTime::from_nanos(100_000_000));
    assert!(
        net.events_delivered() < 10_000,
        "loop must be cut by the hop guard"
    );
}

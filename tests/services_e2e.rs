//! End-to-end service tests: the paper's three case studies running in
//! middle-boxes on the full spliced path.

use bytes::Bytes;
use storm::cloud::{Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm::core::relay::{ActiveRelayMb, ReplicaTarget};
use storm::core::{FsOp, FsTargetKind, MbSpec, Reconstructor, RelayMode, StormPlatform};
use storm::services::{
    DedupService, EncryptionService, MonitorConfig, MonitorService, ReplicationService,
};
use storm::workloads::{malware, postmark, TraceWorkload};
use storm_block::BlockDevice;
use storm_sim::{SimDuration, SimRng, SimTime};

struct VerifyWorkload {
    wrote: Option<ReqId>,
    read: Option<ReqId>,
    verified: bool,
    lba: u64,
    bytes: usize,
}

impl VerifyWorkload {
    fn new(lba: u64, bytes: usize) -> Self {
        VerifyWorkload {
            wrote: None,
            read: None,
            verified: false,
            lba,
            bytes,
        }
    }
    fn pattern(&self) -> Vec<u8> {
        (0..self.bytes)
            .map(|i| ((i * 3 + 11) % 251) as u8)
            .collect()
    }
}

impl Workload for VerifyWorkload {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.wrote = Some(io.write(self.lba, Bytes::from(self.pattern())));
    }
    fn completed(&mut self, io: &mut IoCtx<'_>, req: ReqId, _kind: IoKind, result: IoResult) {
        assert!(result.ok);
        if Some(req) == self.wrote {
            self.read = Some(io.read(self.lba, (self.bytes / 512) as u32));
        } else if Some(req) == self.read {
            assert_eq!(&result.data[..], &self.pattern()[..]);
            self.verified = true;
            io.stop();
        }
    }
}

/// Case 2 (encryption): plaintext in the VM, ciphertext at rest.
#[test]
fn encryption_middlebox_encrypts_at_rest() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    let enc = EncryptionService::aes_xts(&[0x5C; 64]);
    let mbs = vec![MbSpec::with_services(
        3,
        RelayMode::Active,
        vec![Box::new(enc)],
    )];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:enc",
        &vol,
        Box::new(VerifyWorkload::new(4096, 32 * 1024)),
        7,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(10_000_000_000));
    let client = cloud.client_mut(0, app);
    assert!(
        client
            .workload_ref()
            .unwrap()
            .downcast_ref::<VerifyWorkload>()
            .unwrap()
            .verified
    );
    // At rest: the backing volume holds ciphertext, not the pattern.
    let mut shared = vol.shared.clone();
    let mut at_rest = vec![0u8; 32 * 1024];
    shared.read(4096, &mut at_rest).unwrap();
    let plain: Vec<u8> = (0..32 * 1024).map(|i| ((i * 3 + 11) % 251) as u8).collect();
    assert_ne!(at_rest, plain, "volume must hold ciphertext");
    // Decrypting at rest with the tenant key yields the plaintext.
    let xts = storm_crypto::AesXts::from_master_key(&[0x5C; 64]);
    xts.decrypt_run(4096, 512, &mut at_rest);
    assert_eq!(at_rest, plain);
}

/// Case 2 on the passive path: the stream cipher transforms packets in
/// flight.
#[test]
fn passive_stream_cipher_encrypts_at_rest() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    let enc = EncryptionService::stream_cipher(&[0x77; 32], &[0x13; 12]);
    let mbs = vec![MbSpec::with_services(
        3,
        RelayMode::Passive,
        vec![Box::new(enc)],
    )];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:stream",
        &vol,
        Box::new(VerifyWorkload::new(512, 16 * 1024)),
        8,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(10_000_000_000));
    let client = cloud.client_mut(0, app);
    assert!(
        client
            .workload_ref()
            .unwrap()
            .downcast_ref::<VerifyWorkload>()
            .unwrap()
            .verified
    );
    let mut shared = vol.shared.clone();
    let mut at_rest = vec![0u8; 16 * 1024];
    shared.read(512, &mut at_rest).unwrap();
    let plain: Vec<u8> = (0..16 * 1024).map(|i| ((i * 3 + 11) % 251) as u8).collect();
    assert_ne!(at_rest, plain, "volume must hold ciphertext");
    // The keystream at the right volume offset recovers the data.
    let c = storm_crypto::ChaCha20::new(&[0x77; 32], &[0x13; 12]);
    c.apply_keystream_at(512 * 512, &mut at_rest);
    assert_eq!(at_rest, plain);
}

/// Case 1 (monitor): file operations replayed over the wire are
/// reconstructed with paths, through the whole spliced chain.
#[test]
fn monitor_reconstructs_malware_install_over_the_wire() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(192 << 20, 0);

    // Install the pre-infection system image on the volume.
    let mut image = malware::build_system_image();
    let (groups, steps) = malware::ganiw_trace(image.clone());
    postmark::install_image(&mut image, &mut vol.shared.clone());

    // Bootstrap the monitor from the attached volume (what the platform
    // does at attach time).
    let recon = Reconstructor::from_device(&mut vol.shared.clone(), "").unwrap();
    let monitor = MonitorService::new(
        MonitorConfig {
            watch: vec!["/etc/init.d".into()],
            per_byte_cost: SimDuration::ZERO,
        },
        recon,
    );
    let mbs = vec![MbSpec::with_services(
        3,
        RelayMode::Active,
        vec![Box::new(monitor)],
    )];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:victim",
        &vol,
        Box::new(TraceWorkload::new(groups)),
        9,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(30_000_000_000));
    let client = cloud.client_mut(0, app);
    assert_eq!(client.stats.errors, 0);
    assert!(client
        .workload_ref()
        .unwrap()
        .downcast_ref::<TraceWorkload>()
        .unwrap()
        .is_finished());

    // Read the monitor's analysis out of the middle-box.
    let mb_node = deployment.mb_nodes[0].node;
    let mb_app = deployment.mb_apps[0].unwrap();
    let relay = cloud
        .net
        .app_mut(mb_node, mb_app)
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    assert!(relay.pdus_forwarded() > 0);
    assert!(!relay.alerts().is_empty(), "watched /etc/init.d must alert");
    let monitor = relay
        .service(0)
        .unwrap()
        .downcast_ref::<MonitorService>()
        .unwrap();
    let rows = monitor.analysis();
    assert!(!rows.is_empty());
    // Every Table III artifact the steps name must appear in the log.
    for step in &steps {
        for touched in &step.touches {
            let seen = rows.iter().any(|e| match &e.row.target {
                FsTargetKind::File { path } | FsTargetKind::Dir { path } => path == touched,
                _ => false,
            });
            assert!(seen, "monitor missed {touched} ({})", step.description);
        }
    }
    // Reads of the GeoIP database are reconstructed as reads.
    assert!(rows.iter().any(|e| e.row.op == FsOp::Read
        && matches!(&e.row.target, FsTargetKind::File { path } if path == "/usr/share/GeoIP/GeoIPv6.dat")));
}

/// Case 3 (replication): writes hit every replica; a failed replica is
/// removed while the client keeps running (the Figure 13 scenario).
#[test]
fn replication_mirrors_and_survives_replica_failure() {
    let mut cloud = Cloud::build(CloudConfig {
        storage_hosts: 3,
        ..CloudConfig::default()
    });
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    let rep1 = cloud.create_volume(64 << 20, 1);
    let rep2 = cloud.create_volume(64 << 20, 2);
    let svc = ReplicationService::new(2, true);
    let mbs = vec![MbSpec {
        host_idx: 3,
        mode: RelayMode::Active,
        services: vec![Box::new(svc)],
        replicas: vec![
            ReplicaTarget {
                portal: rep1.portal,
                iqn: rep1.iqn.clone(),
            },
            ReplicaTarget {
                portal: rep2.portal,
                iqn: rep2.iqn.clone(),
            },
        ],
    }];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);

    /// Writes then reads blocks repeatedly; tolerates no errors.
    struct Churn {
        rounds: usize,
        issued: usize,
        next_is_read: bool,
    }
    impl Workload for Churn {
        fn start(&mut self, io: &mut IoCtx<'_>) {
            io.write(0, Bytes::from(vec![1u8; 4096]));
        }
        fn completed(&mut self, io: &mut IoCtx<'_>, _r: ReqId, _k: IoKind, result: IoResult) {
            assert!(result.ok, "client I/O failed");
            self.issued += 1;
            if self.issued >= self.rounds {
                io.stop();
                return;
            }
            let lba = (self.issued as u64 % 64) * 8;
            if self.next_is_read {
                io.read(lba, 8);
            } else {
                io.write(lba, Bytes::from(vec![(self.issued % 251) as u8; 4096]));
            }
            self.next_is_read = !self.next_is_read;
        }
    }
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:db",
        &vol,
        Box::new(Churn {
            rounds: 3000,
            issued: 0,
            next_is_read: false,
        }),
        10,
        false,
    );
    // Run briefly, then fail replica 1's backing volume mid-workload.
    cloud.net.run_for(SimDuration::from_millis(50));
    rep1.shared.fail();
    cloud.net.run_until(SimTime::from_nanos(60_000_000_000));

    let client = cloud.client_mut(0, app);
    assert_eq!(client.stats.errors, 0, "client must not see the failure");
    assert!(client.stats.ops() >= 3000, "ops: {}", client.stats.ops());

    let mb_node = deployment.mb_nodes[0].node;
    let mb_app = deployment.mb_apps[0].unwrap();
    let relay = cloud
        .net
        .app_mut(mb_node, mb_app)
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    let svc = relay
        .service(0)
        .unwrap()
        .downcast_ref::<ReplicationService>()
        .unwrap();
    assert_eq!(svc.alive_replicas(), 1, "failed replica must be removed");
    assert!(svc.stats.replica_writes > 0);
    assert!(svc.stats.striped_reads > 0);
    assert!(relay.alerts().iter().any(|(_, m)| m.contains("replica")));
    // The surviving replica holds the mirrored writes: block 0 was written
    // with 1s before the failure.
    let mut buf = vec![0u8; 4096];
    rep2.shared.clone().read(0, &mut buf).unwrap();
    assert!(
        buf.iter().all(|&b| b == 1),
        "replica 2 missing mirrored write"
    );
}

/// Writes a fixed set of `(lba, payload)` pairs one at a time, then
/// reads each back and verifies the bytes byte-for-byte.
struct WriteReadVerify {
    ops: Vec<(u64, Bytes)>,
    next_write: usize,
    next_read: usize,
    verified: bool,
}

impl WriteReadVerify {
    fn new(ops: Vec<(u64, Bytes)>) -> Self {
        WriteReadVerify {
            ops,
            next_write: 0,
            next_read: 0,
            verified: false,
        }
    }
}

impl Workload for WriteReadVerify {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        let (lba, data) = self.ops[0].clone();
        self.next_write = 1;
        io.write(lba, data);
    }

    fn completed(&mut self, io: &mut IoCtx<'_>, _req: ReqId, kind: IoKind, result: IoResult) {
        assert!(result.ok, "I/O failed");
        if kind == IoKind::Read {
            let (_, expected) = &self.ops[self.next_read - 1];
            assert_eq!(
                &result.data[..],
                &expected[..],
                "read-back mismatch at op {}",
                self.next_read - 1
            );
        }
        if self.next_write < self.ops.len() {
            let (lba, data) = self.ops[self.next_write].clone();
            self.next_write += 1;
            io.write(lba, data);
        } else if self.next_read < self.ops.len() {
            let (lba, data) = self.ops[self.next_read].clone();
            self.next_read += 1;
            io.read(lba, (data.len() / 512) as u32);
        } else {
            self.verified = true;
            io.stop();
        }
    }
}

/// Runs `ops` through an armed dedup middle-box, verifies every byte
/// round-trips and survives at rest, and returns the service's stats.
fn dedup_roundtrip(seed: u64, ops: Vec<(u64, Bytes)>) -> storm::services::DedupStats {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    let svc = DedupService::new(seed, 12);
    let mbs = vec![MbSpec::with_services(
        3,
        RelayMode::Active,
        vec![Box::new(svc)],
    )];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:dedup",
        &vol,
        Box::new(WriteReadVerify::new(ops.clone())),
        seed,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(10_000_000_000));
    let client = cloud.client_mut(0, app);
    assert!(
        client
            .workload_ref()
            .unwrap()
            .downcast_ref::<WriteReadVerify>()
            .unwrap()
            .verified
    );
    // Dedup is inspection-only: the exact bytes sit at rest.
    let mut shared = vol.shared.clone();
    for (lba, data) in &ops {
        let mut at_rest = vec![0u8; data.len()];
        shared.read(*lba, &mut at_rest).unwrap();
        assert_eq!(&at_rest[..], &data[..], "at-rest bytes diverge at {lba}");
    }
    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    relay
        .service(0)
        .unwrap()
        .downcast_ref::<DedupService>()
        .unwrap()
        .stats
}

/// Random (not patterned) payloads: periodic data degenerates CDC to
/// fixed max-size cuts, hiding the behaviour under test.
fn random_payload(rng: &mut SimRng, bytes: usize) -> Bytes {
    let mut buf = vec![0u8; bytes];
    rng.fill(&mut buf);
    Bytes::from(buf)
}

/// Duplicate-heavy workload through the dedup middle-box: the same
/// content written to many places dedups well past the 1.5x acceptance
/// floor, and the data itself is untouched in flight and at rest.
#[test]
fn dedup_reduces_duplicate_heavy_workload() {
    let mut rng = SimRng::seed_from_u64(0xD1D1);
    let a = random_payload(&mut rng, 32 * 1024);
    let b = random_payload(&mut rng, 32 * 1024);
    // `a` written four times (three duplicates), `b` once.
    let ops = vec![
        (0, a.clone()),
        (64, a.clone()),
        (128, a.clone()),
        (192, a),
        (256, b),
    ];
    let stats = dedup_roundtrip(21, ops);
    assert!(stats.duplicate_chunks > 0, "{stats:?}");
    assert!(
        stats.reduction_ratio() >= 1.5,
        "duplicate-heavy ratio too low: {stats:?}"
    );
}

/// Unique, incompressible workload through the dedup middle-box: random
/// content with no repeats must not be miscounted as duplicate — the
/// ratio stays at 1.0 — and still round-trips byte-for-byte.
#[test]
fn dedup_is_honest_on_incompressible_workload() {
    let mut rng = SimRng::seed_from_u64(0xD2D2);
    let ops = (0..5)
        .map(|i| (i * 64, random_payload(&mut rng, 32 * 1024)))
        .collect();
    let stats = dedup_roundtrip(22, ops);
    assert_eq!(stats.duplicate_chunks, 0, "{stats:?}");
    assert!(
        stats.reduction_ratio() < 1.01,
        "unique data must not dedup: {stats:?}"
    );
    assert!(stats.chunks > 5, "CDC must cut sub-payload chunks");
}

/// Service chaining (paper §II-B): monitor + encryption in ONE middle-box;
/// the monitor sees plaintext, the volume sees ciphertext.
#[test]
fn chained_monitor_then_encryption() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    // A raw (unformatted) volume has nothing to reconstruct; stage one is
    // a counting passthrough standing in for any inspection service.
    let monitor_counts = storm::core::service::PassthroughService::new();
    let enc = EncryptionService::aes_xts(&[0xD4; 64]);
    let mbs = vec![MbSpec::with_services(
        3,
        RelayMode::Active,
        vec![Box::new(monitor_counts), Box::new(enc)],
    )];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:chain",
        &vol,
        Box::new(VerifyWorkload::new(1024, 8192)),
        11,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(10_000_000_000));
    let client = cloud.client_mut(0, app);
    assert!(
        client
            .workload_ref()
            .unwrap()
            .downcast_ref::<VerifyWorkload>()
            .unwrap()
            .verified
    );
    // Ciphertext at rest proves the encryption stage ran *after* the
    // monitor stage on the write path.
    let mut at_rest = vec![0u8; 8192];
    vol.shared.clone().read(1024, &mut at_rest).unwrap();
    let plain: Vec<u8> = (0..8192).map(|i| ((i * 3 + 11) % 251) as u8).collect();
    assert_ne!(at_rest, plain);
    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    let pt = relay
        .service(0)
        .unwrap()
        .downcast_ref::<storm::core::service::PassthroughService>()
        .unwrap();
    assert!(pt.pdus() > 4, "first chain stage saw the PDUs");
}

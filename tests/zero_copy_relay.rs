//! Zero-copy relay datapath: the passthrough chain forwards wire bytes
//! verbatim, and side-action routing stays correct with multiple
//! initiators sharing one middle-box.

use bytes::Bytes;
use storm::cloud::{Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm::core::relay::{ActiveRelayMb, ReplicaTarget};
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm::iscsi::TransportKind;
use storm::services::ReplicationService;
use storm_sim::SimTime;

/// Writes a pattern, reads it back, verifies, repeats; patterns differ
/// per client (`salt`) and per round so misrouted replies can't pass
/// verification by accident.
struct PatternRounds {
    salt: u8,
    lba: u64,
    rounds: usize,
    verified: usize,
    wrote: Option<ReqId>,
    read: Option<ReqId>,
}

impl PatternRounds {
    const BYTES: usize = 16 * 1024;

    fn new(salt: u8, lba: u64, rounds: usize) -> Self {
        PatternRounds {
            salt,
            lba,
            rounds,
            verified: 0,
            wrote: None,
            read: None,
        }
    }

    fn lba_for(&self, round: usize) -> u64 {
        self.lba + (round as u64) * (Self::BYTES as u64 / 512)
    }

    fn pattern(&self, round: usize) -> Vec<u8> {
        (0..Self::BYTES)
            .map(|i| ((i * 3 + 11 + self.salt as usize + round * 7) % 251) as u8)
            .collect()
    }
}

impl Workload for PatternRounds {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.wrote = Some(io.write(self.lba_for(0), Bytes::from(self.pattern(0))));
    }
    fn completed(&mut self, io: &mut IoCtx<'_>, req: ReqId, _kind: IoKind, result: IoResult) {
        assert!(result.ok, "I/O failed for salt {}", self.salt);
        if Some(req) == self.wrote {
            self.wrote = None;
            self.read = Some(io.read(self.lba_for(self.verified), (Self::BYTES / 512) as u32));
        } else if Some(req) == self.read {
            self.read = None;
            assert_eq!(
                &result.data[..],
                &self.pattern(self.verified)[..],
                "read-back mismatch for salt {} round {}",
                self.salt,
                self.verified
            );
            self.verified += 1;
            if self.verified >= self.rounds {
                io.stop();
            } else {
                self.wrote = Some(io.write(
                    self.lba_for(self.verified),
                    Bytes::from(self.pattern(self.verified)),
                ));
            }
        }
    }
}

/// Tentpole acceptance: a bare active-relay chain forwards every data
/// segment verbatim — byte-identical wire data, zero data bytes copied.
/// Only fixed-size header copies into reassembly scratch are allowed.
#[test]
fn passthrough_relay_forwards_verbatim_with_zero_copies() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    let mbs = vec![MbSpec::bare(3, RelayMode::Active)];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:zc",
        &vol,
        Box::new(PatternRounds::new(0, 64, 8)),
        21,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(10_000_000_000));
    let client = cloud.client_mut(0, app);
    assert_eq!(client.stats.errors, 0);
    assert_eq!(
        client
            .workload_ref()
            .unwrap()
            .downcast_ref::<PatternRounds>()
            .unwrap()
            .verified,
        8,
        "every round must read back byte-identical data through the relay"
    );

    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    let copy = relay.copy_stats();
    assert!(relay.pdus_forwarded() > 0, "chain must have carried PDUs");
    assert_eq!(
        copy.data_bytes_copied, 0,
        "passthrough must not copy forwarded data segments"
    );
    assert_eq!(
        copy.verbatim_forwards,
        relay.pdus_forwarded(),
        "every forwarded PDU must take the verbatim fast path"
    );
}

/// The same acceptance over the multi-queue transport: the relay sniffs
/// the nvmeq magic byte, bridges doorbell/completion units through the
/// (empty) chain, and still forwards every frame verbatim with zero data
/// bytes copied — the zero-copy invariant is wire-protocol agnostic.
#[test]
fn passthrough_relay_stays_zero_copy_over_nvmeq() {
    let mut cloud = Cloud::build(CloudConfig {
        transport: TransportKind::Nvmeq,
        ..CloudConfig::default()
    });
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    let mbs = vec![MbSpec::bare(3, RelayMode::Active)];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:zc-nvq",
        &vol,
        Box::new(PatternRounds::new(5, 64, 8)),
        21,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(10_000_000_000));
    let client = cloud.client_mut(0, app);
    assert_eq!(client.stats.errors, 0);
    assert_eq!(client.transport().kind(), TransportKind::Nvmeq);
    assert_eq!(
        client
            .workload_ref()
            .unwrap()
            .downcast_ref::<PatternRounds>()
            .unwrap()
            .verified,
        8,
        "every round must read back byte-identical data through the relay"
    );

    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    let copy = relay.copy_stats();
    assert!(relay.pdus_forwarded() > 0, "chain must have carried units");
    assert_eq!(
        copy.data_bytes_copied, 0,
        "passthrough must not copy forwarded data segments on nvmeq either"
    );
    assert!(
        copy.verbatim_forwards > 0,
        "command units must take the verbatim fast path"
    );
}

/// Regression test for side-action routing: with TWO initiators on one
/// middle-box, replica replies and forwards must go back to the
/// originating pair. (The relay used to emit side actions on whichever
/// pair was processed last, which cross-delivered replies once a second
/// initiator logged in.)
#[test]
fn two_initiators_side_actions_route_to_originating_pair() {
    let mut cloud = Cloud::build(CloudConfig {
        storage_hosts: 2,
        ..CloudConfig::default()
    });
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    let rep = cloud.create_volume(64 << 20, 1);
    let svc = ReplicationService::new(1, true);
    let mbs = vec![MbSpec {
        host_idx: 3,
        mode: RelayMode::Active,
        services: vec![Box::new(svc)],
        replicas: vec![ReplicaTarget {
            portal: rep.portal,
            iqn: rep.iqn.clone(),
        }],
    }];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);

    // Two clients on different compute hosts, disjoint LBA ranges,
    // different data patterns.
    let app_a = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:tenant-a",
        &vol,
        Box::new(PatternRounds::new(17, 0, 24)),
        22,
        false,
    );
    let app_b = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        1,
        "vm:tenant-b",
        &vol,
        Box::new(PatternRounds::new(91, 32 * 1024, 24)),
        23,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(30_000_000_000));

    for (idx, app, rounds) in [(0, app_a, 24), (1, app_b, 24)] {
        let client = cloud.client_mut(idx, app);
        assert_eq!(client.stats.errors, 0, "client {idx} saw errors");
        assert_eq!(
            client
                .workload_ref()
                .unwrap()
                .downcast_ref::<PatternRounds>()
                .unwrap()
                .verified,
            rounds,
            "client {idx} must verify all rounds"
        );
    }

    // The replies were genuinely served by side actions: reads striped to
    // the replica produce Reply actions, writes produce replica Forwards.
    let relay = cloud
        .net
        .app_mut(deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap())
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    let svc = relay
        .service(0)
        .unwrap()
        .downcast_ref::<ReplicationService>()
        .unwrap();
    assert!(
        svc.stats.replica_writes > 0,
        "writes must mirror to replica"
    );
    assert!(
        svc.stats.striped_reads > 0,
        "reads must stripe to the replica (Reply side actions)"
    );
}

//! Policy-driven deployment: a tenant policy document, validated and
//! instantiated through the provider catalogue, drives a full deployment.

use bytes::Bytes;
use storm::cloud::{Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm::core::{MbSpec, ServiceSpec, StormPlatform, TenantPolicy, VolumePolicy};
use storm::services::catalog;
use storm_block::BlockDevice;
use storm_sim::SimTime;

struct WriteOnce {
    done: bool,
}

impl Workload for WriteOnce {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        io.write(64, Bytes::from(vec![0x17u8; 8192]));
    }
    fn completed(&mut self, io: &mut IoCtx<'_>, _r: ReqId, _k: IoKind, result: IoResult) {
        assert!(result.ok);
        self.done = true;
        io.stop();
    }
}

#[test]
fn policy_document_deploys_and_enforces() {
    // 1. Tenant submits a policy.
    let policy = TenantPolicy {
        tenant: 9,
        volumes: vec![VolumePolicy {
            vm: "db-1".into(),
            volume_gb: 1,
            services: vec![ServiceSpec::new("encryption")
                .param("cipher", "aes-256-xts")
                .param("key", "tenant-9-secret")],
        }],
    };
    policy.validate().expect("valid policy");

    // 2. Provider instantiates services from the catalogue and deploys.
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform {
        tenant: policy.tenant,
        ..StormPlatform::default()
    };
    let vp = &policy.volumes[0];
    let volume = cloud.create_volume((vp.volume_gb as u64) << 30, 0);
    let services: Vec<_> = vp
        .services
        .iter()
        .map(|s| catalog::build_service(s, None).expect("catalogue builds it"))
        .collect();
    let mode = catalog::relay_mode(vp.services[0].mode);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &volume,
        (1, 2),
        vec![MbSpec {
            host_idx: 3,
            mode,
            services,
            replicas: vec![],
        }],
    );

    // 3. Attach and run.
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        &format!("vm:{}", vp.vm),
        &volume,
        Box::new(WriteOnce { done: false }),
        9,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(5_000_000_000));
    let client = cloud.client_mut(0, app);
    assert!(client.is_ready());
    assert_eq!(client.stats.errors, 0);
    assert!(
        client
            .workload_ref()
            .unwrap()
            .downcast_ref::<WriteOnce>()
            .unwrap()
            .done
    );

    // 4. The policy's encryption is in force: ciphertext at rest.
    let mut at_rest = vec![0u8; 8192];
    volume.shared.clone().read(64, &mut at_rest).unwrap();
    assert_ne!(
        at_rest,
        vec![0x17u8; 8192],
        "policy-mandated encryption must apply"
    );

    // 5. Attribution ties the session to the policy's VM.
    let attrs = cloud.attributions();
    assert_eq!(attrs.len(), 1);
    assert_eq!(attrs[0].vm_label, "vm:db-1");
    assert!(attrs[0].tuple.is_some());
}

#[test]
fn invalid_policies_never_reach_deployment() {
    let bad = TenantPolicy {
        tenant: 1,
        volumes: vec![VolumePolicy {
            vm: "x".into(),
            volume_gb: 1,
            services: vec![ServiceSpec::new("quantum-dedupe")],
        }],
    };
    assert!(bad.validate().is_err());
    // And the catalogue agrees even if validation were skipped.
    assert!(catalog::build_service(&bad.volumes[0].services[0], None).is_err());
}

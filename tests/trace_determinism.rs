//! Equal seeds ⇒ byte-identical telemetry traces.
//!
//! The whole stack — event queue, TCP, relays, disk model — is
//! deterministic, and the JSONL writer has a fixed key order, so two runs
//! of the same scenario must export the same bytes. This holds with a
//! fault schedule armed too: `storm-faults` draws every decision from the
//! seeded state, so even a run full of drops and delays replays exactly.

use std::sync::Arc;

use proptest::prelude::*;
use storm::cloud::{Cloud, CloudConfig, DiskSpec};
use storm::core::relay::ReplicaTarget;
use storm::core::service::StorageService;
use storm::core::{MbSpec, RelayMode, RelayQosConfig, StormPlatform};
use storm::qos::{DiskTier, RateLimitSpec};
use storm::services::{
    CacheConfig, CompressService, DedupService, EncryptionService, SnapshotService,
    WriteBackCacheService,
};
use storm::telemetry::{parse_jsonl, Recorder};
use storm_faults::{Fault, FaultPlan, FaultRunner};
use storm_sim::{SimDuration, SimTime};
use storm_workloads::{FioJob, FioWorkload};

/// Runs a short encrypted active-relay fio scenario with the recorder
/// armed; with `faulted`, a disk-delay + middle-box-delay schedule fires
/// mid-run; with `qos`, tight per-tenant limits shape the flow at both
/// enforcement points (relay token bucket + target WFQ dispatch).
/// Returns the JSONL trace export.
fn traced_run(seed: u64, faulted: bool, qos: bool) -> String {
    let mut cloud = Cloud::build(CloudConfig {
        seed,
        ..CloudConfig::default()
    });
    let recorder = Arc::new(Recorder::new());
    cloud.set_trace_hook(Recorder::hook(&recorder));
    let mut platform = StormPlatform::default();
    if qos {
        platform.qos = Some(RelayQosConfig {
            tenant: 1,
            limit: RateLimitSpec::iops_limit(600, 4),
        });
    }
    let vol = cloud.create_volume(1 << 30, 0);
    if qos {
        let target = cloud.target_mut(0);
        target.enable_qos(DiskSpec::fast_tier(), DiskSpec::slow_tier());
        target.register_qos_volume(&vol.iqn, 1, DiskTier::Fast);
        target.set_tenant_limit(1, RateLimitSpec::iops_limit(600, 4));
    }
    let enc = EncryptionService::stream_cipher(&[7u8; 32], &[3u8; 12]);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec::with_services(
            3,
            RelayMode::Active,
            vec![Box::new(enc)],
        )],
    );
    let job = FioJob::randrw(4096, SimDuration::from_millis(300), vol.sectors).threads(2);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:det",
        &vol,
        Box::new(FioWorkload::new(job)),
        seed ^ 0x5EED,
        false,
    );
    let until = SimTime::from_nanos(1_200_000_000);
    if faulted {
        let plan = FaultPlan::new(seed ^ 0xFA17)
            .at(
                SimTime::from_millis(400),
                Fault::DiskDelay {
                    host: 0,
                    extra: SimDuration::from_micros(150),
                    prob: 0.3,
                },
            )
            .at(
                SimTime::from_millis(500),
                Fault::MbDelay {
                    mb: 0,
                    delay: SimDuration::from_micros(40),
                    prob: 0.5,
                },
            );
        let mut runner = FaultRunner::new(plan.schedule());
        runner.arm_cloud(&mut cloud);
        let (node, mb_app) = (deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap());
        assert!(runner.arm_mb(&mut cloud, 0, node, mb_app));
        runner.run(&mut cloud, until);
    } else {
        cloud.net.run_until(until);
    }
    let client = cloud.client_mut(0, app);
    assert!(client.is_ready(), "login failed");
    assert!(client.stats.ops() > 0, "no I/O completed");
    recorder.to_jsonl()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Two clean runs with the same seed export identical bytes.
    #[test]
    fn equal_seeds_equal_traces(seed in 1u64..1_000_000) {
        let a = traced_run(seed, false, false);
        let b = traced_run(seed, false, false);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(&a, &b);
        prop_assert!(parse_jsonl(&a).is_some(), "export must parse back");
    }

    /// Determinism survives an armed fault schedule.
    #[test]
    fn equal_seeds_equal_traces_under_faults(seed in 1u64..1_000_000) {
        let a = traced_run(seed, true, false);
        let b = traced_run(seed, true, false);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(&a, &b);
    }

    /// Determinism survives QoS shaping: the token buckets and WFQ draw
    /// nothing from ambient state, so a rate-limited run replays exactly
    /// — and the shaping is real (qos stage events appear in the trace).
    #[test]
    fn equal_seeds_equal_traces_with_qos(seed in 1u64..1_000_000) {
        let a = traced_run(seed, false, true);
        let b = traced_run(seed, false, true);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(&a, &b);
        prop_assert!(a.contains("\"hop\":\"qos\""), "QoS never engaged");
        prop_assert!(parse_jsonl(&a).is_some(), "export must parse back");
    }
}

/// The seed is load-bearing: different seeds almost surely diverge.
#[test]
fn different_seeds_diverge() {
    let a = traced_run(11, false, false);
    let b = traced_run(12, false, false);
    assert_ne!(a, b);
}

/// Runs a short fio scenario through the full data-reduction suite —
/// write-back cache, CDC dedup, inline compression and snapshot/CoW all
/// **armed** (a snapshot is taken at deploy time so copy-on-first-write
/// triggers) — and exports the JSONL trace.
fn suite_traced_run(seed: u64) -> String {
    let mut cloud = Cloud::build(CloudConfig {
        seed,
        storage_hosts: 2,
        ..CloudConfig::default()
    });
    let recorder = Arc::new(Recorder::new());
    cloud.set_trace_hook(Recorder::hook(&recorder));
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(1 << 30, 0);
    let journal = cloud.create_volume(64 << 20, 1);
    let mut snap = SnapshotService::new(128);
    snap.take_snapshot();
    let services: Vec<Box<dyn StorageService>> = vec![
        Box::new(WriteBackCacheService::new(CacheConfig::default())),
        Box::new(DedupService::new(seed, 12)),
        Box::new(CompressService::new(4096)),
        Box::new(snap),
    ];
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec {
            host_idx: 3,
            mode: RelayMode::Active,
            services,
            replicas: vec![
                ReplicaTarget {
                    portal: journal.portal,
                    iqn: journal.iqn.clone(),
                },
                ReplicaTarget {
                    portal: vol.portal,
                    iqn: vol.iqn.clone(),
                },
            ],
        }],
    );
    let job = FioJob::randrw(4096, SimDuration::from_millis(300), vol.sectors).threads(2);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:suite",
        &vol,
        Box::new(FioWorkload::new(job)),
        seed ^ 0x5EED,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(1_200_000_000));
    let client = cloud.client_mut(0, app);
    assert!(client.is_ready(), "login failed");
    assert!(client.stats.ops() > 0, "no I/O completed");
    recorder.to_jsonl()
}

mod suite_determinism {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2))]

        /// Determinism survives the full four-service suite armed: the
        /// cache's journal and flush timers, the dedup index, the
        /// compression codec and snapshot copy-on-first-write all draw
        /// only on sim-clock time and seeded state, so equal seeds still
        /// export byte-identical traces.
        #[test]
        fn equal_seeds_equal_traces_with_suite_armed(seed in 1u64..1_000_000) {
            let a = suite_traced_run(seed);
            let b = suite_traced_run(seed);
            prop_assert!(!a.is_empty());
            prop_assert_eq!(&a, &b);
            prop_assert!(parse_jsonl(&a).is_some(), "export must parse back");
        }
    }
}

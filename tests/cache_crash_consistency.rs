//! Crash consistency of the write-back cache (ISSUE 7's durability
//! claim): power-cut the middle-box at an arbitrary point in the
//! journal/flush cycle, replay the journal onto the backing volume, and
//! verify that **no acknowledged write is lost** and **no torn extent
//! survives recovery**.
//!
//! The workload stamps every write payload with its sequence number, so
//! recovery can be audited block by block: a recovered block must hold
//! one *complete* stamped payload (torn detection) whose sequence is at
//! least the newest acknowledged write to that block (durability).

use std::collections::BTreeMap;

use bytes::Bytes;
use storm::cloud::{Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm::core::relay::ReplicaTarget;
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm_block::BlockDevice;
use storm_faults::{Fault, FaultPlan, FaultRunner};
use storm_services::{recover_journal, CacheConfig, WriteBackCacheService};
use storm_sim::SimTime;

const BLOCKS: u64 = 48;
const SECTORS_PER_BLOCK: u64 = 8;
const BLOCK_BYTES: usize = 4096;

/// A 4 KiB payload carrying its own audit trail: the sequence number in
/// the first 8 bytes, a sequence-derived fill byte everywhere else.
fn stamped_payload(seq: u64) -> Bytes {
    let mut buf = vec![(seq % 251) as u8; BLOCK_BYTES];
    buf[..8].copy_from_slice(&seq.to_le_bytes());
    Bytes::from(buf)
}

/// Issues stamped writes over a small block set and records which were
/// acknowledged before the power cut.
struct RecordingWorkload {
    seq: u64,
    in_flight: BTreeMap<ReqId, (u64, u64)>,
    /// block -> newest acknowledged sequence.
    acked: BTreeMap<u64, u64>,
    /// block -> every sequence ever issued to it.
    issued: BTreeMap<u64, Vec<u64>>,
}

impl RecordingWorkload {
    fn new() -> Self {
        RecordingWorkload {
            seq: 0,
            in_flight: BTreeMap::new(),
            acked: BTreeMap::new(),
            issued: BTreeMap::new(),
        }
    }

    fn issue(&mut self, io: &mut IoCtx<'_>) {
        self.seq += 1;
        let seq = self.seq;
        // Stride-5 walk: revisits blocks quickly so journal appends,
        // overwrites and flushes interleave.
        let block = seq * 5 % BLOCKS;
        let req = io.write(block * SECTORS_PER_BLOCK, stamped_payload(seq));
        self.in_flight.insert(req, (block, seq));
        self.issued.entry(block).or_default().push(seq);
    }
}

impl Workload for RecordingWorkload {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.issue(io);
        self.issue(io);
    }

    fn completed(&mut self, io: &mut IoCtx<'_>, req: ReqId, _kind: IoKind, result: IoResult) {
        let Some((block, seq)) = self.in_flight.remove(&req) else {
            return;
        };
        if !result.ok {
            // The power cut surfaced as an I/O error; stop issuing.
            io.stop();
            return;
        }
        let newest = self.acked.entry(block).or_insert(0);
        *newest = (*newest).max(seq);
        self.issue(io);
    }
}

/// One full power-cut round: run the workload through an armed cache
/// middle-box, crash the middle-box VM at `crash_ms`, replay the journal
/// and audit the backing volume.
fn power_cut_round(seed: u64, crash_ms: u64) {
    let mut cloud = Cloud::build(CloudConfig {
        storage_hosts: 2,
        backing_bytes: 4 << 30,
        seed,
        ..CloudConfig::default()
    });
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(256 << 20, 0);
    let journal = cloud.create_volume(64 << 20, 1);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec {
            host_idx: 3,
            mode: RelayMode::Active,
            services: vec![Box::new(WriteBackCacheService::new(CacheConfig::default()))],
            replicas: vec![
                ReplicaTarget {
                    portal: journal.portal,
                    iqn: journal.iqn.clone(),
                },
                ReplicaTarget {
                    portal: vol.portal,
                    iqn: vol.iqn.clone(),
                },
            ],
        }],
    );
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:crash",
        &vol,
        Box::new(RecordingWorkload::new()),
        seed,
        false,
    );

    let plan = FaultPlan::new(0xCAC4E ^ seed).at(
        SimTime::from_nanos(crash_ms * 1_000_000),
        Fault::MbCrash { mb: 0 },
    );
    let mut runner = FaultRunner::new(plan.schedule());
    runner.arm_cloud(&mut cloud);
    let (mb_node, mb_app) = (deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap());
    assert!(runner.arm_mb(&mut cloud, 0, mb_node, mb_app));
    runner.run(
        &mut cloud,
        SimTime::from_nanos((crash_ms + 200) * 1_000_000),
    );

    let client = cloud.client_mut(0, app);
    let w = client
        .workload_ref()
        .unwrap()
        .downcast_ref::<RecordingWorkload>()
        .unwrap();
    let acked = w.acked.clone();
    let issued = w.issued.clone();
    assert!(
        acked.len() >= BLOCKS as usize / 2,
        "crash at {crash_ms} ms landed before the workload warmed up ({} blocks acked)",
        acked.len()
    );

    // Out-of-band recovery, exactly what a rebooted middle-box would run
    // before re-exporting the volume.
    let mut journal_dev = journal.shared.clone();
    let mut backing_dev = vol.shared.clone();
    let report = recover_journal(&mut journal_dev, &mut backing_dev).expect("recovery I/O");

    // Audit every block the workload ever touched.
    let mut buf = vec![0u8; BLOCK_BYTES];
    for (&block, seqs) in &issued {
        backing_dev
            .read(block * SECTORS_PER_BLOCK, &mut buf)
            .expect("backing read");
        let got_seq = u64::from_le_bytes(buf[..8].try_into().unwrap());
        if got_seq == 0 && buf.iter().all(|&b| b == 0) {
            // Never reached the volume: only legal if never acked.
            assert!(
                !acked.contains_key(&block),
                "crash at {crash_ms} ms lost acked write seq {} to block {block}",
                acked[&block]
            );
            continue;
        }
        // No torn extent: the block holds one complete stamped payload.
        let fill = (got_seq % 251) as u8;
        assert!(
            buf[8..].iter().all(|&b| b == fill),
            "crash at {crash_ms} ms left block {block} torn (seq {got_seq})"
        );
        assert!(
            seqs.contains(&got_seq),
            "block {block} holds seq {got_seq}, never issued to it"
        );
        // No acknowledged write lost: the recovered content is the acked
        // write or a newer (journaled-but-unacked) overwrite of it.
        if let Some(&newest_acked) = acked.get(&block) {
            assert!(
                got_seq >= newest_acked,
                "crash at {crash_ms} ms lost acked seq {newest_acked} of block {block} \
                 (recovered seq {got_seq})"
            );
        }
    }
    assert!(
        report.applied_entries > 0 || acked.is_empty(),
        "recovery replayed nothing despite acked writes ({report:?})"
    );
}

/// The paper-level claim, across several arbitrary cut points in the
/// flush cycle (the cache's flush timer fires every 5 ms, so these land
/// at different phases of journal append, flush and checkpoint).
#[test]
fn power_cut_preserves_acked_writes_and_leaves_no_torn_extents() {
    for (i, crash_ms) in [233u64, 307, 411].into_iter().enumerate() {
        power_cut_round(0xC0FFEE + i as u64, crash_ms);
    }
}

//! Equal seeds ⇒ byte-identical traces on the multi-queue transport.
//!
//! Mirrors `trace_determinism.rs` with the nvmeq transport armed: the
//! client batches SQEs behind doorbells, the target coalesces CQEs under
//! the interrupt-moderation timer, and the active relay bridges frame
//! units through an encrypting chain — none of which may draw on ambient
//! state, so two runs of one seed still export the same bytes.

use std::sync::Arc;

use proptest::prelude::*;
use storm::cloud::{Cloud, CloudConfig};
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm::iscsi::TransportKind;
use storm::services::EncryptionService;
use storm::telemetry::{parse_jsonl, Recorder};
use storm_sim::{SimDuration, SimTime};
use storm_workloads::{FioJob, FioWorkload};

/// Runs a short encrypted active-relay fio scenario over nvmeq with the
/// recorder armed and returns the JSONL trace export.
fn traced_run(seed: u64) -> String {
    let mut cloud = Cloud::build(CloudConfig {
        seed,
        transport: TransportKind::Nvmeq,
        queue_depth: 16,
        ..CloudConfig::default()
    });
    let recorder = Arc::new(Recorder::new());
    cloud.set_trace_hook(Recorder::hook(&recorder));
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(1 << 30, 0);
    let enc = EncryptionService::stream_cipher(&[7u8; 32], &[3u8; 12]);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec::with_services(
            3,
            RelayMode::Active,
            vec![Box::new(enc)],
        )],
    );
    let job = FioJob::randrw(4096, SimDuration::from_millis(300), vol.sectors).threads(2);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:nvq-det",
        &vol,
        Box::new(FioWorkload::new(job)),
        seed ^ 0x5EED,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(1_200_000_000));
    let client = cloud.client_mut(0, app);
    assert!(client.is_ready(), "connect failed");
    assert_eq!(client.transport().kind(), TransportKind::Nvmeq);
    assert_eq!(client.stats.errors, 0, "I/O errors through encrypted chain");
    assert!(client.stats.ops() > 0, "no I/O completed");
    recorder.to_jsonl()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    /// Two runs with the same seed export identical bytes, with the
    /// doorbell batching and CQ moderation machinery fully engaged.
    #[test]
    fn equal_seeds_equal_traces_over_nvmeq(seed in 1u64..1_000_000) {
        let a = traced_run(seed);
        let b = traced_run(seed);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(&a, &b);
        prop_assert!(parse_jsonl(&a).is_some(), "export must parse back");
    }
}

/// The seed is load-bearing: different seeds almost surely diverge.
#[test]
fn different_seeds_diverge() {
    let a = traced_run(31);
    let b = traced_run(32);
    assert_ne!(a, b);
}

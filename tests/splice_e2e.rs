//! End-to-end network-splicing tests: tenant I/O steered through gateway
//! pairs and middle-boxes in every relay mode, with data integrity checks.

use bytes::Bytes;
use storm::cloud::{Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm_block::BlockDevice;
use storm_sim::{SimDuration, SimTime};

/// Writes a recognizable pattern, reads it back, verifies, stops.
struct VerifyWorkload {
    wrote: Option<ReqId>,
    read: Option<ReqId>,
    pub verified: bool,
    lba: u64,
    bytes: usize,
}

impl VerifyWorkload {
    fn new(lba: u64, bytes: usize) -> Self {
        VerifyWorkload {
            wrote: None,
            read: None,
            verified: false,
            lba,
            bytes,
        }
    }
    fn pattern(&self) -> Vec<u8> {
        (0..self.bytes)
            .map(|i| ((i / 512 + 7) % 251) as u8)
            .collect()
    }
}

impl Workload for VerifyWorkload {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.wrote = Some(io.write(self.lba, Bytes::from(self.pattern())));
    }
    fn completed(&mut self, io: &mut IoCtx<'_>, req: ReqId, _kind: IoKind, result: IoResult) {
        assert!(result.ok, "I/O failed");
        if Some(req) == self.wrote {
            self.read = Some(io.read(self.lba, (self.bytes / 512) as u32));
        } else if Some(req) == self.read {
            assert_eq!(result.data.len(), self.bytes);
            assert_eq!(
                &result.data[..],
                &self.pattern()[..],
                "data corrupted in flight"
            );
            self.verified = true;
            io.stop();
        }
    }
}

/// Deploys a 1-MB chain in `mode`, runs the verify workload through it,
/// and returns (cloud, deployment, client_app) for further inspection.
fn run_mode(mode: RelayMode, bytes: usize) -> bool {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(128 << 20, 0);
    let mbs = vec![MbSpec::bare(3, mode)];
    let deployment = platform.deploy_chain(&mut cloud, &vol, (1, 2), mbs);
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:verify",
        &vol,
        Box::new(VerifyWorkload::new(2048, bytes)),
        99,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(10_000_000_000));
    let client = cloud.client_mut(0, app);
    assert!(
        client.is_ready(),
        "steered login must complete in mode {mode:?}"
    );
    assert_eq!(client.stats.errors, 0);
    let verified = client
        .workload_ref()
        .unwrap()
        .downcast_ref::<VerifyWorkload>()
        .unwrap()
        .verified;
    // The data really landed on the backing volume (end-to-end).
    let mut shared = vol.shared.clone();
    let mut buf = vec![0u8; 512];
    shared.read(2048, &mut buf).unwrap();
    // The middle-box VM actually carried traffic: its node forwarded
    // packets or terminated connections.
    let mb = deployment.mb_nodes[0];
    let host = cloud.net.host(mb.node);
    let saw_traffic = match mode {
        RelayMode::Forward | RelayMode::Passive => host.cpu.busy_for("fwd") > SimDuration::ZERO,
        RelayMode::Active => host.tcp.counters().segs_in > 0,
    };
    assert!(
        saw_traffic,
        "traffic must traverse the middle-box in {mode:?}"
    );
    verified
}

#[test]
fn forward_mode_round_trip_small() {
    assert!(run_mode(RelayMode::Forward, 4096));
}

#[test]
fn forward_mode_round_trip_large() {
    assert!(run_mode(RelayMode::Forward, 256 * 1024));
}

#[test]
fn passive_mode_round_trip() {
    assert!(run_mode(RelayMode::Passive, 64 * 1024));
}

#[test]
fn active_mode_round_trip_small() {
    assert!(run_mode(RelayMode::Active, 4096));
}

#[test]
fn active_mode_round_trip_large() {
    assert!(run_mode(RelayMode::Active, 256 * 1024));
}

/// The atomic-attachment property: after the steering rule is removed, a
/// second volume on the same host attaches LEGACY (direct) while the first
/// stays pinned through the chain.
#[test]
fn atomic_attachment_scopes_steering() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol1 = cloud.create_volume(64 << 20, 0);
    let vol2 = cloud.create_volume(64 << 20, 0);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol1,
        (1, 2),
        vec![MbSpec::bare(3, RelayMode::Forward)],
    );
    let app1 = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:steered",
        &vol1,
        Box::new(VerifyWorkload::new(100, 4096)),
        1,
        false,
    );
    // The steering rule is gone now; attach the second volume plainly.
    let app2 = cloud.attach_volume(
        0,
        "vm:direct",
        &vol2,
        Box::new(VerifyWorkload::new(100, 4096)),
        2,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(10_000_000_000));
    for app in [app1, app2] {
        let client = cloud.client_mut(0, app);
        assert!(client.is_ready());
        assert!(
            client
                .workload_ref()
                .unwrap()
                .downcast_ref::<VerifyWorkload>()
                .unwrap()
                .verified
        );
    }
    // Flow pinning: exactly one flow remains pinned on the compute host.
    assert_eq!(cloud.net.host(cloud.computes[0].host).pinned_flows(), 1);
    // Attribution distinguishes the two VMs' connections.
    let attrs = cloud.attributions();
    assert_eq!(attrs.len(), 2);
    let ports: Vec<u16> = attrs
        .iter()
        .filter_map(|a| a.tuple.map(|t| t.src.port))
        .collect();
    assert_eq!(ports.len(), 2);
    assert_ne!(ports[0], ports[1]);
}

/// Storage-network addresses must never appear inside the instance
/// network: frames on the middle-box only carry gateway addresses.
#[test]
fn masquerading_hides_storage_addresses() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec::bare(3, RelayMode::Active)],
    );
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:masq",
        &vol,
        Box::new(VerifyWorkload::new(8, 4096)),
        3,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(5_000_000_000));
    let _ = cloud.client_mut(0, app);
    // The active relay terminated connections on the MB: its TCP stack's
    // view of peers must be gateway instance addresses, not 10.1/16
    // storage addresses.
    let mb = deployment.mb_nodes[0];
    let counters = cloud.net.host(mb.node).tcp.counters();
    assert!(counters.segs_in > 0, "MB saw no traffic");
    let gw_in = deployment.gateways.ingress.instance_ip;
    let gw_out = deployment.gateways.egress.instance_ip;
    assert!(gw_in.octets()[0] == 192 && gw_out.octets()[0] == 192);
}

//! Ablation studies for the design choices DESIGN.md calls out.

use bytes::Bytes;
use storm::cloud::{Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm_sim::{SimDuration, SimTime};

/// Keeps `depth` 16 KiB writes in flight for `secs` seconds.
struct Load {
    depth: usize,
    deadline: Option<SimTime>,
    secs: u64,
    pub done: u64,
}

impl Workload for Load {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        self.deadline = Some(io.now + SimDuration::from_secs(self.secs));
        for i in 0..self.depth {
            io.write((i as u64) * 32, Bytes::from(vec![1u8; 16 * 1024]));
        }
    }
    fn completed(&mut self, io: &mut IoCtx<'_>, _r: ReqId, _k: IoKind, result: IoResult) {
        assert!(result.ok);
        self.done += 1;
        if self.deadline.is_some_and(|d| io.now < d) {
            io.write((self.done % 512) * 32, Bytes::from(vec![1u8; 16 * 1024]));
        } else if io.in_flight <= 1 {
            io.stop();
        }
    }
}

fn throughput(platform: StormPlatform) -> u64 {
    let mut cfg = CloudConfig {
        backing_bytes: 16 << 30,
        ..CloudConfig::default()
    };
    cfg.target.disk.prewarmed = true;
    let mut cloud = Cloud::build(cfg);
    let vol = cloud.create_volume(1 << 30, 0);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec::bare(3, RelayMode::Active)],
    );
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:load",
        &vol,
        Box::new(Load {
            depth: 16,
            deadline: None,
            secs: 3,
            done: 0,
        }),
        5,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(8_000_000_000));
    let client = cloud.client_mut(0, app);
    assert_eq!(client.stats.errors, 0);
    client.stats.ops()
}

/// Ablation: disabling the active relay's TSO copy-batching must cost
/// throughput under load — evidence for the paper's "packs several packets
/// together for each copy" efficiency claim.
#[test]
fn tso_batching_matters_under_load() {
    let with_tso = throughput(StormPlatform::default());
    let without_tso = throughput(StormPlatform {
        tso: false,
        ..StormPlatform::default()
    });
    assert!(
        with_tso as f64 > without_tso as f64 * 1.1,
        "TSO should raise active-relay throughput by >10%: {with_tso} vs {without_tso}"
    );
}

/// Ablation: a tiny persistence buffer throttles the active relay (the
/// backpressure path engages) but must never corrupt or error.
#[test]
fn small_persistence_buffer_throttles_but_stays_correct() {
    let big = throughput(StormPlatform::default());
    let small = throughput(StormPlatform {
        buffer_cap: 32 * 1024,
        ..StormPlatform::default()
    });
    assert!(
        small <= big,
        "a 32 KiB persistence buffer cannot beat an 8 MiB one: {small} vs {big}"
    );
    assert!(small > 0, "backpressure must throttle, not deadlock");
}

//! Platform feature tests: service chaining across multiple middle-box
//! VMs, dynamic SDN scale-down, attribution lookups and tenant isolation.

use bytes::Bytes;
use storm::cloud::{sdn, Cloud, CloudConfig, IoCtx, IoKind, IoResult, ReqId, Workload};
use storm::core::service::PassthroughService;
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm_sim::{SimDuration, SimTime};

struct Pump {
    rounds: usize,
    done: usize,
}

impl Workload for Pump {
    fn start(&mut self, io: &mut IoCtx<'_>) {
        io.write(0, Bytes::from(vec![1u8; 4096]));
    }
    fn completed(&mut self, io: &mut IoCtx<'_>, _r: ReqId, _k: IoKind, result: IoResult) {
        assert!(result.ok);
        self.done += 1;
        if self.done >= self.rounds {
            io.stop();
        } else if self.done.is_multiple_of(2) {
            io.read((self.done as u64 % 32) * 8, 8);
        } else {
            io.write(
                (self.done as u64 % 32) * 8,
                Bytes::from(vec![self.done as u8; 4096]),
            );
        }
    }
}

/// Two middle-box VMs chained on the same flow (paper §II-B's bundle):
/// traffic must traverse both, in order.
#[test]
fn two_middlebox_chain_forwards_through_both() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![
            MbSpec::bare(3, RelayMode::Forward),
            MbSpec::with_services(
                0,
                RelayMode::Active,
                vec![Box::new(PassthroughService::new())],
            ),
        ],
    );
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:chained",
        &vol,
        Box::new(Pump {
            rounds: 40,
            done: 0,
        }),
        13,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(10_000_000_000));
    let client = cloud.client_mut(0, app);
    assert!(
        client.is_ready(),
        "login through a 2-MB chain must complete"
    );
    assert_eq!(client.stats.errors, 0);
    assert!(client.stats.ops() >= 40);
    // Both middle-boxes carried the flow.
    let fwd_mb = deployment.mb_nodes[0];
    assert!(
        cloud.net.host(fwd_mb.node).cpu.busy_for("fwd") > SimDuration::ZERO,
        "first (forwarding) middle-box must have forwarded packets"
    );
    let act_mb = deployment.mb_nodes[1];
    assert!(
        cloud.net.host(act_mb.node).tcp.counters().segs_in > 0,
        "second (active) middle-box must have terminated the flow"
    );
}

/// Dynamic scale-down: removing the chain rules mid-run reroutes *new*
/// flows directly while the platform keeps serving.
#[test]
fn chain_rules_can_be_removed_dynamically() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(64 << 20, 0);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec::bare(3, RelayMode::Forward)],
    );
    // Rules present on the ingress gateway's host OVS.
    let ingress_ovs = deployment.forward_chain.ingress_ovs;
    assert!(!cloud.net.fabric.switch(ingress_ovs).flows().is_empty());
    let removed = platform.tear_down_rules(&mut cloud, &deployment);
    assert!(
        removed >= 2,
        "forward + reverse rules removed, got {removed}"
    );
    assert!(cloud.net.fabric.switch(ingress_ovs).flows().is_empty());
    // Idempotent.
    assert_eq!(platform.tear_down_rules(&mut cloud, &deployment), 0);
}

/// Attribution: the platform can answer "which VM owns source port P?"
/// (the lookup behind fine-grained per-flow policies).
#[test]
fn attribution_maps_ports_to_vms() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let v1 = cloud.create_volume(32 << 20, 0);
    let v2 = cloud.create_volume(32 << 20, 0);
    let a1 = cloud.attach_volume(
        0,
        "vm:alpha",
        &v1,
        Box::new(Pump { rounds: 4, done: 0 }),
        1,
        false,
    );
    let a2 = cloud.attach_volume(
        0,
        "vm:beta",
        &v2,
        Box::new(Pump { rounds: 4, done: 0 }),
        2,
        false,
    );
    cloud.net.run_until(SimTime::from_nanos(3_000_000_000));
    let _ = (a1, a2);
    let attrs = cloud.attributions();
    assert_eq!(attrs.len(), 2);
    for a in &attrs {
        let tuple = a.tuple.expect("sessions connected");
        assert_eq!(
            cloud.vm_for_port(tuple.src.port).as_deref(),
            Some(a.vm_label.as_str())
        );
    }
    // Target-side login records agree on the IQNs.
    let logins = cloud.target_mut(0).logins().to_vec();
    assert_eq!(logins.len(), 2);
    // An unknown port maps to no VM.
    assert_eq!(cloud.vm_for_port(1), None);
}

/// Tenant isolation: ports tagged for tenant A never deliver frames to
/// tenant B's middle-boxes, even when flooding.
#[test]
fn tenant_tags_isolate_guest_traffic() {
    let mut cloud = Cloud::build(CloudConfig::default());
    // Two guests of different tenants on the same host OVS.
    let a = cloud.spawn_guest("mb-a", 0, 1, false, false);
    let b = cloud.spawn_guest("mb-b", 0, 2, false, false);
    let ovs = cloud.computes[0].ovs;
    // Craft a frame from tenant 1's port to an unknown MAC (floods).
    use storm_net::{Frame, MacAddr, TcpFlags, TcpSegment};
    let frame = Frame {
        src_mac: a.mac,
        dst_mac: MacAddr::nth(9999),
        src_ip: a.instance_ip,
        dst_ip: b.instance_ip,
        tcp: TcpSegment {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::ACK,
            wnd: 0,
            payload: Bytes::new().into(),
        },
        hops: 0,
    };
    let out = cloud.net.fabric.switch_mut(ovs).process(frame, a.ovs_port);
    assert!(
        out.iter().all(|(port, _)| *port != b.ovs_port),
        "flooded frame must not reach the other tenant's vif"
    );
}

/// A ChainSpec with port scoping installs per-flow rules (the paper's
/// fine-grained selection), and removal restores the table.
#[test]
fn port_scoped_chains_are_fine_grained() {
    let mut cloud = Cloud::build(CloudConfig::default());
    let mb = cloud.spawn_guest("mb", 3, 1, false, false);
    let gw_in = cloud.spawn_guest("gwi", 1, 1, true, true);
    let gw_out = cloud.spawn_guest("gwo", 2, 1, true, true);
    let spec = sdn::ChainSpec {
        vm_port: Some(40_077),
        iscsi_port: 3260,
        ingress_mac: gw_in.mac,
        ingress_ovs: cloud.computes[1].ovs,
        egress_mac: gw_out.mac,
        egress_ovs: cloud.computes[2].ovs,
        hops: vec![sdn::ChainHop {
            mac: mb.mac,
            ovs: cloud.computes[3].ovs,
        }],
        priority: 50,
    };
    sdn::install_chain(&mut cloud.net, &spec);
    let rules: Vec<_> = spec.forward_rules();
    assert!(rules.iter().all(|(_, m, _)| m.src_port == Some(40_077)));
    assert_eq!(sdn::remove_chain(&mut cloud.net, &spec), 2);
}

//! Figure-13 failover scenario, end to end, driven by `storm-faults`.
//!
//! An OLTP guest runs through a replication middle-box with two backup
//! replicas (replication factor 3). Mid-run the fault plan mutes the
//! storage host backing replica 0: its target keeps serving I/O but the
//! responses never leave the host — the paper's "not responsive" replica,
//! detectable only by timeout. The relay's watchdog must time the
//! requests out, retry with backoff, evict the replica, and re-dispatch
//! its unfinished reads; the database keeps running with zero lost reads
//! and throughput dips then recovers on the surviving lanes.

use std::sync::Arc;

use storm::cloud::{Cloud, CloudConfig};
use storm::core::relay::{ActiveRelayMb, ReplicaTarget};
use storm::core::{MbSpec, RelayMode, StormPlatform};
use storm::telemetry::{analyze, Recorder};
use storm_faults::{Fault, FaultPlan, FaultRunner};
use storm_services::ReplicationService;
use storm_sim::{SimDuration, SimTime};
use storm_workloads::{OltpConfig, OltpWorkload};

const RUN_SECS: u64 = 10;
const FAIL_AT_SECS: u64 = 4;

#[test]
fn replica_goes_mute_mid_workload_and_is_evicted() {
    let mut cfg = CloudConfig {
        storage_hosts: 3,
        backing_bytes: 8 << 30,
        ..CloudConfig::default()
    };
    // Keep the page cache small so reads hit the spindles — the regime
    // where read striping (and losing a stripe lane) matters.
    cfg.target.disk.cache_blocks = 32_768;
    let mut cloud = Cloud::build(cfg);
    // Record the telemetry trace alongside the fault trace: the eviction
    // must be visible to an observability consumer, not just test hooks.
    let recorder = Arc::new(Recorder::new());
    cloud.set_trace_hook(Recorder::hook(&recorder));
    let platform = StormPlatform::default();
    let vol = cloud.create_volume(1 << 30, 0);
    let rep1 = cloud.create_volume(1 << 30, 1);
    let rep2 = cloud.create_volume(1 << 30, 2);
    let deployment = platform.deploy_chain(
        &mut cloud,
        &vol,
        (1, 2),
        vec![MbSpec {
            host_idx: 3,
            mode: RelayMode::Active,
            services: vec![Box::new(ReplicationService::new(2, true))],
            replicas: vec![
                ReplicaTarget {
                    portal: rep1.portal,
                    iqn: rep1.iqn.clone(),
                },
                ReplicaTarget {
                    portal: rep2.portal,
                    iqn: rep2.iqn.clone(),
                },
            ],
        }],
    );
    let app = platform.attach_volume_steered(
        &mut cloud,
        &deployment,
        0,
        "vm:mysql",
        &vol,
        Box::new(OltpWorkload::new(OltpConfig {
            threads: 2,
            reads_per_txn: 2,
            area_sectors: 1 << 19,
            duration: SimDuration::from_secs(RUN_SECS),
        })),
        77,
        false,
    );

    // Replica 0 lives on storage host 1: mute that target at the fail
    // mark. Served requests produce no responses from then on.
    let plan = FaultPlan::new(0xF1613).at(
        SimTime::from_secs(FAIL_AT_SECS),
        Fault::MuteTarget {
            host: rep1.storage_host as u32,
        },
    );
    let mut runner = FaultRunner::new(plan.schedule());
    runner.arm_cloud(&mut cloud);
    let (mb_node, mb_app) = (deployment.mb_nodes[0].node, deployment.mb_apps[0].unwrap());
    assert!(runner.arm_mb(&mut cloud, 0, mb_node, mb_app));

    runner.run(&mut cloud, SimTime::from_secs(RUN_SECS + 2));

    // Zero lost reads: the guest never sees an I/O error; every read the
    // muted replica swallowed was timed out and re-served elsewhere.
    let client = cloud.client_mut(0, app);
    assert_eq!(
        client.stats.errors, 0,
        "the database must never see an I/O error"
    );
    let w = client
        .workload_ref()
        .unwrap()
        .downcast_ref::<OltpWorkload>()
        .unwrap();
    let before = w.mean_tps(2, FAIL_AT_SECS as usize);
    let dip = w.mean_tps(FAIL_AT_SECS as usize, FAIL_AT_SECS as usize + 2);
    let after = w.mean_tps(FAIL_AT_SECS as usize + 3, RUN_SECS as usize);
    assert!(
        before > 0.0,
        "workload must make progress before the failure"
    );
    assert!(
        dip < before,
        "throughput must dip while the mute replica times out: before={before:.0} dip={dip:.0}"
    );
    assert!(
        after > before * 0.5,
        "throughput must recover on the surviving lanes: before={before:.0} after={after:.0}"
    );

    // The watchdog evicted exactly the muted replica.
    let relay = cloud
        .net
        .app_mut(mb_node, mb_app)
        .unwrap()
        .downcast_mut::<ActiveRelayMb>()
        .unwrap();
    assert!(!relay.is_crashed());
    let svc = relay
        .service(0)
        .unwrap()
        .downcast_ref::<ReplicationService>()
        .unwrap();
    assert_eq!(
        svc.alive_replicas(),
        1,
        "the mute replica must be eliminated"
    );
    assert!(
        svc.stats.retried_reads > 0,
        "unfinished reads of the failed replica must be re-dispatched"
    );
    assert!(svc.stats.striped_reads > 0);

    // The muted responses are visible in the fault trace.
    let trace = runner.trace();
    assert!(
        trace.iter().any(|l| l.contains("arm #1 MuteTarget")),
        "{trace:?}"
    );
    assert!(
        trace.iter().any(|l| l.contains("TargetRespond")),
        "{trace:?}"
    );

    // The telemetry trace carries the eviction too, after the fail mark,
    // naming the muted replica (index 0 = rep1).
    let report = analyze::attribute(&recorder.events());
    assert_eq!(
        report.evictions.len(),
        1,
        "exactly one replica eviction in the trace"
    );
    let (at, mb, replica) = report.evictions[0];
    assert_eq!(mb, 0);
    assert_eq!(
        replica, 0,
        "the muted replica (rep1) must be the one evicted"
    );
    assert!(
        at >= SimTime::from_secs(FAIL_AT_SECS),
        "eviction {at} must follow the fail mark"
    );
    // The failover run still yields a coherent attribution table.
    assert!(report.requests > 0);
    let share_sum: f64 = report.rows.iter().map(|r| r.share).sum();
    assert!(
        (share_sum - 100.0).abs() < 0.5,
        "shares sum to {share_sum}%"
    );
}
